"""Bench: regenerate Table 1 (STT-RAM retention levels)."""

from repro.experiments import table1


def test_bench_table1(run_once, show):
    result = run_once(table1.run)
    show()
    show(result.render())
    # paper trend: relaxing retention cuts write latency and energy
    assert result.extras["we_ratio_10year_over_lr"] > 2.0
    assert result.extras["wl_ratio_10year_over_lr"] > 2.0
    levels = result.column("level")
    assert levels == ["10year", "hr", "lr"]
