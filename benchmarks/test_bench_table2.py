"""Bench: regenerate Table 2 (simulated configurations)."""

from repro.experiments import table2


def test_bench_table2(run_once, show):
    result = run_once(table2.run)
    show()
    show(result.render())
    # the area-equivalence premise: 4x STT-RAM fits in the SRAM footprint
    assert result.extras["c1_area_over_sram"] < 1.15
    assert result.extras["stt_area_over_sram"] < 1.15
    assert len(result.rows) == 5
