"""Bench: technology-scaling study (extension).

Quantifies the paper's motivation: as SRAM leakage worsens per node, the
two-part STT-RAM L2's total-power advantage over the SRAM baseline must
grow monotonically from 45 nm through 32 nm.
"""

from repro.experiments import scaling


def test_bench_scaling(run_once, show):
    result = run_once(scaling.run, trace_length=10_000)
    show()
    show(result.render())
    extras = result.extras
    assert (
        extras["total_ratio_32nm"]
        < extras["total_ratio_40nm"]
        < extras["total_ratio_45nm"]
    ), "the STT advantage must grow as the node shrinks"
    assert extras["total_ratio_40nm"] < 1.0