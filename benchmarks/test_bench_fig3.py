"""Bench: regenerate Fig. 3 (inter/intra-set write COV per benchmark)."""

from repro.experiments import fig3


def test_bench_fig3(run_once, bench_trace_length, show):
    result = run_once(fig3.run, trace_length=bench_trace_length)
    show()
    show(result.render())
    # paper shape: large spread across benchmarks, with irregular apps
    # exceeding 100% inter-set COV and regular streaming apps near zero
    assert result.extras["max_inter_pct"] > 100.0
    assert result.extras["min_inter_pct"] < 30.0
    # bfs-style benchmarks must out-skew stencil-style ones
    assert result.row_for("bfs")[2] > 3 * result.row_for("stencil")[2]
