"""Bench: regenerate Fig. 8 — the headline speedup/power evaluation.

This is the expensive one: the full 16-benchmark suite on all five Table 2
systems (80 simulations).  The assertions encode the paper's shape claims:

* C1 improves IPC on average (paper: +16%) with a >1.5x peak, and never
  degrades a benchmark;
* the naive STT baseline trails C1 and *does* degrade some write-heavy
  benchmarks;
* total L2 power: C2 < C3 < C1 < SRAM baseline < STT baseline;
* dynamic L2 power: every STT organization costs more than SRAM, the naive
  STT baseline the most.
"""

import pytest

from repro.experiments import fig8, regions


def test_bench_fig8(run_once, bench_trace_length, show):
    simulations = run_once(fig8.run_simulations, trace_length=bench_trace_length)
    result = fig8.run(results=simulations)
    show()
    show(result.render())
    extras = result.extras

    # (a) speedups
    assert 1.08 < extras["gmean_speedup_c1"] < 1.35
    assert extras["gmean_speedup_stt"] < extras["gmean_speedup_c1"]
    assert extras["max_speedup_c1"] > 1.5
    for row in result.rows[:-1]:
        speedup_c1 = row[3]
        assert speedup_c1 >= 0.97, f"{row[0]}: C1 must not degrade performance"

    # the naive STT baseline must degrade at least one write-heavy benchmark
    stt_speedups = [row[2] for row in result.rows[:-1]]
    assert min(stt_speedups) < 0.97

    # (b) dynamic power: STT organizations all cost more than SRAM; the
    # naive baseline costs the most
    assert extras["gmean_dynamic_stt"] > extras["gmean_dynamic_c1"] > 1.0

    # (c) total power ordering
    assert (
        extras["gmean_total_c2"]
        < extras["gmean_total_c3"]
        < extras["gmean_total_c1"]
        < 1.0
        < extras["gmean_total_stt"]
    )

    # region-aggregated view of the same simulations (the paper's framing)
    by_region = regions.run(results=simulations)
    show()
    show(by_region.render())
    region_extras = by_region.extras
    # region 1 flat on every system
    for config in fig8.CONFIG_ORDER:
        assert region_extras[f"region1_{config}"] == pytest.approx(1.0, abs=0.06)
    # region 2 responds to the register file, not the cache
    assert region_extras["region2_C2"] > region_extras["region2_C1"] - 0.02
    # region 4 responds to cache capacity: C1 beats C2 clearly
    assert region_extras["region4_C1"] > region_extras["region4_C2"] + 0.1
