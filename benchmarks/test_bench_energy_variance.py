"""Benches: C1 energy breakdown and seed robustness (extensions)."""

from repro.experiments import energy, variance

ROBUSTNESS_BENCHMARKS = (
    "bfs", "kmeans", "stencil", "tpacf", "mri-gridding",
    "hotspot", "lbm", "streamcluster",
)


def test_bench_energy_breakdown(run_once, bench_trace_length, show):
    result = run_once(energy.run, trace_length=bench_trace_length)
    show()
    show(result.render())
    # the architecture's bet: migration + refresh stay a modest slice of
    # dynamic energy.  The worst cases are the even-write streaming codes
    # (lbm/stencil/cfd), whose rewrites churn the LR<->HR boundary — the
    # same apps the paper concedes cost extra dynamic energy.
    assert result.extras["max_overhead_share"] < 0.45
    assert result.extras["mean_overhead_share"] < 0.20
    for row in result.rows:
        shares = row[1:5]
        assert abs(sum(shares) - 1.0) < 0.02, f"{row[0]}: shares must sum to 1"
    # write-skewed cache-friendly apps keep overheads small
    bfs = result.row_for("bfs")
    assert bfs[2] + bfs[3] < 0.15


def test_bench_seed_robustness(run_once, show):
    result = run_once(
        variance.run,
        trace_length=10_000,
        benchmarks=list(ROBUSTNESS_BENCHMARKS),
        seeds=(0, 1, 2),
    )
    show()
    show(result.render())
    extras = result.extras
    # the headline orderings must hold with margin across seeds
    assert extras["gmean_speedup_c1_spread"] < 0.08
    assert extras["gmean_total_c1_spread"] < 0.08
    # C1 beats the naive STT baseline at every seed
    assert (
        extras["gmean_speedup_c1_mean"] - extras["gmean_speedup_c1_spread"]
        > extras["gmean_speedup_stt_mean"] - 0.02
    )
    # total-power win of C2 is seed-stable
    assert extras["gmean_total_c2_mean"] + extras["gmean_total_c2_spread"] < 0.8
