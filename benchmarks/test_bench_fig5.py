"""Bench: regenerate Fig. 5 (LR associativity sweep)."""

from repro.experiments import fig5


def test_bench_fig5(run_once, bench_trace_length, show):
    result = run_once(fig5.run, trace_length=bench_trace_length)
    show()
    show(result.render())
    # paper shape: utilization approaches fully-associative as ways grow,
    # and 2-way sits close enough to justify the paper's design choice
    assert result.extras["gmean_1way"] <= result.extras["gmean_2way"] * 1.01
    assert result.extras["gmean_2way"] <= result.extras["gmean_16way"] * 1.01
    assert result.extras["two_way_gap_to_full"] < 0.10
