"""Shared benchmark settings.

Each bench regenerates one paper artifact; the interesting output is the
printed table (and the shape assertions), not statistical timing, so every
bench runs exactly once via ``benchmark.pedantic``.
"""

from __future__ import annotations

import pytest

#: Trace length used by the benchmark harness.  Long enough for the paper's
#: shapes (the cache-friendly hot sets need tens of thousands of accesses to
#: show reuse), short enough that the full battery completes in minutes.
BENCH_TRACE_LENGTH = 15_000


@pytest.fixture
def bench_trace_length():
    """Trace length shared by the experiment benches."""
    return BENCH_TRACE_LENGTH


@pytest.fixture
def show(capsys):
    """Print regenerated paper artifacts past pytest's output capture.

    Benches are the reproduction record: their tables must land in the
    console / tee'd log even when the bench passes.
    """

    def _show(*parts):
        with capsys.disabled():
            if not parts:
                print()
            for part in parts:
                print(part)

    return _show


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
