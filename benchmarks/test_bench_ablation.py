"""Ablation benches for the design choices DESIGN.md calls out.

These are not in the paper's figures; they quantify the paper's prose
arguments: sequential search saves probe energy, the LR/HR retention pairing
balances refresh cost against data loss, and small migration buffers rarely
overflow.
"""

from repro.analysis.tables import format_table
from repro.config import config_c1
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import replay_through_l1
from repro.workloads.suite import build_workload

BENCHMARKS = ("bfs", "kmeans", "mummergpu")
ABLATION_TRACE = 8000


def _build_c1_l2(**overrides) -> TwoPartSTTL2:
    l2cfg = config_c1().l2
    params = dict(
        hr_capacity_bytes=l2cfg.main.capacity_bytes,
        hr_associativity=l2cfg.main.associativity,
        lr_capacity_bytes=l2cfg.lr.capacity_bytes,
        lr_associativity=l2cfg.lr.associativity,
        line_size=l2cfg.line_size,
    )
    params.update(overrides)
    return TwoPartSTTL2(**params)


def test_bench_search_policy(run_once, show):
    """Sequential vs parallel tag search: energy vs latency tradeoff."""

    def sweep():
        rows = []
        for name in BENCHMARKS:
            energies = {}
            for sequential in (True, False):
                workload = build_workload(name, num_accesses=ABLATION_TRACE, seed=0)
                l2 = _build_c1_l2(sequential_search=sequential)
                replay_through_l1(workload, l2.access)
                key = "sequential" if sequential else "parallel"
                energies[key] = (
                    l2.energy.demand_j,
                    l2.selector.stats.second_probes,
                    l2.selector.stats.first_hit_rate,
                )
            rows.append([
                name,
                round(energies["sequential"][0] * 1e6, 3),
                round(energies["parallel"][0] * 1e6, 3),
                energies["sequential"][1],
                energies["parallel"][1],
                round(energies["sequential"][2], 3),
            ])
        return rows

    rows = run_once(sweep)
    show()
    show(format_table(
        ["benchmark", "seq_demand_uJ", "par_demand_uJ",
         "seq_2nd_probes", "par_2nd_probes", "seq_first_hit_rate"],
        rows,
    ))
    for row in rows:
        # sequential search must probe less and spend less demand energy
        assert row[1] < row[2], f"{row[0]}: sequential must save probe energy"
        assert row[3] < row[4]
        # the type-directed probe order must beat chance; misses always
        # cost a second probe, which bounds this below the L2 hit rate
        assert row[5] > 0.4


def test_bench_retention_pairing(run_once, show):
    """LR retention sweep: refresh cost vs expiry safety."""

    def sweep():
        rows = []
        for lr_retention in (10e-6, 40e-6, 200e-6):
            workload = build_workload("bfs", num_accesses=ABLATION_TRACE, seed=0)
            l2 = _build_c1_l2(lr_retention_s=lr_retention)
            replay_through_l1(workload, l2.access)
            rows.append([
                f"{lr_retention * 1e6:.0f}us",
                l2.refresh_writes,
                l2.data_losses,
                round(l2.energy.refresh_j * 1e9, 1),
            ])
        return rows

    rows = run_once(sweep)
    show()
    show(format_table(
        ["lr_retention", "refresh_writes", "data_losses", "refresh_nJ"], rows
    ))
    refreshes = [row[1] for row in rows]
    # shorter retention must refresh at least as often
    assert refreshes[0] >= refreshes[-1]
    # the architecture must never lose data at any swept retention
    assert all(row[2] == 0 for row in rows)


def test_bench_buffer_depth(run_once, show):
    """Migration-buffer depth: overflow (forced write-back) rate."""

    def sweep():
        rows = []
        for depth in (2, 5, 20):
            workload = build_workload("bfs", num_accesses=ABLATION_TRACE, seed=0)
            l2 = _build_c1_l2(buffer_lines=depth)
            replay_through_l1(workload, l2.access)
            overflows = (
                l2.hr_to_lr.stats.overflows + l2.lr_to_hr.stats.overflows
            )
            pushes = l2.hr_to_lr.stats.pushes + l2.lr_to_hr.stats.pushes
            rate = overflows / max(1, overflows + pushes)
            rows.append([depth, pushes, overflows, round(rate, 4)])
        return rows

    rows = run_once(sweep)
    show()
    show(format_table(
        ["buffer_lines", "pushes", "overflows", "overflow_rate"], rows
    ))
    # deeper buffers overflow no more often than shallow ones
    assert rows[-1][3] <= rows[0][3]
    # the paper's ~20-line buffer keeps forced write-backs around the ~1%
    # worst case it reports
    assert rows[-1][3] < 0.02
