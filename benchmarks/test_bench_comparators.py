"""Bench: the two-part design vs related-work STT-RAM L2 organizations.

Not a paper figure — an extension quantifying the related-work contrast the
paper draws in prose.  A *uniform* array must pick one retention point and
loses either way:

* ``relaxed-40ms`` (Sun MICRO'11 / Cache Revive style, refs [14]/[7]):
  writes stay expensive because the write working set pays 40 ms-grade
  pulses;
* ``relaxed-40us``: writes get cheap but *every* resident line now expires
  on the LR timescale — refresh traffic and expiry invalidations eat the
  hit rate.

The two-part design takes the cheap writes where they matter (LR) and the
stability where it matters (HR).  Early Write Termination (ref [17]) stacks
on top as a combinable optimization.
"""

from repro.analysis.tables import format_table
from repro.config import L2Config, L2PartConfig, all_configs, config_c1
from repro.core import build_l2
from repro.experiments.common import replay_through_l1
from repro.units import KB
from repro.workloads.suite import build_workload

BENCHMARKS = ("bfs", "kmeans", "hotspot")
TRACE = 10_000


def _organizations():
    c1 = config_c1().l2
    return {
        "stt-naive": all_configs()["stt-baseline"].l2,
        "relaxed-40ms": L2Config(
            kind="stt-relaxed", main=L2PartConfig(1536 * KB, 8),
            hr_retention_s=40e-3,
        ),
        "relaxed-40us": L2Config(
            kind="stt-relaxed", main=L2PartConfig(1536 * KB, 8),
            hr_retention_s=40e-6, lr_retention_s=10e-6,
        ),
        "twopart(C1)": c1,
        "twopart+EWT": L2Config(
            kind="twopart", main=c1.main, lr=c1.lr,
            early_write_termination=True,
        ),
        # the hybrid SRAM+STT organization (ref [16]) is built directly
        "hybrid-sramLR": None,
    }


def _build(l2_config):
    if l2_config is None:
        c1 = config_c1().l2
        from repro.core import TwoPartSTTL2

        assert c1.lr is not None
        return TwoPartSTTL2(
            hr_capacity_bytes=c1.main.capacity_bytes,
            hr_associativity=c1.main.associativity,
            lr_capacity_bytes=c1.lr.capacity_bytes,
            lr_associativity=c1.lr.associativity,
            lr_technology="sram",
        )
    return build_l2(l2_config)


def test_bench_comparators(run_once, show):
    def sweep():
        rows = []
        for bench in BENCHMARKS:
            for org_name, l2_config in _organizations().items():
                workload = build_workload(bench, num_accesses=TRACE, seed=0)
                l2 = _build(l2_config)
                replay_through_l1(workload, l2.access)
                rows.append([
                    bench,
                    org_name,
                    round(l2.stats.hit_rate, 3),
                    getattr(l2, "refresh_writes", 0),
                    getattr(l2, "expiry_invalidations", 0),
                    getattr(l2, "data_losses", 0),
                    round(l2.energy.total_j * 1e6, 2),
                ])
        return rows

    rows = run_once(sweep)
    show()
    show(format_table(
        ["benchmark", "organization", "l2_hit", "refreshes",
         "expiry_inval", "losses", "dynamic_uJ"],
        rows,
    ))

    by_key = {(r[0], r[1]): r for r in rows}
    for bench in BENCHMARKS:
        naive = by_key[(bench, "stt-naive")]
        slow = by_key[(bench, "relaxed-40ms")]
        fast = by_key[(bench, "relaxed-40us")]
        twopart = by_key[(bench, "twopart(C1)")]
        ewt = by_key[(bench, "twopart+EWT")]
        hybrid = by_key[(bench, "hybrid-sramLR")]
        # relaxing retention uniformly cuts dynamic energy vs naive...
        assert slow[6] < naive[6]
        # ...but the two-part design undercuts it again (cheap WWS writes)
        assert twopart[6] < slow[6]
        # uniformly short retention damages the hit rate via expiry...
        assert fast[2] < twopart[2]
        # ...and refreshes more than the confined LR part
        assert twopart[3] < fast[3]
        # EWT stacks a further dynamic-energy cut on top of C1
        assert ewt[6] < twopart[6]
        # the hybrid's SRAM LR needs no refresh at all
        assert hybrid[3] == 0
        # no organization may silently lose data
        assert twopart[5] == 0 and slow[5] == 0 and fast[5] == 0
        assert hybrid[5] == 0
