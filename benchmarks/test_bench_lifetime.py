"""Bench: endurance/lifetime of the LR part, with and without wear leveling.

Not a paper figure — an extension.  The LR part concentrates the write
working set by design, which is exactly the write-variation problem i2WAP
(the paper's ref [15]) warns about: the hottest frames wear out first and
bound array lifetime.  This bench measures the hot-frame wear of an
LR-geometry array under each benchmark's L1-filtered write stream, then
shows the rotating-remap wear leveler flattening it.
"""

from repro.analysis.lifetime import lifetime_report, relative_lifetime
from repro.analysis.tables import format_table
from repro.cache.array import SetAssociativeCache
from repro.cache.wearlevel import WearLevelingCache
from repro.experiments.common import replay_through_l1
from repro.units import KB
from repro.workloads.suite import build_workload

BENCHMARKS = ("bfs", "backprop", "mummergpu")
TRACE = 10_000
ELAPSED_S = 1e-4  # nominal accumulation window for rate conversion


def _lr_array() -> SetAssociativeCache:
    return SetAssociativeCache(192 * KB, 2, 256)


def test_bench_lifetime(run_once, show):
    def sweep():
        rows = []
        for bench in BENCHMARKS:
            plain = _lr_array()
            workload = build_workload(bench, num_accesses=TRACE, seed=0)
            replay_through_l1(
                workload,
                lambda addr, wr, now: plain.access(addr, wr, now) if wr else None,
            )
            leveled = WearLevelingCache(_lr_array(), rotation_period_writes=100)
            workload = build_workload(bench, num_accesses=TRACE, seed=0)
            replay_through_l1(
                workload,
                lambda addr, wr, now: leveled.access(addr, wr, now) if wr else None,
            )
            plain_report = lifetime_report(plain, ELAPSED_S)
            leveled_report = lifetime_report(leveled.array, ELAPSED_S)
            rows.append([
                bench,
                plain_report.max_frame_writes,
                round(plain_report.imbalance, 1),
                leveled_report.max_frame_writes,
                round(leveled_report.imbalance, 1),
                round(relative_lifetime(leveled_report, plain_report), 2),
                leveled.rotations,
            ])
        return rows

    rows = run_once(sweep)
    show()
    show(format_table(
        ["benchmark", "plain_max_wear", "plain_imbalance",
         "leveled_max_wear", "leveled_imbalance", "lifetime_gain",
         "rotations"],
        rows,
    ))
    for row in rows:
        # skewed write streams must show real imbalance without leveling...
        assert row[2] > 2.0, f"{row[0]}: expected skewed wear"
        # ...and rotation must flatten it and extend lifetime
        assert row[4] < row[2]
        assert row[5] > 1.0, f"{row[0]}: leveling must extend lifetime"
