"""Bench: regenerate Fig. 6 (LR rewrite-interval distribution)."""

from repro.experiments import fig6


def test_bench_fig6(run_once, bench_trace_length, show):
    result = run_once(fig6.run, trace_length=bench_trace_length)
    show()
    show(result.render())
    # paper shape: the bulk of LR rewrites land within ~10 us, so
    # microsecond-scale LR retention plus refresh suffices
    assert result.extras["avg_fraction_under_10us"] > 0.6
