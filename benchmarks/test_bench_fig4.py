"""Bench: regenerate Fig. 4 (HR write-threshold sweep)."""

from repro.experiments import fig4


def test_bench_fig4(run_once, bench_trace_length, show):
    result = run_once(fig4.run, trace_length=bench_trace_length)
    show()
    show(result.render())
    # paper shape: decreasing the threshold raises LR utilization...
    assert result.extras["avg_lr_ratio_th3"] < 1.0
    assert result.extras["avg_lr_ratio_th15"] < result.extras["avg_lr_ratio_th3"]
    # ...without noticeable write overhead (justifies TH = 1)
    assert result.extras["avg_write_overhead_th1_vs_th15"] < 1.10
