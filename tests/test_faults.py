"""Tests for the fault-injection subsystem: plan, injector, checker.

The mutation-style tests deliberately break the two-part protocol (or
blind the injector) and assert the invariant checker catches exactly that
class of bug — proving the checker has teeth, not just that it stays quiet
on healthy runs.
"""

import pytest

from repro.core.twopart import TwoPartSTTL2
from repro.errors import DeviceModelError, FaultInjectionError, InvariantViolationError
from repro.faults import FaultInjector, FaultPlan, InvariantChecker
from repro.faults.invariants import MAX_RECORDED_VIOLATIONS
from repro.sttram.failure import sample_lifetime
from repro.units import KB

RETENTIONS = {"lr": 40e-6, "hr": 40e-3}


def make_small_l2(**kwargs):
    """A small two-part L2 (32KB HR 4-way + 8KB LR 2-way) for fast tests."""
    defaults = dict(
        hr_capacity_bytes=32 * KB,
        hr_associativity=4,
        lr_capacity_bytes=8 * KB,
        lr_associativity=2,
        line_size=256,
    )
    defaults.update(kwargs)
    return TwoPartSTTL2(**defaults)


def drive(l2, num_accesses=600, write_every=2, stride=256, dt=1e-7, checker=None):
    """Replay a simple striding read/write mix through a bare L2.

    The 16KB working set fits the small L2s built here, so the stream
    produces hits, migrations and refreshes — not just a miss parade.
    """
    now = 0.0
    for i in range(num_accesses):
        now += dt
        l2.access((i * stride) % (16 * KB), i % write_every == 0, now)
        if checker is not None:
            checker.after_access(now)
    return now


class TestFaultPlanValidation:
    def test_defaults_are_valid_and_disabled(self):
        plan = FaultPlan()
        assert not plan.any_enabled

    def test_bad_collapse_scale(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(collapse_scale=0.0)

    def test_bad_collapse_part(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(collapse_parts=("lr", "dram"))

    def test_write_error_rate_bounds(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(write_error_rate=1.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(write_error_rate=-0.1)

    def test_write_errors_need_a_rate(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(write_errors=True, write_error_rate=0.0)

    def test_negative_retries(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(max_write_retries=-1)

    def test_sweep_delay_below_one(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(sweep_delay_factor=0.5)

    def test_as_dict_round_trips_parts_as_list(self):
        payload = FaultPlan(retention_collapse=True).as_dict()
        assert payload["collapse_parts"] == ["lr", "hr"]
        assert payload["retention_collapse"] is True


class TestSampleLifetime:
    def test_zero_draw_gives_zero_lifetime(self):
        assert sample_lifetime(1e-3, 0.0) == 0.0

    def test_monotone_in_draw(self):
        mean = 40e-6
        samples = [sample_lifetime(mean, u) for u in (0.1, 0.5, 0.9, 0.99)]
        assert samples == sorted(samples)

    def test_median_is_ln2_mean(self):
        import math

        assert sample_lifetime(1.0, 0.5) == pytest.approx(math.log(2))

    def test_rejects_bad_inputs(self):
        with pytest.raises(DeviceModelError):
            sample_lifetime(0.0, 0.5)
        with pytest.raises(DeviceModelError):
            sample_lifetime(1e-3, 1.0)


class TestInjectorLifecycle:
    def make_armed(self, plan=None):
        """Return (injector, key-parts) with one fault armed on LR line 0."""
        injector = FaultInjector(
            plan or FaultPlan(seed=3, retention_collapse=True, collapse_scale=0.05),
            RETENTIONS,
        )
        # a tiny collapse scale makes nearly every draw arm; loop for safety
        for line in range(64):
            injector.on_cell_write("lr", line, now=0.0)
            if ("lr", line) in injector._deadlines:
                return injector, line
        raise AssertionError("no fault armed in 64 draws")

    def test_arm_then_detect_after_deadline(self):
        injector, line = self.make_armed()
        deadline = injector._deadlines[("lr", line)]
        assert injector.collapsed("lr", line, deadline + 1e-9)
        injector.on_invalidated("lr", line, dirty=True, now=deadline + 1e-9)
        assert injector.stats.retention_detected == 1
        assert injector.stats.retention_data_loss == 1
        assert injector.accounting_balanced()

    def test_vacate_before_deadline(self):
        injector, line = self.make_armed()
        deadline = injector._deadlines[("lr", line)]
        assert not injector.collapsed("lr", line, deadline / 2)
        injector.on_invalidated("lr", line, dirty=True, now=deadline / 2)
        assert injector.stats.retention_vacated == 1
        assert injector.stats.retention_data_loss == 0
        assert injector.accounting_balanced()

    def test_rewrite_recovers(self):
        injector, line = self.make_armed()
        injector.on_cell_write("lr", line, now=1e-9)
        assert injector.stats.retention_recovered == 1
        assert injector.accounting_balanced()

    def test_discard_vacates_without_detection(self):
        injector, line = self.make_armed()
        injector.discard("lr", line)
        assert injector.stats.retention_vacated == 1
        assert injector.pending == 0

    def test_hit_after_deadline_counts_undetected(self):
        injector, line = self.make_armed()
        deadline = injector._deadlines[("lr", line)]
        injector.on_hit_served("lr", line, deadline + 1e-9)
        assert injector.stats.undetected_corrupt_serves == 1
        # the corrupt block stays resident: the ledger must still balance
        assert injector.accounting_balanced()

    def test_disabled_plan_never_arms(self):
        injector = FaultInjector(FaultPlan(seed=3), RETENTIONS)
        for line in range(32):
            injector.on_cell_write("lr", line, now=0.0)
            injector.on_cell_write("hr", line, now=0.0)
        assert injector.pending == 0
        assert injector.stats.retention_armed == 0

    def test_part_missing_from_retentions_never_arms(self):
        injector = FaultInjector(
            FaultPlan(seed=3, retention_collapse=True, collapse_scale=0.05),
            {"hr": 40e-3},
        )
        for line in range(32):
            injector.on_cell_write("lr", line, now=0.0)
        assert injector.pending == 0

    def test_rejects_bad_retention_map(self):
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultPlan(), {"dram": 1.0})
        with pytest.raises(FaultInjectionError):
            FaultInjector(FaultPlan(), {"lr": -1.0})


class TestWriteErrors:
    def test_attempts_bounded_by_retry_budget(self):
        plan = FaultPlan(seed=5, write_errors=True, write_error_rate=0.9,
                         max_write_retries=2)
        injector = FaultInjector(plan, RETENTIONS)
        for i in range(200):
            attempts = injector.write_attempts("lr", i, now=1e-9)
            assert 1 <= attempts <= 1 + plan.max_write_retries

    def test_uncorrectable_marks_line_collapsed_now(self):
        plan = FaultPlan(seed=5, write_errors=True, write_error_rate=0.999,
                         max_write_retries=1)
        injector = FaultInjector(plan, RETENTIONS)
        injector.write_attempts("lr", 7, now=3e-9)
        assert injector.stats.write_uncorrectable == 1
        assert injector.collapsed("lr", 7, now=3e-9)
        assert injector.accounting_balanced()

    def test_on_data_write_keeps_uncorrectable_corruption(self):
        # the combined hook restarts the clock *then* draws errors: an
        # exhausted budget must leave the line collapsed, not recovered
        plan = FaultPlan(seed=5, retention_collapse=True, collapse_scale=0.05,
                         write_errors=True, write_error_rate=0.999,
                         max_write_retries=0)
        injector = FaultInjector(plan, RETENTIONS)
        injector.on_data_write("lr", 9, now=1e-9)
        assert injector.collapsed("lr", 9, now=1e-9)
        assert injector.accounting_balanced()

    def test_mixed_modes_ledger_balances_over_many_writes(self):
        plan = FaultPlan(seed=11, retention_collapse=True, collapse_scale=0.3,
                         write_errors=True, write_error_rate=0.4,
                         max_write_retries=2)
        injector = FaultInjector(plan, RETENTIONS)
        for i in range(500):
            injector.on_data_write("lr" if i % 2 else "hr", i % 64, now=i * 1e-8)
            assert injector.accounting_balanced()


class TestStarvationAndOverflowHooks:
    def test_stretch_identity_at_factor_one(self):
        injector = FaultInjector(FaultPlan(), RETENTIONS)
        assert injector.stretch_tick(1e-6) == 1e-6
        assert injector.stats.sweeps_delayed == 0

    def test_stretch_scales_and_counts(self):
        injector = FaultInjector(FaultPlan(sweep_delay_factor=8.0), RETENTIONS)
        assert injector.stretch_tick(1e-6) == pytest.approx(8e-6)
        assert injector.stats.sweeps_delayed == 1

    def test_buffer_overflow_ledger(self):
        injector = FaultInjector(FaultPlan(), RETENTIONS)
        injector.on_buffer_overflow("hr->lr", dirty=True)
        injector.on_buffer_overflow("lr->hr", dirty=False)
        assert injector.stats.buffer_overflows == 2
        assert injector.stats.buffer_overflow_dirty == 1


class TestCheckerOnHealthyRuns:
    def test_clean_twopart_run(self):
        l2 = make_small_l2()
        checker = InvariantChecker(l2, interval=16)
        now = drive(l2, checker=checker)
        checker.finalize(now)
        assert checker.ok
        assert checker.checks_run > 10
        checker.assert_ok()  # must not raise

    def test_clean_run_with_injection_active(self):
        plan = FaultPlan(seed=2, retention_collapse=True, collapse_scale=1.0,
                         write_errors=True, write_error_rate=0.1,
                         max_write_retries=2)
        injector = FaultInjector(plan, {"lr": 2e-6, "hr": 4e-5})
        l2 = make_small_l2(lr_retention_s=2e-6, hr_retention_s=4e-5,
                           faults=injector)
        checker = InvariantChecker(l2, interval=16)
        now = drive(l2, num_accesses=1200, checker=checker)
        checker.finalize(now)
        # the healthy cache detects every collapse on a read path
        assert injector.stats.undetected_corrupt_serves == 0
        assert injector.accounting_balanced()
        assert checker.ok, checker.violations

    def test_checker_never_mutates_results(self):
        plain = make_small_l2()
        observed = make_small_l2()
        checker = InvariantChecker(observed, interval=8)
        drive(plain)
        drive(observed, checker=checker)
        assert plain.stats.hits == observed.stats.hits
        assert plain.dram_writebacks_total == observed.dram_writebacks_total
        assert plain.energy.total_j == observed.energy.total_j

    def test_bad_interval_rejected(self):
        with pytest.raises(FaultInjectionError):
            InvariantChecker(make_small_l2(), interval=0)


class SilentDirtyDropper(TwoPartSTTL2):
    """Broken variant: periodically drops a dirty line with no write-back.

    The drop is throttled so dirty lines accumulate between checker
    batches — a drop must land on a line the checker has already seen, or
    the interval-sampled conservation check cannot witness it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._maintenance_calls = 0

    def maintenance(self, now):
        writebacks = super().maintenance(now)
        self._maintenance_calls += 1
        if self._maintenance_calls % 16:
            return writebacks
        for array in (self.lr_array, self.hr_array):
            rebuild = array.mapper.rebuild
            for index, _, block in array.iter_blocks():
                if block.valid and block.dirty:
                    array.invalidate(rebuild(block.tag, index))
                    return writebacks
        return writebacks


class DoubleResident(TwoPartSTTL2):
    """Broken variant: migration leaves a stale copy behind in HR."""

    def _migrate_and_write(self, line, now, energy, tag_latency):
        result = super()._migrate_and_write(line, now, energy, tag_latency)
        self.hr_array.fill(line, now, dirty=False)
        return result


class BlindInjector(FaultInjector):
    """Injector whose detection reads are blind: the cache never expires
    collapsed blocks, so demand hits get served from corrupt data."""

    def collapsed(self, part, line, now):
        return False

    def on_hit_served(self, part, line, now):
        # audit against the *raw* deadlines, like the real injector
        deadline = self._deadlines.get((part, line))
        if deadline is not None and now >= deadline:
            self.stats.undetected_corrupt_serves += 1


class TestMutationNegatives:
    """The checker must catch each deliberately-broken variant."""

    def test_silent_dirty_drop_violates_conservation(self):
        l2 = SilentDirtyDropper(
            hr_capacity_bytes=32 * KB, hr_associativity=4,
            lr_capacity_bytes=8 * KB, lr_associativity=2, line_size=256,
        )
        checker = InvariantChecker(l2, interval=8)
        drive(l2, num_accesses=400, checker=checker)
        assert not checker.ok
        assert any(v.invariant == "dirty-conservation" for v in checker.violations)
        with pytest.raises(InvariantViolationError):
            checker.assert_ok()

    def test_double_residency_violates_exclusivity(self):
        l2 = DoubleResident(
            hr_capacity_bytes=32 * KB, hr_associativity=4,
            lr_capacity_bytes=8 * KB, lr_associativity=2, line_size=256,
        )
        checker = InvariantChecker(l2, interval=8)
        drive(l2, num_accesses=400, checker=checker)
        assert any(
            v.invariant == "residency-exclusivity" for v in checker.violations
        )

    def test_blind_detection_reports_undetected_data_loss(self):
        plan = FaultPlan(seed=4, retention_collapse=True, collapse_scale=0.05)
        blind = BlindInjector(plan, {"lr": 2e-6, "hr": 4e-5})
        l2 = make_small_l2(lr_retention_s=2e-6, hr_retention_s=4e-5, faults=blind)
        checker = InvariantChecker(l2, interval=8)
        now = drive(l2, num_accesses=1200, checker=checker)
        checker.finalize(now)
        assert blind.stats.undetected_corrupt_serves > 0
        assert any(
            v.invariant == "undetected-data-loss" for v in checker.violations
        )

    def test_corrupt_tag_index_detected(self):
        l2 = make_small_l2()
        drive(l2, num_accesses=100)
        checker = InvariantChecker(l2)
        l2.hr_array.sets[0]._tag_to_way[0xDEAD] = 0
        checker.check(now=1.0)
        assert any(
            v.invariant == "tag-index-agreement" for v in checker.violations
        )

    def test_tampered_counter_detected(self):
        l2 = make_small_l2()
        drive(l2, num_accesses=100)
        checker = InvariantChecker(l2)
        l2.migrations_to_lr += 1
        checker.check(now=1.0)
        assert any(
            v.invariant == "counter-reconciliation" for v in checker.violations
        )

    def test_violation_total_exact_past_recording_cap(self):
        l2 = make_small_l2()
        checker = InvariantChecker(l2)
        for i in range(MAX_RECORDED_VIOLATIONS + 10):
            checker._record("test", f"violation {i}", now=float(i))
        assert len(checker.violations) == MAX_RECORDED_VIOLATIONS
        assert checker.total_violations == MAX_RECORDED_VIOLATIONS + 10


class TestGenericL2Support:
    def test_uniform_l2_gets_tag_index_checks(self):
        from repro.core.uniform import UniformL2

        l2 = UniformL2(32 * KB, 4, 256, technology="sram")
        checker = InvariantChecker(l2, interval=16)
        now = 0.0
        for i in range(200):
            now += 1e-7
            l2.access((i * 256) % (16 * KB), i % 3 == 0, now)
            checker.after_access(now)
        checker.finalize(now)
        assert checker.ok
        assert checker.checks_run > 0
