"""Tests for fault campaigns, their reports, the inject CLI, and the
no-injection digest gate (checker attached => results byte-identical)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import FaultInjectionError
from repro.faults import (
    CAMPAIGNS,
    REPORT_SCHEMA_VERSION,
    run_campaign,
    validate_report,
    write_report,
)
from repro.io import canonical_json, load_json

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Short trace for test speed; campaigns still inject hundreds of faults.
FAST = {"trace_length": 1500}


class TestCampaignCatalog:
    def test_expected_campaigns_present(self):
        assert {"retention", "buffer-overflow", "write-error",
                "refresh-starvation"} <= set(CAMPAIGNS)

    def test_unknown_campaign_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown campaign"):
            run_campaign("nope")

    def test_bad_trace_length_rejected(self):
        with pytest.raises(FaultInjectionError):
            run_campaign("retention", trace_length=0)


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        first = run_campaign("retention", seed=7, **FAST)
        second = run_campaign("retention", seed=7, **FAST)
        assert canonical_json(first) == canonical_json(second)

    def test_different_seed_changes_report(self):
        assert canonical_json(run_campaign("retention", seed=1, **FAST)) != (
            canonical_json(run_campaign("retention", seed=2, **FAST))
        )


class TestCampaignProperties:
    """Seeded property-style sweep: the safety contract must hold for
    every campaign under several seeds, not just one golden run."""

    @pytest.mark.parametrize("name", sorted(CAMPAIGNS))
    def test_campaign_contract_across_seeds(self, name):
        for seed in range(3):
            report = run_campaign(name, seed=seed, **FAST)
            validate_report(report)
            summary = report["summary"]
            assert summary["undetected_data_loss"] == 0
            assert summary["accounting_balanced"]
            assert report["ok"], report["invariants"]["violations"]

    def test_retention_injects_and_detects(self):
        report = run_campaign("retention", seed=7, **FAST)
        summary = report["summary"]
        assert summary["faults_injected"] >= 1
        assert summary["faults_detected"] >= 1
        # every detected dirty collapse is an accounted data loss
        assert report["l2"]["data_losses"] >= summary["data_losses_detected"]

    def test_buffer_overflow_falls_back_to_dram(self):
        report = run_campaign("buffer-overflow", seed=0, **FAST)
        faults = report["faults"]
        assert faults["buffer_overflows"] >= 1
        # every dirty overflow became a DRAM write-back, never a loss
        assert report["l2"]["dram_writebacks_total"] >= (
            faults["buffer_overflow_dirty"]
        )
        assert report["summary"]["undetected_data_loss"] == 0

    def test_write_error_retries_are_bounded(self):
        report = run_campaign("write-error", seed=3, **FAST)
        faults = report["faults"]
        assert faults["write_errors"] >= 1
        retries_cap = report["plan"]["max_write_retries"]
        # errors = retried failures + final failures of uncorrectable writes;
        # the budget bounds errors per write, so totals obey the cap too
        assert faults["write_retries"] <= faults["write_errors"]
        assert faults["write_uncorrectable"] * (retries_cap + 1) <= (
            faults["write_errors"] + retries_cap * faults["write_retries"]
        )

    def test_refresh_starvation_delays_sweeps(self):
        report = run_campaign("refresh-starvation", seed=0, **FAST)
        assert report["faults"]["sweeps_delayed"] >= 1
        assert report["summary"]["undetected_data_loss"] == 0


class TestReportSchema:
    def test_report_has_schema_and_kind(self):
        report = run_campaign("retention", seed=0, **FAST)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["kind"] == "fault-campaign"

    def test_validate_rejects_wrong_kind(self):
        report = run_campaign("retention", seed=0, **FAST)
        bad = dict(report, kind="replay-bench")
        with pytest.raises(FaultInjectionError, match="kind"):
            validate_report(bad)

    def test_validate_rejects_missing_summary_field(self):
        report = run_campaign("retention", seed=0, **FAST)
        bad = dict(report, summary={"faults_injected": 1})
        with pytest.raises(FaultInjectionError, match="summary"):
            validate_report(bad)

    def test_validate_rejects_negative_count(self):
        report = run_campaign("retention", seed=0, **FAST)
        summary = dict(report["summary"], faults_detected=-1)
        with pytest.raises(FaultInjectionError, match="non-negative"):
            validate_report(dict(report, summary=summary))

    def test_write_report_round_trips(self, tmp_path):
        report = run_campaign("retention", seed=0, **FAST)
        out = tmp_path / "report.json"
        write_report(report, out)
        loaded = load_json(out)
        validate_report(loaded)
        assert loaded["summary"] == report["summary"]


class TestInjectCLI:
    def test_retention_seed7_exits_zero_and_reports_faults(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        assert main(["inject", "retention", "--seed", "7",
                     "--trace-length", "1500", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "verdict        : OK" in stdout
        report = json.loads(out.read_text())
        validate_report(report)
        assert report["seed"] == 7
        assert report["summary"]["faults_injected"] >= 1
        assert report["summary"]["undetected_data_loss"] == 0

    def test_cli_report_matches_library_run(self, tmp_path):
        out = tmp_path / "campaign.json"
        main(["inject", "retention", "--seed", "7",
              "--trace-length", "1500", "--out", str(out)])
        direct = run_campaign("retention", seed=7, trace_length=1500)
        assert canonical_json(load_json(out)) == canonical_json(direct)

    def test_unknown_campaign_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["inject", "nonsense"])
        assert excinfo.value.code == 2

    def test_bad_trace_length_exits_two(self, capsys):
        assert main(["inject", "retention", "--trace-length", "0"]) == 2
        assert "inject" in capsys.readouterr().err


class TestDigestGateWithCheckerAttached:
    """Injection off + checker on must leave pinned results untouched."""

    def test_quick_bench_digest_unchanged(self):
        from repro.benchmarks import QUICK_SCENARIOS, result_digest
        from repro.config import all_configs
        from repro.faults import InvariantChecker
        from repro.gpu.simulator import GPUSimulator
        from repro.workloads import build_workload

        baseline_doc = load_json(REPO_ROOT / "BENCH_replay.json")
        # multi-shard records pin a different (documented) digest, so key
        # only the engines in the digest-equivalence set
        baseline = {
            (s["workload"], s["config"], s["trace_length"], s["seed"]):
                s["result_sha256"]
            for s in baseline_doc["scenarios"]
            if s.get("shards", 1) == 1
        }
        scenario = QUICK_SCENARIOS[0]
        key = (scenario.workload, scenario.config,
               scenario.trace_length, scenario.seed)
        assert key in baseline, "pinned quick scenario missing from baseline"
        config = all_configs()[scenario.config]
        workload = build_workload(
            scenario.workload, num_accesses=scenario.trace_length,
            num_sms=config.num_sms, seed=scenario.seed,
        )
        simulator = GPUSimulator(config, workload)
        checker = InvariantChecker(simulator.l2)
        simulator.invariant_checker = checker
        digest = result_digest(simulator.run())
        assert digest == baseline[key]
        assert checker.ok
        assert checker.checks_run > 0
