"""Tests for address slicing and bank hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.address import AddressMapper, bank_index
from repro.errors import GeometryError


class TestAddressMapper:
    def test_split_basic(self):
        mapper = AddressMapper(line_size=256, num_sets=64)
        tag, index = mapper.split(0x12345)
        # 0x12345 >> 8 = 0x123; 0x123 & 63 = 0x23; 0x123 >> 6 = 4
        assert index == 0x123 & 63
        assert tag == 0x123 >> 6

    def test_rebuild_roundtrip_pow2(self):
        mapper = AddressMapper(line_size=256, num_sets=64)
        address = 0xDEADBEEF00
        tag, index = mapper.split(address)
        assert mapper.rebuild(tag, index) == mapper.line_address(address)

    def test_rebuild_roundtrip_non_pow2(self):
        """The paper's 7-way HR part has 768 sets (not a power of two)."""
        mapper = AddressMapper(line_size=256, num_sets=768)
        for address in (0, 256, 0xABCDE00, 987654321):
            tag, index = mapper.split(address)
            assert 0 <= index < 768
            assert mapper.rebuild(tag, index) == mapper.line_address(address)

    def test_line_address_alignment(self):
        mapper = AddressMapper(line_size=128, num_sets=16)
        assert mapper.line_address(0x1FF) == 0x180

    def test_consecutive_lines_hit_consecutive_sets(self):
        mapper = AddressMapper(line_size=256, num_sets=64)
        indices = [mapper.split(line * 256)[1] for line in range(8)]
        assert indices == list(range(8))

    def test_rejects_non_pow2_line(self):
        with pytest.raises(GeometryError):
            AddressMapper(line_size=100, num_sets=4)

    def test_rejects_zero_sets(self):
        with pytest.raises(GeometryError):
            AddressMapper(line_size=64, num_sets=0)

    def test_rejects_negative_address(self):
        mapper = AddressMapper(line_size=64, num_sets=4)
        with pytest.raises(GeometryError):
            mapper.split(-1)

    def test_rebuild_rejects_out_of_range_index(self):
        mapper = AddressMapper(line_size=64, num_sets=4)
        with pytest.raises(GeometryError):
            mapper.rebuild(0, 4)

    @given(st.integers(min_value=0, max_value=2**40),
           st.sampled_from([64, 128, 256]),
           st.sampled_from([1, 4, 64, 768, 1024]))
    def test_roundtrip_property(self, address, line_size, num_sets):
        mapper = AddressMapper(line_size=line_size, num_sets=num_sets)
        tag, index = mapper.split(address)
        assert 0 <= index < num_sets
        assert mapper.rebuild(tag, index) == mapper.line_address(address)


class TestBankIndex:
    def test_line_interleaving(self):
        banks = [bank_index(line * 256, 256, 8) for line in range(16)]
        assert banks == list(range(8)) * 2

    def test_same_line_same_bank(self):
        assert bank_index(0x1000, 256, 8) == bank_index(0x10FF, 256, 8)

    def test_rejects_non_pow2_banks(self):
        with pytest.raises(GeometryError):
            bank_index(0, 256, 6)

    def test_rejects_negative_address(self):
        with pytest.raises(GeometryError):
            bank_index(-5, 256, 8)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_bank_in_range(self, address):
        assert 0 <= bank_index(address, 256, 8) < 8
