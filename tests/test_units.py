"""Tests for repro.units."""


import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_cycles_to_seconds_basic(self):
        assert units.cycles_to_seconds(700, 700e6) == pytest.approx(1e-6)

    def test_seconds_to_cycles_roundtrip(self):
        assert units.seconds_to_cycles(1e-6, 700e6) == pytest.approx(700)

    def test_cycles_to_seconds_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            units.cycles_to_seconds(10, 0.0)

    def test_seconds_to_cycles_rejects_negative_frequency(self):
        with pytest.raises(ValueError):
            units.seconds_to_cycles(1.0, -1.0)

    @given(st.floats(min_value=1e-12, max_value=1e6),
           st.floats(min_value=1e3, max_value=1e10))
    def test_roundtrip_property(self, seconds, freq):
        cycles = units.seconds_to_cycles(seconds, freq)
        assert units.cycles_to_seconds(cycles, freq) == pytest.approx(seconds)


class TestFormatting:
    def test_format_time_ns(self):
        assert units.format_time(5e-9) == "5ns"

    def test_format_time_us(self):
        assert units.format_time(40e-6) == "40us"

    def test_format_time_negative(self):
        assert units.format_time(-1e-3) == "-1ms"

    def test_format_time_sub_ps(self):
        assert "ps" in units.format_time(0.5e-12)

    def test_format_energy_nj(self):
        assert units.format_energy(2e-9) == "2nJ"

    def test_format_energy_pj(self):
        assert units.format_energy(150e-12) == "150pJ"

    def test_format_capacity_kb(self):
        assert units.format_capacity(384 * 1024) == "384KB"

    def test_format_capacity_mb_fraction(self):
        assert units.format_capacity(1536 * 1024) == "1.50MB"

    def test_format_capacity_bytes(self):
        assert units.format_capacity(100) == "100B"

    def test_format_capacity_rejects_negative(self):
        with pytest.raises(ValueError):
            units.format_capacity(-1)


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 256, 1 << 20])
    def test_is_power_of_two_true(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 255])
    def test_is_power_of_two_false(self, value):
        assert not units.is_power_of_two(value)

    def test_log2_int_exact(self):
        assert units.log2_int(256) == 8

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            units.log2_int(100)

    @given(st.integers(min_value=0, max_value=40))
    def test_log2_roundtrip(self, exponent):
        assert units.log2_int(1 << exponent) == exponent


class TestConstants:
    def test_year_is_365_25_days(self):
        assert units.YEAR == pytest.approx(365.25 * 24 * 3600)

    def test_capacity_scale(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB

    def test_time_ordering(self):
        assert units.PS < units.NS < units.US < units.MS < units.SECOND
