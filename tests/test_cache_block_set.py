"""Tests for CacheBlock and CacheSet primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.block import CacheBlock
from repro.cache.cacheset import CacheSet
from repro.errors import ConfigurationError


class TestCacheBlock:
    def test_initial_state_invalid(self):
        block = CacheBlock()
        assert not block.valid and not block.dirty
        assert block.tag == -1

    def test_fill_clean(self):
        block = CacheBlock()
        block.fill(0x42, now=1.0)
        assert block.valid and not block.dirty
        assert block.write_count == 0
        assert block.insert_time == 1.0

    def test_fill_dirty_counts_as_write(self):
        block = CacheBlock()
        block.fill(0x42, now=1.0, dirty=True)
        assert block.dirty
        assert block.write_count == 1
        assert block.total_writes == 1
        assert block.last_write_time == 1.0

    def test_record_write_saturates(self):
        block = CacheBlock()
        block.fill(0x1, now=0.0)
        for i in range(10):
            block.record_write(now=float(i), saturate_at=3)
        assert block.write_count == 3
        assert block.total_writes == 10

    def test_record_write_unbounded_without_saturation(self):
        block = CacheBlock()
        block.fill(0x1, now=0.0)
        for i in range(10):
            block.record_write(now=float(i))
        assert block.write_count == 10

    def test_age_since_write(self):
        block = CacheBlock()
        block.fill(0x1, now=0.0, dirty=True)
        assert block.age_since_write(5.0) == pytest.approx(5.0)

    def test_age_infinite_when_never_written(self):
        block = CacheBlock()
        block.fill(0x1, now=0.0)
        assert block.age_since_write(5.0) == float("inf")

    def test_reset_clears_everything(self):
        block = CacheBlock()
        block.fill(0x1, now=1.0, dirty=True)
        block.record_read(2.0)
        block.reset()
        assert not block.valid and block.total_writes == 0
        assert block.total_reads == 0


class TestCacheSet:
    def test_lookup_miss(self):
        cache_set = CacheSet(4)
        assert cache_set.lookup(0x1) is None

    def test_install_then_lookup(self):
        cache_set = CacheSet(4)
        way = cache_set.victim_way()
        cache_set.install(way, 0x1, now=0.0)
        assert cache_set.lookup(0x1) == way

    def test_install_replaces_tag_mapping(self):
        cache_set = CacheSet(1)
        cache_set.install(0, 0x1, now=0.0)
        cache_set.install(0, 0x2, now=1.0)
        assert cache_set.lookup(0x1) is None
        assert cache_set.lookup(0x2) == 0

    def test_invalidate_way(self):
        cache_set = CacheSet(2)
        cache_set.install(0, 0x1, now=0.0)
        cache_set.invalidate_way(0)
        assert cache_set.lookup(0x1) is None
        assert cache_set.occupancy() == 0

    def test_set_writes_counter(self):
        cache_set = CacheSet(2)
        cache_set.install(0, 0x1, now=0.0, dirty=True)
        cache_set.record_write(0, now=1.0)
        assert cache_set.set_writes == 2

    def test_valid_blocks(self):
        cache_set = CacheSet(4)
        cache_set.install(0, 0x1, now=0.0)
        cache_set.install(1, 0x2, now=0.0)
        assert len(cache_set.valid_blocks()) == 2

    def test_victim_prefers_invalid(self):
        cache_set = CacheSet(2)
        cache_set.install(0, 0x1, now=0.0)
        assert cache_set.victim_way() == 1

    def test_rejects_zero_associativity(self):
        with pytest.raises(ConfigurationError):
            CacheSet(0)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60))
    def test_tag_map_consistent(self, tags):
        """After any install sequence, lookup agrees with block state."""
        cache_set = CacheSet(4)
        for tag in tags:
            if cache_set.lookup(tag) is None:
                way = cache_set.victim_way()
                cache_set.install(way, tag, now=0.0)
        for way, block in enumerate(cache_set.blocks):
            if block.valid:
                assert cache_set.lookup(block.tag) == way
