"""Tests for the constant/texture read-only caches and their routing."""

import pytest

from repro.errors import ConfigurationError
from repro.gpu.readonly import (
    CONST_CACHE_CONFIG,
    TEXTURE_CACHE_CONFIG,
    ReadOnlyCache,
    ROCacheConfig,
)
from repro.units import KB


class TestROCacheConfig:
    def test_table2_geometries(self):
        assert CONST_CACHE_CONFIG.capacity_bytes == 8 * KB
        assert CONST_CACHE_CONFIG.line_size == 128
        assert TEXTURE_CACHE_CONFIG.capacity_bytes == 12 * KB
        assert TEXTURE_CACHE_CONFIG.line_size == 64

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            ROCacheConfig(8 * KB + 1, 4, 128)


class TestReadOnlyCache:
    def test_miss_then_hit(self):
        cache = ReadOnlyCache(CONST_CACHE_CONFIG)
        first = cache.access(0x1000, now=0.0)
        assert first is not None and first.kind == "fetch"
        assert cache.access(0x1000, now=1e-9) is None

    def test_no_dirty_lines_ever(self):
        cache = ReadOnlyCache(TEXTURE_CACHE_CONFIG)
        for i in range(500):
            cache.access(i * 64, now=i * 1e-9)
        dirty = [b for _, _, b in cache.array.iter_blocks() if b.valid and b.dirty]
        assert dirty == []

    def test_fetch_line_aligned(self):
        cache = ReadOnlyCache(TEXTURE_CACHE_CONFIG)  # 64B lines
        request = cache.access(0x1033, now=0.0)
        assert request is not None and request.address == 0x1000

    def test_hit_rate(self):
        cache = ReadOnlyCache(CONST_CACHE_CONFIG)
        cache.access(0x0, now=0.0)
        cache.access(0x0, now=1e-9)
        assert cache.hit_rate == pytest.approx(0.5)


class TestSimulatorRouting:
    def make_workload_with_const(self):
        from repro.workloads.profiles import BenchmarkProfile
        from repro.workloads.generator import TraceGenerator
        from repro.workloads.trace import Workload

        profile = BenchmarkProfile(
            name="consty", region=1, description="const/tex heavy kernel",
            regs_per_thread=20, threads_per_block=256, compute_intensity=8.0,
            p_stream_read=0.30, p_hot_read=0.20, p_wws_write=0.10,
            p_const_read=0.20, p_texture_read=0.20,
        )
        trace = TraceGenerator(profile).generate(num_accesses=4000, seed=0)
        return Workload(name="consty", kernel=profile.kernel_descriptor(),
                        trace=trace), profile

    def test_trace_carries_const_tex_fractions(self):
        workload, profile = self.make_workload_with_const()
        assert workload.trace.const_fraction == pytest.approx(0.20, abs=0.05)
        assert workload.trace.texture_fraction == pytest.approx(0.20, abs=0.05)

    def test_simulator_routes_to_ro_caches(self):
        from repro.config import baseline_sram
        from repro.gpu.simulator import GPUSimulator

        workload, _ = self.make_workload_with_const()
        sim = GPUSimulator(baseline_sram(), workload)
        sim.run()
        const_accesses = sum(c.array.stats.accesses for c in sim.const_caches)
        tex_accesses = sum(c.array.stats.accesses for c in sim.texture_caches)
        assert const_accesses > 0 and tex_accesses > 0
        # small shared constant bank: high hit rate once warm
        const_hits = sum(c.array.stats.hits for c in sim.const_caches)
        assert const_hits / const_accesses > 0.5
        # L1 never sees const/tex traffic
        l1_accesses = sum(l1.array.stats.accesses for l1 in sim.l1s)
        assert l1_accesses + const_accesses + tex_accesses == len(workload.trace)

    def test_existing_profiles_have_no_const_traffic(self):
        """The calibrated suite is untouched by the const/tex extension."""
        from repro.workloads import build_workload

        workload = build_workload("bfs", num_accesses=2000, seed=0)
        assert workload.trace.const_fraction == 0.0
        assert workload.trace.texture_fraction == 0.0

    def test_memory_access_space_property(self):
        from repro.workloads.trace import MemoryAccess

        assert MemoryAccess(0, 0, False, False, is_const=True).space == "const"
        assert MemoryAccess(0, 0, False, False, is_texture=True).space == "texture"
        assert MemoryAccess(0, 0, False, True).space == "local"
        assert MemoryAccess(0, 0, True, False).space == "global"
