"""Tests for the endurance/lifetime analysis and wear-leveling wrapper."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.lifetime import lifetime_report, relative_lifetime
from repro.cache.array import SetAssociativeCache
from repro.cache.wearlevel import WearLevelingCache
from repro.errors import AnalysisError, ConfigurationError
from repro.units import KB, YEAR


def make_array(capacity=4 * KB, assoc=2, line=256):
    return SetAssociativeCache(capacity, assoc, line)


class TestFrameWearCounters:
    def test_fill_wears_the_frame(self):
        array = make_array()
        array.access(0x0, is_write=False)
        frames = array.per_frame_write_counts()
        assert sum(sum(s) for s in frames) == 1

    def test_write_hits_accumulate(self):
        array = make_array()
        for _ in range(5):
            array.access(0x0, is_write=True)
        frames = array.per_frame_write_counts()
        assert max(max(s) for s in frames) == 5  # 1 fill + 4 write hits

    def test_wear_survives_eviction(self):
        array = SetAssociativeCache(2 * 256, 1, 256)  # 2 sets direct-mapped
        array.access(0x0, is_write=True)
        array.access(0x0 + 2 * 256, is_write=True)  # evicts, same frame
        frames = array.per_frame_write_counts()
        assert frames[0][0] == 2


class TestLifetimeReport:
    def test_lifetime_scales_with_endurance(self):
        array = make_array()
        for _ in range(10):
            array.access(0x0, is_write=True)
        one = lifetime_report(array, elapsed_s=1.0, endurance_writes=1e6)
        ten = lifetime_report(array, elapsed_s=1.0, endurance_writes=1e7)
        assert ten.lifetime_s == pytest.approx(10 * one.lifetime_s)

    def test_lifetime_infinite_without_writes(self):
        array = make_array()
        report = lifetime_report(array, elapsed_s=1.0)
        assert report.lifetime_s == float("inf")

    def test_imbalance_of_single_hot_line(self):
        array = make_array()
        for _ in range(100):
            array.access(0x0, is_write=True)
        report = lifetime_report(array, elapsed_s=1.0)
        assert report.imbalance > 10

    def test_even_writes_low_imbalance(self):
        array = make_array()
        for line in range(array.num_lines):
            array.access(line * 256, is_write=True)
        report = lifetime_report(array, elapsed_s=1.0)
        assert report.imbalance == pytest.approx(1.0)

    def test_lifetime_years(self):
        array = make_array()
        array.access(0x0, is_write=True)
        report = lifetime_report(array, elapsed_s=1.0, endurance_writes=YEAR)
        assert report.lifetime_years == pytest.approx(1.0)

    def test_relative_lifetime(self):
        array = make_array()
        for _ in range(10):
            array.access(0x0, is_write=True)
        a = lifetime_report(array, elapsed_s=1.0, endurance_writes=2e6)
        b = lifetime_report(array, elapsed_s=1.0, endurance_writes=1e6)
        assert relative_lifetime(a, b) == pytest.approx(2.0)

    def test_validation(self):
        array = make_array()
        with pytest.raises(AnalysisError):
            lifetime_report(array, elapsed_s=0.0)
        with pytest.raises(AnalysisError):
            lifetime_report(array, elapsed_s=1.0, endurance_writes=0.0)


class TestWearLeveling:
    def test_rotation_spreads_hot_line_wear(self):
        """A single hammered line must wear many frames under rotation."""
        plain = make_array(capacity=8 * KB, assoc=2)
        leveled = WearLevelingCache(
            make_array(capacity=8 * KB, assoc=2), rotation_period_writes=50
        )
        for _ in range(1000):
            plain.access(0x0, is_write=True)
            leveled.access(0x0, is_write=True)
        plain_max = max(max(s) for s in plain.per_frame_write_counts())
        leveled_max = max(max(s) for s in leveled.per_frame_write_counts())
        assert leveled_max < plain_max / 3
        assert leveled.rotations > 0

    def test_no_rotation_behaves_identically(self):
        plain = make_array()
        leveled = WearLevelingCache(make_array(), rotation_period_writes=10**9)
        for i in range(200):
            a = plain.access((i % 7) * 256, is_write=(i % 2 == 0))
            b = leveled.access((i % 7) * 256, is_write=(i % 2 == 0))
            assert a.hit == b.hit

    def test_consistent_lookup_between_rotations(self):
        leveled = WearLevelingCache(make_array(), rotation_period_writes=1000)
        leveled.access(0x1000, is_write=True)
        assert leveled.probe(0x1000)

    def test_rotation_counts_dirty_flush(self):
        leveled = WearLevelingCache(make_array(), rotation_period_writes=3)
        for i in range(3):
            leveled.access(i * 256, is_write=True)
        assert leveled.rotations == 1
        assert leveled.rotation_writebacks == 3

    def test_non_pow2_sets_supported(self):
        array = SetAssociativeCache(1344 * KB, 7, 256)  # 768 sets
        leveled = WearLevelingCache(array, rotation_period_writes=10)
        for i in range(100):
            leveled.access((i % 5) * 256, is_write=True)
        assert leveled.rotations > 0

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            WearLevelingCache(make_array(), rotation_period_writes=0)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=20, max_size=200))
    def test_leveled_wear_bounded_on_skewed_writes(self, lids):
        """Bound on short-run wear under rotation.

        XOR rotation is only guaranteed to help over many rotations; on a
        short stream, hot lines can swap into each other's worn frames, so
        the honest invariant is a bound: no frame may exceed the unleveled
        maximum by more than one rotation segment (period writes + the
        refills the flushes cost).
        """
        period = 25
        plain = make_array()
        leveled = WearLevelingCache(make_array(), rotation_period_writes=period)
        stream = [lid % 4 for lid in lids]  # concentrate on 4 lines
        for lid in stream:
            plain.access(lid * 256, is_write=True)
            leveled.access(lid * 256, is_write=True)
        plain_max = max(max(s) for s in plain.per_frame_write_counts())
        leveled_max = max(max(s) for s in leveled.per_frame_write_counts())
        assert leveled_max <= plain_max + period + leveled.rotations + 1
