"""Docs invariants: link integrity and experiment-registry coverage."""

import os
import re
import subprocess
import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs_links  # noqa: E402  (scripts/ is not a package)


class TestLinks:
    def test_all_relative_links_resolve(self):
        failures = check_docs_links.check(
            check_docs_links.default_files(REPO_ROOT)
        )
        assert not failures, "\n".join(failures)

    def test_default_scan_covers_readme_and_docs(self):
        files = {p.name for p in check_docs_links.default_files(REPO_ROOT)}
        assert "README.md" in files
        assert "experiments.md" in files
        assert "architecture.md" in files
        assert "metrics.md" in files
        assert "engine.md" in files
        assert "EXPERIMENTS.md" in files
        assert "DESIGN.md" in files
        assert "service.md" in files

    def test_broken_link_is_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](does-not-exist.md)")
        assert check_docs_links.check([doc])


class TestExperimentDocs:
    def test_every_registry_entry_has_a_section(self):
        text = (REPO_ROOT / "docs" / "experiments.md").read_text()
        for name in EXPERIMENTS:
            assert f"## `{name}`" in text, (
                f"docs/experiments.md is missing a section for {name!r}"
            )

    def test_cross_linked_from_architecture_and_readme(self):
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "experiments.md" in architecture
        assert "docs/experiments.md" in readme

    def test_experiments_md_documents_runner_formats(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "manifest" in text.lower()
        assert "cache" in text.lower()

    def test_experiments_md_documents_trace_validation(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "## Validating paper claims from a trace" in text
        assert "perfetto" in text.lower()


class TestEngineDocs:
    """docs/engine.md must document the SoA engine and stay linked in."""

    def test_engine_md_covers_the_contract(self):
        text = (REPO_ROOT / "docs" / "engine.md").read_text()
        # the selectable flag, the equivalence protocol and the
        # extension guide are the document's reason to exist
        assert "--engine" in text
        assert "byte-identical" in text
        assert "## Equivalence" in text
        assert "## Adding an engine" in text

    def test_engine_md_documents_every_soa_vector(self):
        """One section per flat vector: the docs track the actual layout."""
        from repro.engine.soa_array import SoaCacheArray

        text = (REPO_ROOT / "docs" / "engine.md").read_text()
        array = SoaCacheArray(1024, 2, 64)
        vectors = [
            name for name in vars(array)
            if name.endswith("_vec") or name in ("tag_to_way", "lru")
        ]
        assert vectors, "SoaCacheArray should expose flat vectors"
        missing = [name for name in vectors if f"`{name}`" not in text]
        assert not missing, (
            f"docs/engine.md does not document SoA vectors: {missing}"
        )

    def test_engine_names_match_the_registry(self):
        from repro.engine import DEFAULT_ENGINE, ENGINES

        text = (REPO_ROOT / "docs" / "engine.md").read_text()
        for engine in ENGINES:
            assert f"`{engine}`" in text
        assert DEFAULT_ENGINE in text

    def test_cross_linked_from_readme_architecture_and_performance(self):
        readme = (REPO_ROOT / "README.md").read_text()
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        performance = (REPO_ROOT / "docs" / "performance.md").read_text()
        assert "docs/engine.md" in readme
        assert "engine.md" in architecture
        assert "engine.md" in performance

    def test_experiments_md_has_a_choosing_an_engine_note(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "## Choosing an engine" in text
        assert "--engine" in text


class TestMetricsDocs:
    """docs/metrics.md must stay in sync with the instrumentation."""

    def test_every_emitted_counter_name_is_documented(self):
        import re

        src_root = REPO_ROOT / "src" / "repro"
        text = (REPO_ROOT / "docs" / "metrics.md").read_text()
        emitted = set()
        call_re = re.compile(
            r"""tracer\.(?:count|set_counter|observe|event|sample)\(\s*
                f?['"]([^'"]+)['"]""",
            re.VERBOSE,
        )
        for path in src_root.glob("**/*.py"):
            emitted.update(call_re.findall(path.read_text()))
        assert emitted, "instrumentation sites should be discoverable"
        missing = []
        for name in sorted(emitted):
            # f-string names ("l2.buffer.{self.name}.pushes") are documented
            # with a <name>/<array> placeholder; match on the literal parts
            # (an unterminated "{..." capture is a truncated f-string tail)
            parts = [p for p in re.split(r"\{[^}]*\}?", name) if p]
            if not all(part in text for part in parts):
                missing.append(name)
        assert not missing, (
            f"docs/metrics.md does not document counters/events: {missing}"
        )

    def test_result_fields_mapped_to_paper_claims(self):
        import dataclasses

        from repro.gpu.metrics import SimulationResult

        text = (REPO_ROOT / "docs" / "metrics.md").read_text()
        for claim_field in (
            "lr_write_share", "buffer_overflow_rate", "refresh_writes",
            "data_losses", "migrations_to_lr", "l2_dynamic_power_w",
        ):
            assert claim_field in {
                f.name for f in dataclasses.fields(SimulationResult)
            }
            assert f"`{claim_field}`" in text, (
                f"docs/metrics.md must map {claim_field!r} to a paper claim"
            )

    def test_cross_linked_from_architecture_experiments_and_readme(self):
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        experiments = (REPO_ROOT / "docs" / "experiments.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "metrics.md" in architecture
        assert "metrics.md" in experiments
        assert "docs/metrics.md" in readme


class TestShardingDocs:
    """docs/sharding.md must document the sharded engine and stay linked."""

    def test_sharding_md_covers_the_contract(self):
        text = (REPO_ROOT / "docs" / "sharding.md").read_text()
        # routing, merge determinism, topology and the break-even guide
        # are the document's reason to exist
        assert "bank hash" in text.lower()
        assert "--shards" in text
        assert "byte-identical" in text
        assert "## The deterministic-merge protocol" in text
        assert "## Worker topology" in text
        assert "## When `sharded` beats `soa`" in text

    def test_sharding_md_documents_the_approximation_honestly(self):
        """Multi-shard replay is an approximation; the doc must say so
        rather than implying soa-equality at every shard count."""
        text = (REPO_ROOT / "docs" / "sharding.md").read_text()
        assert "approximat" in text.lower()
        assert "`--shards 1`" in text or "--shards 1" in text

    def test_cross_linked_from_readme_engine_and_architecture(self):
        readme = (REPO_ROOT / "README.md").read_text()
        engine = (REPO_ROOT / "docs" / "engine.md").read_text()
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        performance = (REPO_ROOT / "docs" / "performance.md").read_text()
        assert "docs/sharding.md" in readme
        assert "sharding.md" in engine
        assert "sharding.md" in architecture
        assert "sharding.md" in performance

    def test_default_scan_covers_sharding_md(self):
        import check_docs_links

        files = {p.name for p in check_docs_links.default_files(REPO_ROOT)}
        assert "sharding.md" in files


class TestServiceDocs:
    """docs/service.md's quickstart must actually run against a live
    server — the same no-stale-examples rule the README gets."""

    def _console_cases(self):
        text = (REPO_ROOT / "docs" / "service.md").read_text()
        match = re.search(r"```console\n(.*?)```", text, re.S)
        assert match, "docs/service.md must keep the submit console example"
        cases = []
        for line in match.group(1).splitlines():
            if line.startswith("$ repro-sttgpu "):
                argv = line[len("$ repro-sttgpu "):].split("#")[0].split()
                cases.append((argv, []))
            elif line.strip() and cases:
                cases[-1][1].append(line.rstrip())
        return cases

    def test_service_md_covers_the_contract(self):
        text = (REPO_ROOT / "docs" / "service.md").read_text()
        # the byte-identity promise, the dedup/eviction/drain semantics
        # and the gate policy are the document's reason to exist
        assert "byte-identical" in text
        assert "coalesc" in text.lower()
        assert "## Dedup semantics (request coalescing)" in text
        assert "## The shared result store" in text
        assert "## Draining shutdown" in text
        assert "## The load-test harness and its gate" in text
        assert "Digest changes always fail" in text

    def test_quickstart_runs_against_a_live_server(self):
        import tempfile

        from repro.service import (
            ServerThread,
            SharedResultStore,
            SimulationServer,
        )
        from repro.service.pool import ShardedWorkerPool

        cases = self._console_cases()
        assert cases, "docs/service.md quickstart has no submit commands"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        with tempfile.TemporaryDirectory() as tmp:
            server = SimulationServer(
                port=0,
                store=SharedResultStore(tmp),
                pool=ShardedWorkerPool(shards=1, kind="thread"),
                log=lambda line: None,
            )
            with ServerThread(server) as running:
                for argv, expected in cases:
                    assert expected, f"{argv}: example must show output"
                    # the doc shows the default port; replay on the live one
                    argv = [
                        str(running.port) if arg == "8642" else arg
                        for arg in argv
                    ]
                    proc = subprocess.run(
                        [sys.executable, "-m", "repro.cli", *argv],
                        capture_output=True, text=True, env=env, timeout=600,
                    )
                    assert proc.returncode == 0, (argv, proc.stderr)
                    for line in expected:
                        assert line in proc.stdout, (
                            f"docs/service.md example {' '.join(argv)} no "
                            f"longer prints {line!r}:\n{proc.stdout}"
                        )

    def test_cross_linked_from_readme_architecture_and_performance(self):
        readme = (REPO_ROOT / "README.md").read_text()
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        performance = (REPO_ROOT / "docs" / "performance.md").read_text()
        metrics = (REPO_ROOT / "docs" / "metrics.md").read_text()
        assert "docs/service.md" in readme
        assert "service.md" in architecture
        assert "service.md" in performance
        assert "service.md" in metrics


class TestReadmeQuickstart:
    """The README's per-engine examples must actually run and print what
    they claim — a stale quickstart is worse than none."""

    def _engine_cases(self):
        readme = (REPO_ROOT / "README.md").read_text()
        match = re.search(r"```console\n(.*?)```", readme, re.S)
        assert match, "README must keep the per-engine console example"
        cases = []
        for line in match.group(1).splitlines():
            if line.startswith("$ repro-sttgpu "):
                argv = line[len("$ repro-sttgpu "):].split("#")[0].split()
                cases.append((argv, []))
            elif line.strip() and cases:
                cases[-1][1].append(line.rstrip())
        return cases

    def test_one_example_per_engine(self):
        from repro.engine import ENGINES

        cases = self._engine_cases()
        exercised = {
            argv[argv.index("--engine") + 1]
            for argv, _ in cases if "--engine" in argv
        }
        assert exercised == set(ENGINES)

    def test_examples_run_and_print_the_documented_output(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        for argv, expected in self._engine_cases():
            assert expected, f"{argv}: example must show expected output"
            proc = subprocess.run(
                [sys.executable, "-m", "repro.cli", *argv],
                capture_output=True, text=True, env=env, timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            for line in expected:
                assert line in proc.stdout, (
                    f"README example {' '.join(argv)} no longer prints "
                    f"{line!r}:\n{proc.stdout}"
                )
