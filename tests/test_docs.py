"""Docs invariants: link integrity and experiment-registry coverage."""

import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs_links  # noqa: E402  (scripts/ is not a package)


class TestLinks:
    def test_all_relative_links_resolve(self):
        failures = check_docs_links.check(
            check_docs_links.default_files(REPO_ROOT)
        )
        assert not failures, "\n".join(failures)

    def test_default_scan_covers_readme_and_docs(self):
        files = {p.name for p in check_docs_links.default_files(REPO_ROOT)}
        assert "README.md" in files
        assert "experiments.md" in files
        assert "architecture.md" in files
        assert "metrics.md" in files
        assert "engine.md" in files
        assert "EXPERIMENTS.md" in files
        assert "DESIGN.md" in files

    def test_broken_link_is_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](does-not-exist.md)")
        assert check_docs_links.check([doc])


class TestExperimentDocs:
    def test_every_registry_entry_has_a_section(self):
        text = (REPO_ROOT / "docs" / "experiments.md").read_text()
        for name in EXPERIMENTS:
            assert f"## `{name}`" in text, (
                f"docs/experiments.md is missing a section for {name!r}"
            )

    def test_cross_linked_from_architecture_and_readme(self):
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "experiments.md" in architecture
        assert "docs/experiments.md" in readme

    def test_experiments_md_documents_runner_formats(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "manifest" in text.lower()
        assert "cache" in text.lower()

    def test_experiments_md_documents_trace_validation(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "## Validating paper claims from a trace" in text
        assert "perfetto" in text.lower()


class TestEngineDocs:
    """docs/engine.md must document the SoA engine and stay linked in."""

    def test_engine_md_covers_the_contract(self):
        text = (REPO_ROOT / "docs" / "engine.md").read_text()
        # the selectable flag, the equivalence protocol and the
        # extension guide are the document's reason to exist
        assert "--engine" in text
        assert "byte-identical" in text
        assert "## Equivalence" in text
        assert "## Adding an engine" in text

    def test_engine_md_documents_every_soa_vector(self):
        """One section per flat vector: the docs track the actual layout."""
        from repro.engine.soa_array import SoaCacheArray

        text = (REPO_ROOT / "docs" / "engine.md").read_text()
        array = SoaCacheArray(1024, 2, 64)
        vectors = [
            name for name in vars(array)
            if name.endswith("_vec") or name in ("tag_to_way", "lru")
        ]
        assert vectors, "SoaCacheArray should expose flat vectors"
        missing = [name for name in vectors if f"`{name}`" not in text]
        assert not missing, (
            f"docs/engine.md does not document SoA vectors: {missing}"
        )

    def test_engine_names_match_the_registry(self):
        from repro.engine import DEFAULT_ENGINE, ENGINES

        text = (REPO_ROOT / "docs" / "engine.md").read_text()
        for engine in ENGINES:
            assert f"`{engine}`" in text
        assert DEFAULT_ENGINE in text

    def test_cross_linked_from_readme_architecture_and_performance(self):
        readme = (REPO_ROOT / "README.md").read_text()
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        performance = (REPO_ROOT / "docs" / "performance.md").read_text()
        assert "docs/engine.md" in readme
        assert "engine.md" in architecture
        assert "engine.md" in performance

    def test_experiments_md_has_a_choosing_an_engine_note(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "## Choosing an engine" in text
        assert "--engine" in text


class TestMetricsDocs:
    """docs/metrics.md must stay in sync with the instrumentation."""

    def test_every_emitted_counter_name_is_documented(self):
        import re

        src_root = REPO_ROOT / "src" / "repro"
        text = (REPO_ROOT / "docs" / "metrics.md").read_text()
        emitted = set()
        call_re = re.compile(
            r"""tracer\.(?:count|set_counter|observe|event|sample)\(\s*
                f?['"]([^'"]+)['"]""",
            re.VERBOSE,
        )
        for path in src_root.glob("**/*.py"):
            emitted.update(call_re.findall(path.read_text()))
        assert emitted, "instrumentation sites should be discoverable"
        missing = []
        for name in sorted(emitted):
            # f-string names ("l2.buffer.{self.name}.pushes") are documented
            # with a <name>/<array> placeholder; match on the literal parts
            # (an unterminated "{..." capture is a truncated f-string tail)
            parts = [p for p in re.split(r"\{[^}]*\}?", name) if p]
            if not all(part in text for part in parts):
                missing.append(name)
        assert not missing, (
            f"docs/metrics.md does not document counters/events: {missing}"
        )

    def test_result_fields_mapped_to_paper_claims(self):
        import dataclasses

        from repro.gpu.metrics import SimulationResult

        text = (REPO_ROOT / "docs" / "metrics.md").read_text()
        for claim_field in (
            "lr_write_share", "buffer_overflow_rate", "refresh_writes",
            "data_losses", "migrations_to_lr", "l2_dynamic_power_w",
        ):
            assert claim_field in {
                f.name for f in dataclasses.fields(SimulationResult)
            }
            assert f"`{claim_field}`" in text, (
                f"docs/metrics.md must map {claim_field!r} to a paper claim"
            )

    def test_cross_linked_from_architecture_experiments_and_readme(self):
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        experiments = (REPO_ROOT / "docs" / "experiments.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "metrics.md" in architecture
        assert "metrics.md" in experiments
        assert "docs/metrics.md" in readme
