"""Docs invariants: link integrity and experiment-registry coverage."""

import sys
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs_links  # noqa: E402  (scripts/ is not a package)


class TestLinks:
    def test_all_relative_links_resolve(self):
        failures = check_docs_links.check(
            check_docs_links.default_files(REPO_ROOT)
        )
        assert not failures, "\n".join(failures)

    def test_default_scan_covers_readme_and_docs(self):
        files = {p.name for p in check_docs_links.default_files(REPO_ROOT)}
        assert "README.md" in files
        assert "experiments.md" in files
        assert "architecture.md" in files

    def test_broken_link_is_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](does-not-exist.md)")
        assert check_docs_links.check([doc])


class TestExperimentDocs:
    def test_every_registry_entry_has_a_section(self):
        text = (REPO_ROOT / "docs" / "experiments.md").read_text()
        for name in EXPERIMENTS:
            assert f"## `{name}`" in text, (
                f"docs/experiments.md is missing a section for {name!r}"
            )

    def test_cross_linked_from_architecture_and_readme(self):
        architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
        readme = (REPO_ROOT / "README.md").read_text()
        assert "experiments.md" in architecture
        assert "docs/experiments.md" in readme

    def test_experiments_md_documents_runner_formats(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "manifest" in text.lower()
        assert "cache" in text.lower()
