"""Docstring enforcement for the experiment, telemetry and hot-path layers.

A lightweight pydocstyle-style gate: every module, public class and public
function in ``repro.experiments.*``, ``repro.telemetry``, ``repro.io``,
``repro.tracing.*``, ``repro.benchmarks``, the replay hot path
(``repro.cache.*``, ``repro.gpu.*``), the SoA engine
(``repro.engine.*``), the sharded engine (``repro.shard.*``), the
simulation service (``repro.service.*``) and the analytical surrogate
(``repro.surrogate.*``) must
carry a docstring, and the experiment modules'
docstrings must state their job-decomposition contract.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro.cache
import repro.engine
import repro.experiments
import repro.gpu
import repro.service
import repro.shard
import repro.surrogate

CHECKED_MODULES = sorted(
    f"repro.experiments.{m.name}"
    for m in pkgutil.iter_modules(repro.experiments.__path__)
) + sorted(
    f"repro.cache.{m.name}"
    for m in pkgutil.iter_modules(repro.cache.__path__)
) + sorted(
    f"repro.gpu.{m.name}"
    for m in pkgutil.iter_modules(repro.gpu.__path__)
) + sorted(
    f"repro.engine.{m.name}"
    for m in pkgutil.iter_modules(repro.engine.__path__)
) + sorted(
    f"repro.shard.{m.name}"
    for m in pkgutil.iter_modules(repro.shard.__path__)
) + sorted(
    f"repro.service.{m.name}"
    for m in pkgutil.iter_modules(repro.service.__path__)
) + sorted(
    f"repro.surrogate.{m.name}"
    for m in pkgutil.iter_modules(repro.surrogate.__path__)
) + [
    "repro.experiments", "repro.cache", "repro.gpu", "repro.engine",
    "repro.shard", "repro.service", "repro.surrogate",
    "repro.telemetry", "repro.io", "repro.benchmarks",
    "repro.tracing", "repro.tracing.collector", "repro.tracing.schema",
]

#: Modules decomposed into per-benchmark jobs must document the contract.
JOB_CONTRACT_MODULES = (
    "repro.experiments.fig3", "repro.experiments.fig4",
    "repro.experiments.fig5", "repro.experiments.fig6",
    "repro.experiments.fig8", "repro.experiments.regions",
    "repro.experiments.scaling", "repro.experiments.energy",
    "repro.experiments.variance", "repro.experiments.parallel",
)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; checked at its home
        yield name, obj


@pytest.mark.parametrize("module_name", CHECKED_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module_name} is missing a module docstring"
    )


@pytest.mark.parametrize("module_name", CHECKED_MODULES)
def test_public_members_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in _public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
        if inspect.isclass(obj):
            for m_name, member in vars(obj).items():
                if m_name.startswith("_") or not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    missing.append(f"{name}.{m_name}")
    assert not missing, (
        f"{module_name}: missing docstrings on {sorted(missing)}"
    )


@pytest.mark.parametrize("module_name", JOB_CONTRACT_MODULES)
def test_job_decomposition_contract_documented(module_name):
    module = importlib.import_module(module_name)
    assert "decomposition" in module.__doc__.lower(), (
        f"{module_name} docstring must state its job-decomposition contract"
    )


def test_runner_documents_determinism():
    from repro.experiments import runner

    assert "determinism" in runner.__doc__.lower()
    assert "identical" in (runner.run_all.__doc__ or "").lower() or \
        "deterministic" in (runner.run_all.__doc__ or "").lower()
    assert runner.run_experiment.__doc__
