"""Tests for retention-failure statistics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceModelError
from repro.sttram.failure import (
    bit_failure_probability,
    block_failure_probability,
    expected_failed_bits,
    max_refresh_interval,
)
from repro.units import MS, US


class TestBitFailure:
    def test_zero_elapsed_means_zero_failure(self):
        assert bit_failure_probability(0.0, 40 * US) == 0.0

    def test_one_retention_time_is_1_minus_1_over_e(self):
        p = bit_failure_probability(40 * US, 40 * US)
        assert p == pytest.approx(1 - math.exp(-1))

    def test_monotonic_in_elapsed(self):
        assert bit_failure_probability(10 * US, 40 * US) < bit_failure_probability(
            20 * US, 40 * US
        )

    def test_rejects_negative_elapsed(self):
        with pytest.raises(DeviceModelError):
            bit_failure_probability(-1.0, 1.0)

    def test_rejects_nonpositive_retention(self):
        with pytest.raises(DeviceModelError):
            bit_failure_probability(1.0, 0.0)

    @given(st.floats(min_value=0, max_value=1e3),
           st.floats(min_value=1e-6, max_value=1e3))
    def test_probability_in_unit_interval(self, elapsed, retention):
        p = bit_failure_probability(elapsed, retention)
        assert 0.0 <= p <= 1.0


class TestBlockFailure:
    def test_block_worse_than_bit(self):
        elapsed, retention = 5 * US, 40 * US
        p_bit = bit_failure_probability(elapsed, retention)
        p_block = block_failure_probability(elapsed, retention, 2048)
        assert p_block > p_bit

    def test_single_bit_block_matches_bit(self):
        p_bit = bit_failure_probability(3 * US, 40 * US)
        p_block = block_failure_probability(3 * US, 40 * US, 1)
        assert p_block == pytest.approx(p_bit)

    def test_cliff_behaviour(self):
        """Near the retention time nearly every 256B block has failed -
        the paper's justification that ECC cannot save expired LR blocks."""
        p = block_failure_probability(40 * US, 40 * US, 2048)
        assert p > 0.999999

    def test_tiny_elapsed_is_numerically_stable(self):
        p = block_failure_probability(1e-12, 40 * MS, 2048)
        assert 0 < p < 1e-4

    def test_rejects_bad_block_size(self):
        with pytest.raises(DeviceModelError):
            block_failure_probability(1.0, 1.0, 0)

    @given(st.integers(min_value=1, max_value=4096))
    def test_monotonic_in_block_size(self, bits):
        p_small = block_failure_probability(2 * US, 40 * US, bits)
        p_large = block_failure_probability(2 * US, 40 * US, bits + 1)
        assert p_large >= p_small


class TestRefreshInterval:
    def test_interval_much_shorter_than_retention(self):
        interval = max_refresh_interval(40 * US, 2048, target_block_failure=1e-9)
        assert interval < 40 * US / 1000

    def test_interval_meets_target(self):
        retention, bits, target = 40 * US, 2048, 1e-9
        interval = max_refresh_interval(retention, bits, target)
        assert block_failure_probability(interval, retention, bits) <= target * 1.01

    def test_interval_scales_with_retention(self):
        i_lr = max_refresh_interval(40 * US, 2048)
        i_hr = max_refresh_interval(40 * MS, 2048)
        assert i_hr == pytest.approx(i_lr * 1000, rel=1e-6)

    def test_rejects_bad_target(self):
        with pytest.raises(DeviceModelError):
            max_refresh_interval(1.0, 2048, target_block_failure=0.0)
        with pytest.raises(DeviceModelError):
            max_refresh_interval(1.0, 2048, target_block_failure=1.0)

    def test_looser_target_allows_longer_interval(self):
        tight = max_refresh_interval(40 * US, 2048, target_block_failure=1e-12)
        loose = max_refresh_interval(40 * US, 2048, target_block_failure=1e-6)
        assert loose > tight


class TestExpectedFailedBits:
    def test_expected_bits_at_retention_time(self):
        expected = expected_failed_bits(40 * US, 40 * US, 2048)
        assert expected == pytest.approx(2048 * (1 - math.exp(-1)))

    def test_zero_elapsed(self):
        assert expected_failed_bits(0.0, 40 * US, 2048) == 0.0

    def test_rejects_bad_block(self):
        with pytest.raises(DeviceModelError):
            expected_failed_bits(1.0, 1.0, -5)
