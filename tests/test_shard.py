"""Sharded-engine gates: partitioning, deterministic merge, and parity.

The sharded engine (``repro.shard``, see docs/sharding.md) partitions the
trace by the L2 bank hash and replays each sub-stream on an independent
per-shard simulator, merging the per-shard payloads into one
:class:`~repro.gpu.metrics.SimulationResult`.  These tests enforce its
two load-bearing claims:

* **Degenerate parity** — ``--engine sharded --shards 1`` is
  byte-identical to the ``soa`` engine (same canonical dict, same
  SHA-256 digest) on every pinned bench scenario.
* **Deterministic merge** — the merged result is a pure function of the
  payload *set*: shuffling bank completion order, or changing the worker
  count, never moves the digest.

Plus the satellite behaviours this PR introduced: idle-bank-aware
``BankStats`` (``None`` rates for idle banks, idle banks excluded from
``summarize_banks`` averages), idle-shard payload synthesis, shard-plan
validation errors, the lockstep oracle with a sharded DUT, and the
bench-harness record shape for sharded runs.
"""

import random

import pytest

from repro.benchmarks import (
    PINNED_SCENARIOS,
    QUICK_SCENARIOS,
    BenchmarkError,
    all_configs,
    result_digest,
    run_scenario,
)
from repro.cache.banked import BankStats, BankedCache, summarize_banks
from repro.engine import make_simulator
from repro.errors import ConfigurationError, SimulationError
from repro.io import simulation_result_to_dict
from repro.oracle import make_pair, pressure_config, run_diff
from repro.shard import (
    ShardedGPUSimulator,
    ShardedL2Router,
    idle_payload,
    merge_bank_payloads,
    partition_trace,
    plan_shards,
    shard_l2_config,
)
from repro.workloads import build_workload

ALL_SCENARIOS = tuple(PINNED_SCENARIOS) + tuple(QUICK_SCENARIOS)


def _workload(scenario, config):
    return build_workload(
        scenario.workload,
        num_accesses=scenario.trace_length,
        num_sms=config.num_sms,
        seed=scenario.seed,
    )


class TestShardPlan:
    def test_shard_counts_must_be_powers_of_two_within_bank_count(self):
        config = all_configs()["C1"]
        for bad in (0, 3, -2, config.l2.num_banks * 2):
            with pytest.raises(ConfigurationError):
                plan_shards(config, bad)
        with pytest.raises(ConfigurationError):
            plan_shards(config, "4")

    def test_shards_1_leaves_the_l2_config_untouched(self):
        l2 = all_configs()["C1"].l2
        assert shard_l2_config(l2, 1) is l2

    def test_scaled_config_divides_capacity_and_banks(self):
        config = all_configs()["C1"]
        plan = plan_shards(config, 4)
        sub = plan.sub_config.l2
        assert sub.num_banks == config.l2.num_banks // 4
        assert plan.banks_per_shard == sub.num_banks
        # bank bijection: global = (local << shard_bits) | shard
        seen = sorted(
            plan.global_bank(shard, local)
            for shard in range(4) for local in range(sub.num_banks)
        )
        assert seen == list(range(config.l2.num_banks))

    def test_partition_matches_the_bank_hash_and_remap_drops_shard_bits(self):
        config = all_configs()["C1"]
        workload = _workload(QUICK_SCENARIOS[0], config)
        line = config.l2.line_size
        subs = partition_trace(workload.trace, line, 4)
        assert len(subs) == 4
        assert sum(len(s) for s in subs if s is not None) == \
            len(workload.trace)
        owners = BankedCache(4, line).assign(workload.trace.address)
        for shard in range(4):
            expected = int((owners == shard).sum())
            actual = 0 if subs[shard] is None else len(subs[shard])
            assert actual == expected

    def test_partition_shards_1_is_identity(self):
        config = all_configs()["C1"]
        workload = _workload(QUICK_SCENARIOS[0], config)
        subs = partition_trace(workload.trace, config.l2.line_size, 1)
        assert len(subs) == 1 and subs[0] is workload.trace


class TestShardedParity:
    @pytest.mark.parametrize(
        "scenario", ALL_SCENARIOS, ids=lambda s: s.key.replace("/", "-")
    )
    def test_shards_1_is_byte_identical_to_soa(self, scenario):
        config = all_configs()[scenario.config]
        workload = _workload(scenario, config)
        soa = make_simulator(config, workload, engine="soa").run()
        sharded_sim = make_simulator(
            config, workload, engine="sharded", shards=1
        )
        assert isinstance(sharded_sim, ShardedGPUSimulator)
        sharded = sharded_sim.run()
        assert simulation_result_to_dict(soa) == \
            simulation_result_to_dict(sharded)
        assert result_digest(soa) == result_digest(sharded)

    def test_worker_count_never_changes_the_digest(self):
        scenario = QUICK_SCENARIOS[0]
        config = all_configs()[scenario.config]
        workload = _workload(scenario, config)
        serial = ShardedGPUSimulator(
            config, workload, shards=4, workers=1
        ).run()
        pooled = ShardedGPUSimulator(
            config, workload, shards=4, workers=4
        ).run()
        assert result_digest(serial) == result_digest(pooled)
        assert simulation_result_to_dict(serial) == \
            simulation_result_to_dict(pooled)

    def test_shuffled_bank_completion_order_is_digest_invariant(self):
        """The merge is a pure function of the payload set: any arrival
        permutation folds to the same bytes."""
        scenario = QUICK_SCENARIOS[0]
        config = all_configs()[scenario.config]
        workload = _workload(scenario, config)
        sim = ShardedGPUSimulator(config, workload, shards=4, workers=1)
        reference = sim.run()
        payloads = list(sim.bank_payloads)
        rng = random.Random(7)
        for _ in range(5):
            rng.shuffle(payloads)
            merged = merge_bank_payloads(config, workload, payloads)
            assert result_digest(merged) == result_digest(reference)
            assert simulation_result_to_dict(merged) == \
                simulation_result_to_dict(reference)

    def test_merge_rejects_missing_and_duplicate_shards(self):
        scenario = QUICK_SCENARIOS[0]
        config = all_configs()[scenario.config]
        workload = _workload(scenario, config)
        sim = ShardedGPUSimulator(config, workload, shards=4, workers=1)
        sim.run()
        payloads = list(sim.bank_payloads)
        with pytest.raises(SimulationError):
            merge_bank_payloads(config, workload, payloads[:-1])
        with pytest.raises(SimulationError):
            merge_bank_payloads(
                config, workload, payloads[:-1] + [payloads[0]]
            )

    def test_merged_bank_stats_cover_every_global_bank(self):
        scenario = QUICK_SCENARIOS[0]
        config = all_configs()[scenario.config]
        workload = _workload(scenario, config)
        result = ShardedGPUSimulator(
            config, workload, shards=4, workers=1
        ).run()
        assert result.bank_stats is not None
        assert len(result.bank_stats) == config.l2.num_banks
        assert sum(b.requests for b in result.bank_stats) > 0

    def test_bank_stats_never_reach_the_canonical_dict(self):
        """Digest surface is frozen: bank_stats is observability-only."""
        scenario = QUICK_SCENARIOS[0]
        config = all_configs()[scenario.config]
        workload = _workload(scenario, config)
        result = make_simulator(config, workload, engine="soa").run()
        assert result.bank_stats is not None
        assert "bank_stats" not in simulation_result_to_dict(result)


class TestEngineSeam:
    def test_shards_kwarg_requires_the_sharded_engine(self):
        config = all_configs()["C1"]
        workload = build_workload(
            "bfs", num_accesses=200, num_sms=config.num_sms, seed=0
        )
        with pytest.raises(ConfigurationError):
            make_simulator(config, workload, engine="soa", shards=4)
        with pytest.raises(ConfigurationError):
            make_simulator(config, workload, workers=2)

    def test_sharded_is_never_auto_selected(self):
        config = all_configs()["C1"]
        workload = build_workload(
            "bfs", num_accesses=200, num_sms=config.num_sms, seed=0
        )
        sim = make_simulator(config, workload)
        assert not isinstance(sim, ShardedGPUSimulator)

    def test_worker_count_must_be_positive(self):
        config = all_configs()["C1"]
        workload = build_workload(
            "bfs", num_accesses=200, num_sms=config.num_sms, seed=0
        )
        with pytest.raises(ConfigurationError):
            ShardedGPUSimulator(config, workload, shards=2, workers=0)


class TestIdleShards:
    def test_idle_payload_keeps_static_figures_and_zero_activity(self):
        config = all_configs()["C1"]
        payload = idle_payload(2, 4, plan_shards(config, 4).sub_config)
        assert payload["idle"] is True
        assert payload["accesses"] == 0
        assert payload["leakage_power_w"] > 0
        assert payload["area_m2"] > 0
        assert payload["energy"]["total_j"] == 0.0
        assert all(v == 0 for v in payload["rollup"].values())

    def test_single_sm_trace_leaves_idle_shards_idle(self):
        """A trace touching one address only populates one shard; the
        other shards contribute idle payloads and the run still merges."""
        config = all_configs()["C1"]
        workload = build_workload(
            "bfs", num_accesses=64, num_sms=config.num_sms, seed=0
        )
        # rewrite every address to land in shard 0 (lineno bits zeroed)
        trace = workload.trace
        line = config.l2.line_size
        from dataclasses import replace

        addresses = (trace.address // (line * 4)) * (line * 4)
        pinned = replace(
            workload, trace=type(trace)(trace.sm, addresses, trace.flags)
        )
        sim = ShardedGPUSimulator(config, pinned, shards=4, workers=1)
        result = sim.run()
        idle = [p for p in sim.bank_payloads if p["idle"]]
        assert len(idle) == 3
        assert result.l2_leakage_power_w > 0


class TestBankStatsIdleBanks:
    def test_idle_bank_rates_are_none(self):
        stats = BankStats()
        assert stats.idle
        assert stats.conflict_rate is None
        assert stats.mean_wait is None

    def test_active_bank_rates_are_floats(self):
        stats = BankStats(requests=8, conflicts=2, total_wait=4e-9)
        assert not stats.idle
        assert stats.conflict_rate == pytest.approx(0.25)
        assert stats.mean_wait == pytest.approx(5e-10)

    def test_summarize_excludes_idle_banks_from_averages(self):
        banks = [
            BankStats(requests=10, conflicts=5, total_wait=10e-9),
            BankStats(),  # idle: must not dilute the averages
            BankStats(requests=10, conflicts=5, total_wait=10e-9),
            BankStats(),
        ]
        summary = summarize_banks(banks)
        assert summary["banks"] == 4
        assert summary["active_banks"] == 2
        assert summary["idle_banks"] == 2
        assert summary["requests"] == 20
        assert summary["conflict_rate"] == pytest.approx(0.5)
        assert summary["mean_wait_s"] == pytest.approx(1e-9)

    def test_summarize_all_idle(self):
        summary = summarize_banks([BankStats(), BankStats()])
        assert summary["active_banks"] == 0
        assert summary["conflict_rate"] is None
        assert summary["mean_wait_s"] is None

    def test_banked_cache_tracks_per_bank_counters(self):
        cache = BankedCache(4, 128)
        for i in range(8):
            cache.schedule(i * 128, now=0.0, service_time=1e-9)
        per = cache.per_bank
        assert len(per) == 4
        assert sum(b.requests for b in per) == cache.stats.requests == 8
        assert sum(b.conflicts for b in per) == cache.stats.conflicts


class TestShardedOracle:
    def test_lockstep_oracle_accepts_a_sharded_dut(self):
        dut, _ref = make_pair(pressure_config(), engine="sharded")
        assert isinstance(dut, ShardedL2Router)

    @pytest.mark.parametrize("profile", ["bfs"])
    def test_sharded_dut_survives_the_lockstep_oracle(self, profile):
        report = run_diff(
            profile, pressure_config(), seed=3, accesses=1200,
            engine="sharded",
        )
        assert report["engine"] == "sharded"
        assert report["divergence"] is None


class TestBenchRecords:
    def test_sharded_record_carries_the_shard_count(self):
        scenario = QUICK_SCENARIOS[0]
        record = run_scenario(scenario, repeats=1, engine="sharded",
                              shards=2)
        assert record["engine"] == "sharded"
        assert record["shards"] == 2
        assert record["result_sha256"]

    def test_shards_kwarg_is_rejected_for_other_engines(self):
        scenario = QUICK_SCENARIOS[0]
        with pytest.raises(BenchmarkError):
            run_scenario(scenario, repeats=1, engine="soa", shards=2)
