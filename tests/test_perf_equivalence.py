"""Equivalence gates for the replay hot-path optimizations.

Two families of checks:

* **Dict-vs-scan cache equivalence** — the optimized demand path
  (``SetAssociativeCache.access``: cached address split, per-set tag→way
  dict, shared :class:`AccessOutcome` records) must be observationally
  identical to the pre-optimization reference (``_slow_access``: fresh
  outcomes, linear way scans).  Randomized access sequences are replayed
  through twin caches and every externally visible artifact is compared —
  the outcome stream, the aggregate stats, and the per-set / per-way /
  per-frame counters the experiments read.
* **Benchmark harness** — schema validation, baseline comparison
  (regression + digest-change verdicts) and scenario plumbing for
  ``repro.benchmarks`` / ``scripts/bench_replay.py``.

See ``docs/performance.md`` for why byte-identical results are the
non-negotiable acceptance bar for any replay speedup.
"""

import random

import pytest

from repro.benchmarks import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    BenchmarkError,
    compare_bench,
    run_scenario,
    validate_bench,
)
from repro.cache.array import SetAssociativeCache

#: (capacity, associativity, line_size) geometries under test; 3072 B with
#: 64 B lines gives 12 sets — a deliberately non-power-of-two set count so
#: the divmod fallback of the cached split is exercised alongside the
#: shift/mask fast path.
GEOMETRIES = [
    (4096, 4, 64),       # 16 sets, power-of-two
    (3072, 4, 64),       # 12 sets, NON-power-of-two
    (2048, 8, 128),      # 2 sets, high associativity
    (1024, 1, 64),       # direct-mapped
]

POLICIES = ["lru", "plru", "fifo", "nru", "random"]


def _make_pair(capacity, associativity, line_size, policy, write_allocate=True):
    """Twin caches with identical geometry, policy and seeds."""
    kwargs = dict(
        policy=policy,
        write_allocate=write_allocate,
        write_counter_saturation=8,
        seed=7,
    )
    fast = SetAssociativeCache(capacity, associativity, line_size, **kwargs)
    slow = SetAssociativeCache(capacity, associativity, line_size, **kwargs)
    return fast, slow


def _random_sequence(rng, line_size, num_sets, length):
    """A skewed random access stream (hot lines + cold misses + rereferences)."""
    hot = [rng.randrange(0, 4 * num_sets * line_size) for _ in range(24)]
    sequence = []
    for step in range(length):
        roll = rng.random()
        if roll < 0.5:
            address = rng.choice(hot)
        elif roll < 0.8 and sequence:
            address = sequence[rng.randrange(len(sequence))][0]
        else:
            address = rng.randrange(0, 64 * num_sets * line_size)
        is_write = rng.random() < 0.4
        allocate = rng.random() >= 0.15  # mix in MSHR-style non-allocating probes
        sequence.append((address, is_write, allocate, float(step)))
    return sequence


def _observable_state(cache):
    """Everything the simulator and the experiments read off a cache array."""
    return {
        "stats": cache.stats,
        "set_evictions": cache.per_set_eviction_counts(),
        "set_writes": cache.per_set_write_counts(),
        "way_writes": cache.per_way_write_counts(),
        "frame_writes": cache.per_frame_write_counts(),
        "occupancy": cache.occupancy(),
        "blocks": [
            (index, way, block.valid, block.tag, block.dirty,
             block.insert_time, block.last_write_time, block.total_writes)
            for index, way, block in cache.iter_blocks()
        ],
    }


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("geometry", GEOMETRIES)
def test_dict_path_matches_linear_reference(geometry, policy):
    capacity, associativity, line_size = geometry
    fast, slow = _make_pair(capacity, associativity, line_size, policy)
    rng = random.Random(hash((geometry, policy)) & 0xFFFF)
    sequence = _random_sequence(rng, line_size, fast.num_sets, 600)
    for address, is_write, allocate, now in sequence:
        fast_outcome = fast.access(address, is_write, now, allocate=allocate)
        slow_outcome = slow._slow_access(address, is_write, now, allocate=allocate)
        assert fast_outcome == slow_outcome, (
            f"outcome diverged at {address:#x} (write={is_write}, "
            f"allocate={allocate}): {fast_outcome} != {slow_outcome}"
        )
    assert _observable_state(fast) == _observable_state(slow)


@pytest.mark.parametrize("geometry", GEOMETRIES[:2])
def test_write_no_allocate_equivalence(geometry):
    """The GPU L1 global-write configuration (write-no-allocate)."""
    capacity, associativity, line_size = geometry
    fast, slow = _make_pair(
        capacity, associativity, line_size, "lru", write_allocate=False
    )
    rng = random.Random(1234)
    for address, is_write, allocate, now in _random_sequence(
        rng, line_size, fast.num_sets, 400
    ):
        assert fast.access(address, is_write, now, allocate=allocate) == \
            slow._slow_access(address, is_write, now, allocate=allocate)
    assert _observable_state(fast) == _observable_state(slow)


def test_maintenance_paths_share_the_decomposition():
    """probe/fill/invalidate/evict/extract stay coherent with the dict path."""
    fast, slow = _make_pair(4096, 4, 64, "lru")
    rng = random.Random(99)
    addresses = [rng.randrange(0, 1 << 20) for _ in range(300)]
    for step, address in enumerate(addresses):
        op = rng.random()
        if op < 0.5:
            assert fast.access(address, op < 0.25, float(step)) == \
                slow._slow_access(address, op < 0.25, float(step))
        elif op < 0.65:
            assert fast.fill(address, float(step), dirty=op < 0.6) == \
                slow.fill(address, float(step), dirty=op < 0.6)
        elif op < 0.75:
            assert fast.probe(address) == slow.probe(address)
        elif op < 0.85:
            assert fast.invalidate(address) == slow.invalidate(address)
        elif op < 0.95:
            assert fast.evict(address) == slow.evict(address)
        else:
            assert fast.extract(address) == slow.extract(address)
    assert _observable_state(fast) == _observable_state(slow)


def test_lookup_matches_lookup_linear():
    """The per-set tag→way dict never disagrees with a raw way scan."""
    cache = SetAssociativeCache(2048, 4, 64, policy="lru")
    rng = random.Random(5)
    for step in range(500):
        address = rng.randrange(0, 1 << 18)
        cache.access(address, rng.random() < 0.5, float(step))
        if rng.random() < 0.2:
            cache.invalidate(rng.randrange(0, 1 << 18))
    for index, cache_set in enumerate(cache.sets):
        for _, _, block in ((index, w, b) for w, b in enumerate(cache_set.blocks)):
            if block.valid:
                assert cache_set.lookup(block.tag) == \
                    cache_set.lookup_linear(block.tag)
        assert cache_set.lookup(0xDEAD_BEEF) == \
            cache_set.lookup_linear(0xDEAD_BEEF)


def test_shared_outcomes_are_value_equal_not_identity_dependent():
    """The preallocated hit/miss records carry the same field values."""
    cache = SetAssociativeCache(1024, 2, 64, policy="lru")
    first = cache.access(0, False, 0.0)
    hit_a = cache.access(0, False, 1.0)
    hit_b = cache.access(0, True, 2.0)
    assert first.filled and not first.hit
    assert hit_a.hit and hit_b.hit
    assert hit_a == hit_b
    assert hit_a.set_index == first.set_index and hit_a.way == first.way


# --- benchmark harness -----------------------------------------------------


def _bench_document(rps=1000.0, digest="a" * 64, quick=False):
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "quick": quick,
        "host": {"platform": "test", "python": "3.x", "cpus": 1},
        "scenarios": [
            {
                "workload": "bfs",
                "config": "C1",
                "trace_length": 8000,
                "seed": 0,
                "repeats": 2,
                "best_wall_s": 8000.0 / rps,
                "mean_wall_s": 8000.0 / rps,
                "requests_per_s": rps,
                "result_sha256": digest,
            }
        ],
    }


def test_validate_bench_accepts_wellformed_document():
    validate_bench(_bench_document())


@pytest.mark.parametrize(
    "mutation",
    [
        lambda d: d.update(schema_version=99),
        lambda d: d.update(kind="not-a-bench"),
        lambda d: d.pop("host"),
        lambda d: d.update(scenarios=[]),
        lambda d: d["scenarios"][0].pop("result_sha256"),
        lambda d: d["scenarios"][0].update(requests_per_s=0.0),
        lambda d: d["scenarios"][0].update(trace_length="8000"),
    ],
)
def test_validate_bench_rejects_malformed_documents(mutation):
    document = _bench_document()
    mutation(document)
    with pytest.raises(BenchmarkError):
        validate_bench(document)


def test_compare_bench_flags_regression():
    report = compare_bench(
        _bench_document(rps=700.0), _bench_document(rps=1000.0), threshold=0.2
    )
    assert report["regressed"] == ["bfs/C1/8000/s0"]
    assert not report["ok"]


def test_compare_bench_accepts_within_threshold():
    report = compare_bench(
        _bench_document(rps=850.0), _bench_document(rps=1000.0), threshold=0.2
    )
    assert report["ok"] and not report["regressed"]
    assert report["matched"]["bfs/C1/8000/s0"]["digest_match"]


def test_compare_bench_flags_digest_change_even_when_faster():
    report = compare_bench(
        _bench_document(rps=5000.0, digest="b" * 64), _bench_document(rps=1000.0)
    )
    assert report["results_changed"] == ["bfs/C1/8000/s0"]
    assert not report["ok"]


def test_compare_bench_rejects_bad_threshold():
    with pytest.raises(BenchmarkError):
        compare_bench(_bench_document(), _bench_document(), threshold=1.5)


def test_bench_scenario_key_and_run_scenario_errors():
    scenario = BenchScenario("bfs", "C1", 8000, 0)
    assert scenario.key == "bfs/C1/8000/s0"
    with pytest.raises(BenchmarkError):
        run_scenario(scenario, repeats=0)
    with pytest.raises(BenchmarkError):
        run_scenario(BenchScenario("bfs", "no-such-config", 100, 0))


def test_run_scenario_digests_agree_across_repeats():
    record = run_scenario(BenchScenario("bfs", "C1", 1500, 0), repeats=2)
    assert record["repeats"] == 2
    assert record["requests_per_s"] > 0
    assert len(record["result_sha256"]) == 64
