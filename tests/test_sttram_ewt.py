"""Tests for the Early Write Termination model and its integration."""

import pytest
from hypothesis import given, strategies as st

from repro.areapower.sttram_array import STTDataArrayModel
from repro.core import TwoPartSTTL2, UniformL2
from repro.errors import DeviceModelError
from repro.sttram.ewt import EWTModel
from repro.sttram.retention import retention_catalogue
from repro.units import KB

CAT = retention_catalogue()


class TestEWTModel:
    def test_per_bit_factor(self):
        ewt = EWTModel(flip_fraction=0.35, granularity_bits=1,
                       comparison_overhead=0.04)
        assert ewt.write_energy_factor == pytest.approx(0.39)

    def test_savings_complement(self):
        ewt = EWTModel(flip_fraction=0.3)
        assert ewt.savings() == pytest.approx(1.0 - ewt.write_energy_factor)

    def test_coarser_granularity_saves_less(self):
        fine = EWTModel(flip_fraction=0.2, granularity_bits=1)
        coarse = EWTModel(flip_fraction=0.2, granularity_bits=8)
        assert coarse.write_energy_factor > fine.write_energy_factor

    def test_all_bits_flip_means_overhead_only(self):
        ewt = EWTModel(flip_fraction=1.0, comparison_overhead=0.04)
        assert ewt.write_energy_factor == pytest.approx(1.04)
        assert ewt.savings() == 0.0

    def test_no_flips_costs_overhead_only(self):
        ewt = EWTModel(flip_fraction=0.0, comparison_overhead=0.04)
        assert ewt.write_energy_factor == pytest.approx(0.04)

    def test_rejects_bad_params(self):
        with pytest.raises(DeviceModelError):
            EWTModel(flip_fraction=1.5)
        with pytest.raises(DeviceModelError):
            EWTModel(granularity_bits=0)
        with pytest.raises(DeviceModelError):
            EWTModel(comparison_overhead=-0.1)

    @given(st.floats(min_value=0, max_value=1),
           st.integers(min_value=1, max_value=64))
    def test_factor_bounded(self, flip, granularity):
        ewt = EWTModel(flip_fraction=flip, granularity_bits=granularity)
        assert 0 <= ewt.write_energy_factor <= 1.0 + ewt.comparison_overhead

    @given(st.floats(min_value=0, max_value=1))
    def test_group_probability_at_least_bit_probability(self, flip):
        fine = EWTModel(flip_fraction=flip, granularity_bits=1)
        coarse = EWTModel(flip_fraction=flip, granularity_bits=4)
        assert coarse.group_write_probability >= fine.group_write_probability


class TestEWTIntegration:
    def test_array_write_energy_reduced(self):
        plain = STTDataArrayModel(192 * KB, 256, CAT["hr"])
        ewt = STTDataArrayModel(192 * KB, 256, CAT["hr"], ewt=EWTModel())
        assert ewt.write_energy < plain.write_energy

    def test_read_energy_unchanged(self):
        plain = STTDataArrayModel(192 * KB, 256, CAT["hr"])
        ewt = STTDataArrayModel(192 * KB, 256, CAT["hr"], ewt=EWTModel())
        assert ewt.read_energy == plain.read_energy

    def test_write_latency_unchanged(self):
        """EWT saves energy, not latency (the worst bit needs the pulse)."""
        plain = STTDataArrayModel(192 * KB, 256, CAT["hr"])
        ewt = STTDataArrayModel(192 * KB, 256, CAT["hr"], ewt=EWTModel())
        assert ewt.write_latency == plain.write_latency

    def test_twopart_with_ewt_spends_less(self):
        def run(enabled):
            l2 = TwoPartSTTL2(
                32 * KB, 4, 8 * KB, 2, early_write_termination=enabled
            )
            for i in range(300):
                l2.access((i % 40) * 256, is_write=True, now=(i + 1) * 1e-9)
            return l2.energy.total_j

        assert run(True) < run(False)

    def test_uniform_stt_with_ewt(self):
        plain = UniformL2(64 * KB, 8, 256, technology="stt")
        ewt = UniformL2(64 * KB, 8, 256, technology="stt",
                        early_write_termination=True)
        assert ewt.model.write_hit_energy < plain.model.write_hit_energy

    def test_ewt_flag_ignored_for_sram(self):
        plain = UniformL2(64 * KB, 8, 256, technology="sram")
        flagged = UniformL2(64 * KB, 8, 256, technology="sram",
                            early_write_termination=True)
        assert flagged.model.write_hit_energy == plain.model.write_hit_energy

    def test_l2config_plumbing(self):
        from repro.config import L2Config, L2PartConfig
        from repro.core import build_l2

        config = L2Config(
            kind="twopart",
            main=L2PartConfig(1344 * KB, 7),
            lr=L2PartConfig(192 * KB, 2),
            early_write_termination=True,
        )
        l2 = build_l2(config)
        assert isinstance(l2, TwoPartSTTL2)
        assert l2.hr_model.ewt is not None
