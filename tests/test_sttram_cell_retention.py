"""Tests for the 1T1J cell and the retention-level catalogue (Table 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceModelError
from repro.sttram.cell import STTCell, SRAM_CELL_AREA_F2, STT_CELL_AREA_F2
from repro.sttram.mtj import MTJParameters
from repro.sttram.retention import (
    HIGH_RETENTION_SECONDS,
    HR_RETENTION_SECONDS,
    LR_RETENTION_SECONDS,
    RetentionLevel,
    render_table1,
    retention_catalogue,
)
from repro.units import MS, US, YEAR


def make_cell(retention_s):
    return STTCell(mtj=MTJParameters.for_retention(retention_s))


class TestSTTCell:
    def test_write_pulse_scales_with_delta(self):
        fast = make_cell(40 * US)
        slow = make_cell(10 * YEAR)
        assert fast.write_pulse_width < slow.write_pulse_width

    def test_ten_year_pulse_near_anchor(self):
        cell = make_cell(10 * YEAR)
        assert cell.write_pulse_width == pytest.approx(10e-9, rel=0.01)

    def test_write_energy_ordering(self):
        lr = make_cell(40 * US)
        hr = make_cell(40 * MS)
        ny = make_cell(10 * YEAR)
        assert lr.write_energy_per_bit < hr.write_energy_per_bit < ny.write_energy_per_bit

    def test_read_energy_well_below_write_energy(self):
        cell = make_cell(40 * MS)
        assert cell.read_energy_per_bit < 0.1 * cell.write_energy_per_bit

    def test_read_disturb_margin_comfortable(self):
        # sense current must sit far below the switching current
        cell = make_cell(40 * US)
        assert cell.read_disturb_margin > 1.5

    def test_density_advantage_near_4x(self):
        assert STTCell.density_advantage_over_sram() == pytest.approx(
            SRAM_CELL_AREA_F2 / STT_CELL_AREA_F2
        )
        assert 3.5 < STTCell.density_advantage_over_sram() < 4.5

    def test_area_positive(self):
        assert STTCell.area(40e-9) > 0

    def test_area_rejects_bad_feature(self):
        with pytest.raises(DeviceModelError):
            STTCell.area(0.0)

    def test_rejects_bad_voltage(self):
        with pytest.raises(DeviceModelError):
            STTCell(mtj=MTJParameters(delta=20), supply_voltage=0.0)

    @given(st.floats(min_value=1e-4, max_value=1e8))
    def test_write_energy_monotonic_in_retention(self, retention):
        lo = make_cell(retention)
        hi = make_cell(retention * 100)
        assert lo.write_energy_per_bit < hi.write_energy_per_bit


class TestRetentionLevel:
    def test_from_retention_time_derives_delta(self):
        level = RetentionLevel.from_retention_time("x", 40 * MS)
        assert 17 < level.delta < 18

    def test_ten_year_level_needs_no_refresh(self):
        level = RetentionLevel.from_retention_time("ny", 10 * YEAR)
        assert not level.needs_refresh
        assert level.refresh_scope == "none"

    def test_relaxed_level_needs_refresh(self):
        level = RetentionLevel.from_retention_time("lr", 40 * US)
        assert level.needs_refresh

    def test_line_energy_scales_with_line_size(self):
        level = RetentionLevel.from_retention_time("x", 40 * MS)
        assert level.write_energy_per_line(256) == pytest.approx(
            2 * level.write_energy_per_line(128)
        )

    def test_line_energy_rejects_bad_size(self):
        level = RetentionLevel.from_retention_time("x", 40 * MS)
        with pytest.raises(DeviceModelError):
            level.write_energy_per_line(0)
        with pytest.raises(DeviceModelError):
            level.read_energy_per_line(-1)

    def test_table_row_fields(self):
        level = RetentionLevel.from_retention_time("lr", 40 * US)
        row = level.table_row()
        assert set(row) == {
            "level", "delta", "retention", "write_latency",
            "write_energy", "refreshing",
        }


class TestCatalogue:
    def test_default_catalogue_has_three_levels(self):
        cat = retention_catalogue()
        assert set(cat) == {"10year", "hr", "lr"}

    def test_catalogue_retention_ordering(self):
        cat = retention_catalogue()
        assert (
            cat["lr"].retention_time
            < cat["hr"].retention_time
            < cat["10year"].retention_time
        )

    def test_catalogue_write_latency_ordering(self):
        """The Table 1 trend: lower retention -> faster, cheaper writes."""
        cat = retention_catalogue()
        assert cat["lr"].write_latency < cat["hr"].write_latency
        assert cat["hr"].write_latency < cat["10year"].write_latency
        assert (
            cat["lr"].write_energy_per_line(256)
            < cat["hr"].write_energy_per_line(256)
            < cat["10year"].write_energy_per_line(256)
        )

    def test_default_constants(self):
        assert HR_RETENTION_SECONDS == pytest.approx(40e-3)
        assert LR_RETENTION_SECONDS == pytest.approx(40e-6)
        assert HIGH_RETENTION_SECONDS == pytest.approx(10 * YEAR)

    def test_custom_retention_targets(self):
        cat = retention_catalogue(hr_retention_s=4 * MS, lr_retention_s=10 * US)
        assert cat["hr"].retention_time == pytest.approx(4 * MS)
        assert cat["lr"].retention_time == pytest.approx(10 * US)

    def test_rejects_inverted_targets(self):
        with pytest.raises(DeviceModelError):
            retention_catalogue(hr_retention_s=10 * US, lr_retention_s=40 * MS)

    def test_render_table1_has_all_levels(self):
        cat = retention_catalogue()
        table = render_table1(cat.values())
        for name in cat:
            assert name in table
