"""Tests for the simulation service: protocol, store, dedup, server, bench.

Covers the service contracts docs/service.md promises:

* request validation/normalization and the canonical coalescing digest;
* :class:`~repro.service.store.SharedResultStore` — LRU eviction order,
  size accounting, corrupted-entry recovery, concurrent-writer
  consistency, persistence of recency across reopen;
* :class:`~repro.service.dedup.InflightTable` — N identical concurrent
  requests run ONE computation;
* the live server — byte-identity with ``repro.simulate()``, coalescing
  under a real concurrent burst, draining shutdown, error responses;
* the ``serve`` / ``submit`` CLI including the dead-server exit-2
  convention;
* the load-test harness document schema and its digest-pinned gate
  against the committed ``BENCH_service.json``.
"""

import asyncio
import hashlib
import json
import os
import socket
import threading

import pytest

from repro.errors import ServiceConnectionError, ServiceError
from repro.io import canonical_json, load_json
from repro.service import (
    InflightTable,
    ServerThread,
    ServiceClient,
    SharedResultStore,
    SimulationServer,
    request_digest,
    validate_request,
)
from repro.service.bench import (
    LOAD_SCENARIOS,
    _build_plan,
    compare_service_bench,
    validate_service_bench,
)
from repro.service.pool import ShardedWorkerPool
from repro.service.protocol import (
    decode_line,
    encode_message,
    read_response,
)

TRACE_LENGTH = 600  # small but non-trivial replay for live-server tests


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"kind": "ping", "nested": {"b": 2, "a": 1}}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_line(line) == message

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServiceError):
            decode_line(b"[1, 2]\n")
        with pytest.raises(ServiceError):
            decode_line(b"not json\n")

    def test_read_response_empty_means_connection_lost(self):
        with pytest.raises(ServiceConnectionError):
            read_response(b"")

    def test_validate_fills_defaults_and_resolves_engine(self):
        normalized = validate_request(
            {"kind": "simulate", "benchmark": "bfs", "config": "C1"}
        )
        assert normalized["seed"] == 0
        assert normalized["trace_length"] > 0
        assert normalized["engine"] in ("soa", "object")

    def test_equivalent_requests_share_one_digest(self):
        implicit = validate_request(
            {"kind": "simulate", "benchmark": "bfs", "config": "C1",
             "trace_length": 500}
        )
        explicit = validate_request(
            {"kind": "simulate", "benchmark": "bfs", "config": "C1",
             "trace_length": 500, "seed": 0, "engine": implicit["engine"]}
        )
        assert request_digest(implicit) == request_digest(explicit)

    def test_digest_is_parameter_sensitive(self):
        base = validate_request(
            {"kind": "simulate", "benchmark": "bfs", "config": "C1",
             "trace_length": 500}
        )
        other = validate_request(
            {"kind": "simulate", "benchmark": "bfs", "config": "C1",
             "trace_length": 500, "seed": 1}
        )
        assert request_digest(base) != request_digest(other)

    @pytest.mark.parametrize("request_obj", [
        {"kind": "warp"},
        {"kind": "simulate", "benchmark": "nope", "config": "C1"},
        {"kind": "simulate", "benchmark": "bfs", "config": "C9"},
        {"kind": "simulate", "benchmark": "bfs", "config": "C1",
         "trace_length": 0},
        {"kind": "simulate", "benchmark": "bfs", "config": "C1",
         "trace_length": 10**9},
        {"kind": "simulate", "benchmark": "bfs", "config": "C1",
         "engine": "soa", "shards": 4},
        {"kind": "experiment", "experiment": "table9"},
        {"kind": "experiment", "experiment": "table1", "benchmarks": []},
        {"kind": "experiment", "experiment": "table1",
         "benchmarks": ["nope"]},
    ])
    def test_invalid_requests_are_rejected(self, request_obj):
        with pytest.raises(ServiceError):
            validate_request(request_obj)


def _fill(store, keys, payload_size=64):
    for index, key in enumerate(keys):
        store.put(key, {"k": key}, {"data": "x" * payload_size, "i": index})
        # force strictly increasing mtimes so recency order is unambiguous
        os.utime(store.path_for(key), (1_000_000 + index, 1_000_000 + index))


class TestSharedResultStore:
    def test_lru_evicts_oldest_beyond_entry_budget(self, tmp_path):
        store = SharedResultStore(tmp_path, max_entries=2)
        _fill(store, ["a" * 8, "b" * 8, "c" * 8])
        assert store.get("a" * 8) is None  # evicted first (oldest)
        assert store.get("b" * 8) is not None
        assert store.get("c" * 8) is not None
        assert store.evictions == 1

    def test_get_refreshes_recency_before_eviction(self, tmp_path):
        store = SharedResultStore(tmp_path, max_entries=2)
        _fill(store, ["a" * 8, "b" * 8])
        assert store.get("a" * 8) is not None  # now most recent
        store.put("c" * 8, {}, {"v": 3})
        assert store.get("b" * 8) is None  # b became the LRU victim
        assert store.get("a" * 8) is not None

    def test_newest_entry_is_never_evicted(self, tmp_path):
        store = SharedResultStore(tmp_path, max_entries=1)
        _fill(store, ["a" * 8, "b" * 8])
        assert store.entry_count == 1
        assert store.get("b" * 8) is not None

    def test_size_accounting_matches_disk(self, tmp_path):
        store = SharedResultStore(tmp_path)
        _fill(store, ["a" * 8, "b" * 8, "c" * 8])
        on_disk = sum(p.stat().st_size for p in store.entries())
        assert store.total_bytes == on_disk
        assert store.entry_count == 3

    def test_byte_budget_evicts_down(self, tmp_path):
        store = SharedResultStore(tmp_path)
        _fill(store, ["a" * 8], payload_size=64)
        entry_bytes = store.total_bytes
        store.max_bytes = entry_bytes * 2
        _fill(store, ["b" * 8, "c" * 8], payload_size=64)
        assert store.entry_count <= 2
        assert store.total_bytes <= store.max_bytes
        assert store.get("c" * 8) is not None  # newest survives

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        store = SharedResultStore(tmp_path)
        _fill(store, ["a" * 8])
        path = store.path_for("a" * 8)
        path.write_text('{"truncated')  # simulate a torn write
        assert store.get("a" * 8) is None
        assert store.corrupt_dropped == 1
        assert not path.exists()  # dropped so a recompute publishes clean
        # the store recovers: a fresh put works and reads back
        store.put("a" * 8, {"k": "a"}, {"v": 1})
        assert store.get("a" * 8) == {"v": 1}

    def test_recency_persists_across_reopen(self, tmp_path):
        first = SharedResultStore(tmp_path)
        _fill(first, ["a" * 8, "b" * 8, "c" * 8])
        assert first.get("a" * 8) is not None  # touches mtime: now newest
        reopened = SharedResultStore(tmp_path, max_entries=2)
        assert reopened.entry_count == 3  # budgets bound between operations
        # the next put evicts down by the *persisted* recency: the touched
        # "a" must survive, the untouched oldest entries must not
        reopened.put("d" * 8, {}, {"v": 4})
        assert reopened.get("a" * 8) is not None
        assert reopened.get("b" * 8) is None

    def test_concurrent_writers_stay_consistent(self, tmp_path):
        store = SharedResultStore(tmp_path)
        keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(40)]

        def write(subset):
            for key in subset:
                store.put(key, {"k": key}, {"v": key})
                assert store.get(key) == {"v": key}

        threads = [
            threading.Thread(target=write, args=(keys[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.entry_count == len(keys)
        on_disk = sum(p.stat().st_size for p in store.entries())
        assert store.total_bytes == on_disk
        for key in keys:
            assert store.get(key) == {"v": key}

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ServiceError):
            SharedResultStore(tmp_path, max_entries=0)
        with pytest.raises(ServiceError):
            SharedResultStore(tmp_path, max_bytes=0)


class TestInflightTable:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_identical_digests_run_once(self):
        table = InflightTable()
        calls = []

        async def factory():
            calls.append(1)
            await asyncio.sleep(0.01)
            return {"v": 42}

        async def scenario():
            results = await asyncio.gather(
                *(table.run("d" * 64, factory) for _ in range(5))
            )
            return results

        results = self._run(scenario())
        assert len(calls) == 1
        assert sum(1 for _, coalesced in results if coalesced) == 4
        assert all(value == {"v": 42} for value, _ in results)
        assert table.leaders == 1
        assert table.coalesced == 4

    def test_distinct_digests_run_separately(self):
        table = InflightTable()
        calls = []

        async def factory():
            calls.append(1)
            return {"v": len(calls)}

        async def scenario():
            return await asyncio.gather(
                table.run("a" * 64, factory), table.run("b" * 64, factory)
            )

        self._run(scenario())
        assert len(calls) == 2
        assert table.coalesced == 0

    def test_leader_failure_propagates_to_followers(self):
        table = InflightTable()

        async def factory():
            await asyncio.sleep(0.01)
            raise ServiceError("boom")

        async def scenario():
            tasks = [
                asyncio.ensure_future(table.run("c" * 64, factory))
                for _ in range(3)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = self._run(scenario())
        assert all(isinstance(r, ServiceError) for r in results)

    def test_digest_is_reusable_after_completion(self):
        table = InflightTable()

        async def factory():
            return {"v": 1}

        async def scenario():
            await table.run("e" * 64, factory)
            await table.run("e" * 64, factory)

        self._run(scenario())
        assert table.leaders == 2  # sequential runs never coalesce
        assert table.coalesced == 0


@pytest.fixture(scope="module")
def live_server(tmp_path_factory):
    """One in-process server shared by the end-to-end tests."""
    store = SharedResultStore(tmp_path_factory.mktemp("store"))
    server = SimulationServer(
        port=0,
        store=store,
        pool=ShardedWorkerPool(shards=2, kind="thread"),
        log=lambda line: None,
    )
    with ServerThread(server) as running:
        yield running


class TestServerEndToEnd:
    def test_ping(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            pong = client.ping()
        assert pong["kind"] == "pong"

    def test_simulate_matches_direct_library_call(self, live_server):
        from repro import simulate
        from repro.config import all_configs
        from repro.io import simulation_result_to_dict
        from repro.workloads.suite import build_workload

        config = all_configs()["C1"]
        workload = build_workload(
            "bfs", num_accesses=TRACE_LENGTH, num_sms=config.num_sms, seed=0
        )
        direct = simulation_result_to_dict(simulate(config, workload))
        with ServiceClient(port=live_server.port) as client:
            response = client.simulate("bfs", "C1", trace_length=TRACE_LENGTH)
        assert canonical_json(response["payload"]) == canonical_json(direct)

    def test_repeat_is_a_cache_hit_with_identical_payload(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            first = client.simulate("nn", "C2", trace_length=TRACE_LENGTH)
            second = client.simulate("nn", "C2", trace_length=TRACE_LENGTH)
        assert second["cache"] == "hit"
        assert canonical_json(first["payload"]) == canonical_json(
            second["payload"]
        )

    def test_concurrent_duplicates_run_one_simulation(self, live_server):
        before = live_server.server.tracer.counters_dict().get(
            "service.jobs.simulate", 0
        )
        responses = []
        lock = threading.Lock()

        def fire():
            with ServiceClient(port=live_server.port) as client:
                r = client.simulate("lbm", "C3", trace_length=TRACE_LENGTH)
            with lock:
                responses.append(r)

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after = live_server.server.tracer.counters_dict().get(
            "service.jobs.simulate", 0
        )
        assert after - before == 1  # the coalescing guarantee, by counter
        assert len({r["digest"] for r in responses}) == 1
        assert len(
            {canonical_json(r["payload"]) for r in responses}
        ) == 1

    def test_experiment_matches_direct_runner(self, live_server):
        from repro.experiments.runner import run_experiment
        from repro.io import experiment_result_to_dict

        direct = experiment_result_to_dict(
            run_experiment("table1", trace_length=TRACE_LENGTH)
        )
        with ServiceClient(port=live_server.port) as client:
            response = client.experiment("table1", trace_length=TRACE_LENGTH)
        assert response["jobs"] >= 1
        assert canonical_json(response["payload"]) == canonical_json(direct)

    def test_invalid_request_is_an_error_response_not_a_hangup(
        self, live_server
    ):
        with ServiceClient(port=live_server.port) as client:
            response = client.request(
                {"kind": "simulate", "benchmark": "nope", "config": "C1"}
            )
            assert response["ok"] is False
            assert "nope" in response["error"]
            # the connection survives the error
            assert client.ping()["ok"] is True

    def test_stats_shape(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            stats = client.stats()
        for field in ("protocol", "cache", "jobs", "dedup", "pool", "store",
                      "latency", "simulations_run", "predict"):
            assert field in stats, field
        assert stats["pool"] == {"shards": 2, "kind": "thread"}
        assert stats["store"]["entries"] >= 1
        assert set(stats["predict"]) == {
            "hits", "misses", "coalesced", "fitted_pairs"
        }


class TestServicePredict:
    def test_validate_fills_defaults_and_digests(self):
        normalized = validate_request(
            {"kind": "predict", "benchmark": "bfs", "config": "C1"}
        )
        assert normalized["seed"] == 0
        assert normalized["trace_length"] > 0
        assert "engine" not in normalized
        again = validate_request(
            {"kind": "predict", "benchmark": "bfs", "config": "C1",
             "seed": 0, "trace_length": normalized["trace_length"]}
        )
        assert request_digest(normalized) == request_digest(again)

    @pytest.mark.parametrize("request_obj", [
        {"kind": "predict", "benchmark": "nope", "config": "C1"},
        {"kind": "predict", "benchmark": "bfs", "config": "C9"},
        {"kind": "predict", "benchmark": "bfs", "config": "C1",
         "engine": "soa"},
        {"kind": "predict", "benchmark": "bfs", "config": "C1",
         "trace_length": 0},
    ])
    def test_invalid_predict_requests_are_rejected(self, request_obj):
        with pytest.raises(ServiceError):
            validate_request(request_obj)

    def test_predict_miss_then_hit_with_identical_payload(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            first = client.predict("bfs", "C1", trace_length=TRACE_LENGTH)
            second = client.predict("bfs", "C1", trace_length=TRACE_LENGTH)
        assert first["cache"] in ("miss", "hit")  # miss unless a prior test warmed it
        assert second["cache"] == "hit"
        assert canonical_json(first["payload"]) == canonical_json(
            second["payload"]
        )
        payload = second["payload"]
        for field in ("ipc", "l2_hit_rate", "l1_hit_rate",
                      "l2_dynamic_energy_j", "l2_leakage_power_w", "via"):
            assert field in payload, field

    def test_predict_never_touches_the_worker_pool(self, live_server):
        before = live_server.server.tracer.counters_dict().get(
            "service.jobs.simulate", 0
        )
        with ServiceClient(port=live_server.port) as client:
            response = client.predict("nn", "C2", trace_length=777)
        assert response["ok"] is True
        after = live_server.server.tracer.counters_dict().get(
            "service.jobs.simulate", 0
        )
        assert after == before  # the surrogate answered, not the pool

    def test_concurrent_duplicate_predicts_fit_once(self, live_server):
        responses = []
        lock = threading.Lock()

        def fire():
            with ServiceClient(port=live_server.port) as client:
                r = client.predict("lbm", "C3", trace_length=TRACE_LENGTH)
            with lock:
                responses.append(r)

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counters = live_server.server.tracer.counters_dict()
        assert counters.get("service.jobs.predict", 0) >= 1
        assert len({r["digest"] for r in responses}) == 1
        assert len(
            {canonical_json(r["payload"]) for r in responses}
        ) == 1

    def test_engine_field_is_rejected_with_guidance(self, live_server):
        with ServiceClient(port=live_server.port) as client:
            response = client.request(
                {"kind": "predict", "benchmark": "bfs", "config": "C1",
                 "engine": "soa"}
            )
        assert response["ok"] is False
        assert "engine-independent" in response["error"]


class TestDrainingShutdown:
    def test_inflight_request_completes_after_shutdown(self, tmp_path):
        server = SimulationServer(
            port=0,
            store=SharedResultStore(tmp_path),
            pool=ShardedWorkerPool(shards=1, kind="thread"),
            log=lambda line: None,
        )
        with ServerThread(server) as running:
            result = {}

            def slow():
                with ServiceClient(port=running.port) as client:
                    result["response"] = client.simulate(
                        "lbm", "C1", trace_length=50_000
                    )

            worker = threading.Thread(target=slow)
            worker.start()
            import time

            time.sleep(0.2)  # let the slow request reach the server
            with ServiceClient(port=running.port) as client:
                ack = client.shutdown()
            assert ack["draining"] is True
            worker.join(timeout=60)
            assert not worker.is_alive()
            assert result["response"]["ok"] is True


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestCli:
    def test_submit_against_dead_server_exits_2(self, capsys):
        from repro.cli import main

        code = main(["submit", "--ping", "--port", str(_free_port())])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.count("\n") == 1  # one-line diagnostic
        assert "cannot connect" in captured.err

    def test_submit_usage_errors_exit_2(self, capsys):
        from repro.cli import main

        assert main(["submit"]) == 2
        assert main(["submit", "bfs"]) == 2
        assert main(["submit", "--ping", "--stats"]) == 2

    def test_serve_rejects_bad_pool(self, capsys):
        from repro.cli import main

        assert main(["serve", "--pool-shards", "0"]) == 2
        assert "shards" in capsys.readouterr().err

    def test_submit_roundtrip_against_live_server(self, live_server, capsys):
        from repro.cli import main

        port = str(live_server.port)
        assert main(["submit", "--ping", "--port", port]) == 0
        assert main([
            "submit", "bfs", "C1", "--trace-length", str(TRACE_LENGTH),
            "--port", port,
        ]) == 0
        out = capsys.readouterr().out
        assert "digest" in out and "IPC" in out
        assert main(["submit", "--stats", "--port", port]) == 0

    def test_submit_unknown_benchmark_exits_1(self, live_server, capsys):
        from repro.cli import main

        code = main(
            ["submit", "nope", "C1", "--port", str(live_server.port)]
        )
        assert code == 1
        assert "nope" in capsys.readouterr().err


class TestBenchHarness:
    def test_plan_is_deterministic_and_covers_every_scenario(self):
        plan_a = _build_plan(40, LOAD_SCENARIOS, seed=0)
        plan_b = _build_plan(40, LOAD_SCENARIOS, seed=0)
        assert plan_a == plan_b
        assert set(plan_a) == set(LOAD_SCENARIOS)
        assert _build_plan(40, LOAD_SCENARIOS, seed=1) != plan_a

    def test_plan_must_cover_scenarios(self):
        with pytest.raises(ServiceError):
            _build_plan(2, LOAD_SCENARIOS, seed=0)

    def test_committed_baseline_is_schema_valid(self):
        document = load_json(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")
        )
        validate_service_bench(document)
        assert {
            (r["benchmark"], r["config"]) for r in document["scenarios"]
        } == set(LOAD_SCENARIOS)

    def test_committed_digests_reproduce(self):
        """One pinned scenario recomputed from scratch must match the
        committed payload digest — the load gate's byte-identity anchor."""
        from repro import simulate
        from repro.config import all_configs
        from repro.io import simulation_result_to_dict
        from repro.workloads.suite import build_workload

        document = load_json(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")
        )
        record = next(
            r for r in document["scenarios"] if r["benchmark"] == "bfs"
        )
        config = all_configs()[record["config"]]
        workload = build_workload(
            record["benchmark"],
            num_accesses=record["trace_length"],
            num_sms=config.num_sms,
            seed=record["seed"],
        )
        payload = simulation_result_to_dict(
            simulate(config, workload, engine=record["engine"])
        )
        digest = hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()
        assert digest == record["payload_sha256"]

    def test_digest_change_fails_the_gate(self):
        document = load_json(
            os.path.join(os.path.dirname(__file__), "..", "BENCH_service.json")
        )
        tampered = json.loads(json.dumps(document))
        tampered["scenarios"][0]["payload_sha256"] = "0" * 64
        report = compare_service_bench(document, tampered)
        assert report["ok"] is False
        assert report["digests_changed"]

    def test_validation_rejects_malformed_documents(self):
        with pytest.raises(ServiceError):
            validate_service_bench({"schema_version": 999})
        with pytest.raises(ServiceError):
            validate_service_bench([])
