"""Tests for result serialization."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments import table1, table2
from repro.io import (
    SCHEMA_VERSION,
    experiment_result_from_dict,
    experiment_result_to_dict,
    load_experiments,
    save_experiments,
    save_simulations,
    simulation_result_to_dict,
)


class TestExperimentSerialization:
    def test_roundtrip_via_dict(self):
        original = table1.run()
        payload = experiment_result_to_dict(original)
        restored = experiment_result_from_dict(payload)
        assert restored.name == original.name
        assert restored.headers == original.headers
        assert restored.rows == original.rows
        assert restored.extras == pytest.approx(original.extras)

    def test_roundtrip_via_file(self, tmp_path):
        results = {"table1": table1.run(), "table2": table2.run()}
        path = tmp_path / "battery.json"
        save_experiments(results, path)
        restored = load_experiments(path)
        assert set(restored) == {"table1", "table2"}
        assert restored["table2"].rows == results["table2"].rows

    def test_schema_version_stamped(self, tmp_path):
        path = tmp_path / "battery.json"
        save_experiments({"table1": table1.run()}, path)
        document = json.loads(path.read_text())
        assert document["schema_version"] == SCHEMA_VERSION

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999, "experiments": {}}))
        with pytest.raises(ReproError):
            load_experiments(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_experiments(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_experiments(tmp_path / "nope.json")

    def test_from_dict_missing_key(self):
        with pytest.raises(ReproError):
            experiment_result_from_dict({"name": "x"})


class TestSimulationSerialization:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.config import baseline_sram
        from repro.gpu.simulator import simulate
        from repro.workloads import build_workload

        return simulate(baseline_sram(), build_workload("nn", num_accesses=800))

    def test_dict_is_json_able(self, result):
        payload = simulation_result_to_dict(result)
        text = json.dumps(payload)
        assert json.loads(text)["workload"] == "nn"

    def test_derived_total_power_included(self, result):
        payload = simulation_result_to_dict(result)
        assert payload["l2_total_power_w"] == pytest.approx(result.l2_total_power_w)

    def test_save_simulations(self, result, tmp_path):
        path = tmp_path / "sims.json"
        save_simulations([result, result], path)
        document = json.loads(path.read_text())
        assert len(document["simulations"]) == 2


class TestCLIJson:
    def test_experiments_json_flag(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "out.json"
        code = cli_main(["experiments", "table1", "--json", str(path)])
        assert code == 0
        restored = load_experiments(path)
        assert "table1" in restored
