"""Tests for the MTJ physics model."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeviceModelError
from repro.sttram.mtj import (
    DEFAULT_TAU0,
    MTJParameters,
    TEN_YEAR_DELTA,
    retention_time_for_stability,
    stability_for_retention_time,
)
from repro.units import MS, NS, US, YEAR


class TestRetentionStabilityLaw:
    def test_ten_year_delta_about_40(self):
        delta = stability_for_retention_time(10 * YEAR)
        assert 39 < delta < 42
        assert delta == pytest.approx(TEN_YEAR_DELTA)

    def test_40ms_delta(self):
        assert stability_for_retention_time(40 * MS) == pytest.approx(
            math.log(40e-3 / 1e-9)
        )

    def test_roundtrip(self):
        for retention in (40 * US, 40 * MS, 10 * YEAR):
            delta = stability_for_retention_time(retention)
            assert retention_time_for_stability(delta) == pytest.approx(retention)

    def test_rejects_retention_below_tau0(self):
        with pytest.raises(DeviceModelError):
            stability_for_retention_time(0.5 * NS)

    def test_rejects_nonpositive_tau0(self):
        with pytest.raises(DeviceModelError):
            stability_for_retention_time(1.0, tau0=0.0)

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(DeviceModelError):
            retention_time_for_stability(0.0)

    @given(st.floats(min_value=1e-6, max_value=1e9))
    def test_monotonic_in_retention(self, retention):
        d1 = stability_for_retention_time(retention)
        d2 = stability_for_retention_time(retention * 10)
        assert d2 > d1


class TestMTJParameters:
    def test_for_retention_factory(self):
        mtj = MTJParameters.for_retention(40 * MS)
        assert mtj.retention_time == pytest.approx(40 * MS)

    def test_resistance_antiparallel_uses_tmr(self):
        mtj = MTJParameters(delta=20, resistance_parallel=2000, tmr=1.5)
        assert mtj.resistance_antiparallel == pytest.approx(5000)

    def test_rejects_bad_delta(self):
        with pytest.raises(DeviceModelError):
            MTJParameters(delta=-1)

    def test_rejects_bad_tmr(self):
        with pytest.raises(DeviceModelError):
            MTJParameters(delta=20, tmr=0.0)


class TestSwitchingCurrent:
    def test_current_decreases_with_pulse_width(self):
        mtj = MTJParameters(delta=TEN_YEAR_DELTA)
        i_fast = mtj.switching_current(5 * NS)
        i_slow = mtj.switching_current(50 * NS)
        assert i_fast > i_slow

    def test_lower_delta_needs_less_current(self):
        high = MTJParameters(delta=TEN_YEAR_DELTA)
        low = MTJParameters(delta=12.0)
        pulse = 5 * NS
        assert low.switching_current(pulse) < high.switching_current(pulse)

    def test_rejects_pulse_at_tau0(self):
        mtj = MTJParameters(delta=20)
        with pytest.raises(DeviceModelError):
            mtj.switching_current(DEFAULT_TAU0)

    def test_rejects_pulse_beyond_window(self):
        mtj = MTJParameters(delta=10)
        # pulse longer than retention: the junction would self-switch
        with pytest.raises(DeviceModelError):
            mtj.switching_current(mtj.retention_time * 10)

    def test_current_below_ic0(self):
        mtj = MTJParameters(delta=TEN_YEAR_DELTA, ic0=55e-6)
        assert mtj.switching_current(10 * NS) < 55e-6


class TestMinPulseWidth:
    def test_inverse_of_switching_current(self):
        mtj = MTJParameters(delta=25)
        pulse = 8 * NS
        current = mtj.switching_current(pulse)
        assert mtj.min_pulse_width(current) == pytest.approx(pulse, rel=1e-9)

    def test_overdrive_hits_floor(self):
        mtj = MTJParameters(delta=25, ic0=55e-6)
        assert mtj.min_pulse_width(60e-6) == pytest.approx(DEFAULT_TAU0 * math.e)

    def test_undercurrent_raises(self):
        mtj = MTJParameters(delta=25, ic0=55e-6)
        with pytest.raises(DeviceModelError):
            mtj.min_pulse_width(1e-9)

    def test_rejects_nonpositive_current(self):
        mtj = MTJParameters(delta=25)
        with pytest.raises(DeviceModelError):
            mtj.min_pulse_width(0.0)

    @given(st.floats(min_value=12.0, max_value=45.0),
           st.floats(min_value=2e-9, max_value=50e-9))
    def test_roundtrip_property(self, delta, pulse):
        mtj = MTJParameters(delta=delta)
        try:
            current = mtj.switching_current(pulse)
        except DeviceModelError:
            return  # outside the thermal window for this delta
        recovered = mtj.min_pulse_width(current)
        assert recovered == pytest.approx(pulse, rel=1e-6)
