"""Tests for the two-part STT-RAM L2 — the paper's contribution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import config_c1
from repro.core import TwoPartSTTL2, UniformL2, build_l2
from repro.errors import ConfigurationError
from repro.units import KB, US


def make_small_l2(**kwargs):
    """A small two-part L2 for fast tests: 32KB HR 4-way + 8KB LR 2-way."""
    defaults = dict(
        hr_capacity_bytes=32 * KB,
        hr_associativity=4,
        lr_capacity_bytes=8 * KB,
        lr_associativity=2,
        line_size=256,
        track_intervals=True,
    )
    defaults.update(kwargs)
    return TwoPartSTTL2(**defaults)


class TestBasicProtocol:
    def test_miss_fills_hr(self):
        l2 = make_small_l2()
        result = l2.access(0x1000, is_write=False, now=1e-9)
        assert not result.hit and result.dram_fetch
        assert l2.hr_array.probe(0x1000)
        assert not l2.lr_array.probe(0x1000)

    def test_read_hit_in_hr(self):
        l2 = make_small_l2()
        l2.access(0x1000, is_write=False, now=1e-9)
        result = l2.access(0x1000, is_write=False, now=2e-9)
        assert result.hit and result.part == "hr"

    def test_first_write_stays_in_hr(self):
        """Single write traffic goes to HR (paper's energy discussion)."""
        l2 = make_small_l2()
        l2.access(0x1000, is_write=False, now=1e-9)  # read fill
        result = l2.access(0x1000, is_write=True, now=2e-9)
        assert result.hit and result.part == "hr" and not result.migrated
        assert l2.hr_array.probe(0x1000)

    def test_second_write_migrates_to_lr(self):
        """Threshold 1: the first *re*write moves the block to LR."""
        l2 = make_small_l2()
        l2.access(0x1000, is_write=False, now=1e-9)
        l2.access(0x1000, is_write=True, now=2e-9)
        result = l2.access(0x1000, is_write=True, now=3e-9)
        assert result.migrated and result.part == "lr"
        assert l2.lr_array.probe(0x1000)
        assert not l2.hr_array.probe(0x1000)
        assert l2.migrations_to_lr == 1

    def test_write_miss_allocates_dirty_in_hr(self):
        l2 = make_small_l2()
        result = l2.access(0x2000, is_write=True, now=1e-9)
        assert not result.hit and result.dram_fetch
        block = l2.hr_array.block_at(0x2000)
        assert block is not None and block.dirty and block.write_count == 1

    def test_write_miss_then_write_hit_migrates(self):
        """A write-allocated block counts its fill write toward the threshold."""
        l2 = make_small_l2()
        l2.access(0x2000, is_write=True, now=1e-9)
        result = l2.access(0x2000, is_write=True, now=2e-9)
        assert result.migrated
        assert l2.lr_array.probe(0x2000)

    def test_lr_hit_serves_reads_too(self):
        l2 = make_small_l2()
        l2.access(0x1000, is_write=True, now=1e-9)
        l2.access(0x1000, is_write=True, now=2e-9)  # migrate
        result = l2.access(0x1000, is_write=False, now=3e-9)
        assert result.hit and result.part == "lr"

    def test_line_never_in_both_parts(self):
        l2 = make_small_l2()
        addr = 0x3000
        for i in range(6):
            l2.access(addr, is_write=(i % 2 == 0), now=(i + 1) * 1e-9)
            in_lr = l2.lr_array.probe(addr)
            in_hr = l2.hr_array.probe(addr)
            assert not (in_lr and in_hr)


class TestLREvictionReturnsToHR:
    def test_lr_victim_returns_to_hr(self):
        # LR: 8KB 2-way 256B -> 16 sets, 32 lines. Flood one LR set.
        l2 = make_small_l2()
        lr_sets = l2.lr_array.num_sets
        conflicting = [0x10000 + i * lr_sets * 256 for i in range(3)]
        now = 1e-9
        for addr in conflicting:
            l2.access(addr, is_write=True, now=now)  # fill HR dirty
            now += 1e-9
            l2.access(addr, is_write=True, now=now)  # migrate to LR
            now += 1e-9
        # LR set holds 2; the first migrated line must be back in HR
        assert l2.returns_to_hr >= 1
        locations = [
            l2.lr_array.probe(a) or l2.hr_array.probe(a) for a in conflicting
        ]
        assert all(locations), "no line may be lost during LR eviction"

    def test_write_share_tilts_to_lr_for_hot_writes(self):
        """Hot rewrites must be absorbed by the LR part."""
        l2 = make_small_l2()
        now = 0.0
        for i in range(200):
            now += 1e-9
            l2.access(0x5000, is_write=True, now=now)
        assert l2.lr_write_share > 0.9

    def test_buffer_overflow_writeback_counted_once(self):
        """Regression: an LR->HR buffer overflow used to be double-counted.

        ``_buffer_push`` already adds the forced dirty pop to
        ``dram_writebacks_total``; ``_return_to_hr`` then added its summed
        ``writebacks`` (which includes that overflow) a second time.
        """
        l2 = make_small_l2(buffer_lines=1)
        # occupy the single lr->hr slot with a dirty in-flight entry
        assert l2._buffer_push(l2.lr_to_hr, 0x30000, dirty=True, now=1e-9) == 0
        before = l2.dram_writebacks_total
        # returning another victim overflows the buffer (one forced
        # write-back) and fills an empty HR set (no dirty eviction)
        writebacks = l2._return_to_hr(0x40000, victim_dirty=True, now=2e-9)
        assert writebacks == 1
        assert l2.dram_writebacks_total == before + 1


class TestRetentionBehaviour:
    def test_lr_block_expires_without_refresh(self):
        # disable sweeps by setting scan times far ahead via huge time jump
        l2 = make_small_l2(lr_retention_s=40 * US)
        l2.access(0x1000, is_write=True, now=1e-9)
        l2.access(0x1000, is_write=True, now=2e-9)  # to LR
        assert l2.lr_array.probe(0x1000)
        # jump far past retention; sweep sees it as expired or the access
        # path invalidates it -> miss
        result = l2.access(0x1000, is_write=False, now=1.0)
        assert not result.hit

    def test_refresh_keeps_block_alive(self):
        l2 = make_small_l2(lr_retention_s=40 * US)
        l2.access(0x1000, is_write=True, now=1e-9)
        l2.access(0x1000, is_write=True, now=2e-9)  # to LR
        # touch the cache every tick so maintenance sweeps run
        now = 2e-9
        for _ in range(100):
            now += 2.0 * US
            l2.access(0x9000, is_write=False, now=now)
        assert l2.refresh_writes > 0
        result = l2.access(0x1000, is_write=False, now=now + 1e-9)
        assert result.hit, "refresh must keep the LR block alive"

    def test_hr_expiry_writeback_dirty(self):
        l2 = make_small_l2(hr_retention_s=1e-3)
        l2.access(0x1000, is_write=True, now=1e-9)  # dirty in HR
        # advance past HR retention with activity so the sweep runs
        before = l2.dram_writebacks_total
        l2.access(0x9000, is_write=False, now=2e-3)
        assert l2.refresh_engine.stats.hr_expirations_dirty >= 1
        assert l2.dram_writebacks_total > before
        assert not l2.hr_array.probe(0x1000)

    def test_hr_expiry_clean_invalidate(self):
        l2 = make_small_l2(hr_retention_s=1e-3)
        l2.access(0x1000, is_write=False, now=1e-9)  # clean in HR
        l2.access(0x9000, is_write=False, now=2e-3)
        assert l2.refresh_engine.stats.hr_expirations_clean >= 1
        assert not l2.hr_array.probe(0x1000)

    def test_rejects_inverted_retentions(self):
        with pytest.raises(ConfigurationError):
            make_small_l2(hr_retention_s=1e-6, lr_retention_s=1e-3)


class TestSearchIntegration:
    def test_write_to_lr_needs_one_probe(self):
        l2 = make_small_l2()
        l2.access(0x1000, is_write=True, now=1e-9)
        l2.access(0x1000, is_write=True, now=2e-9)  # now in LR
        result = l2.access(0x1000, is_write=True, now=3e-9)
        assert result.probes == 1

    def test_read_to_hr_needs_one_probe(self):
        l2 = make_small_l2()
        l2.access(0x1000, is_write=False, now=1e-9)
        result = l2.access(0x1000, is_write=False, now=2e-9)
        assert result.probes == 1

    def test_miss_needs_two_probes(self):
        l2 = make_small_l2()
        result = l2.access(0x1000, is_write=False, now=1e-9)
        assert result.probes == 2

    def test_parallel_search_always_two_probes(self):
        l2 = make_small_l2(sequential_search=False)
        l2.access(0x1000, is_write=False, now=1e-9)
        result = l2.access(0x1000, is_write=False, now=2e-9)
        assert result.probes == 2


class TestIntervalTracking:
    def test_rewrite_intervals_recorded(self):
        l2 = make_small_l2()
        l2.access(0x1000, is_write=True, now=1e-9)
        l2.access(0x1000, is_write=True, now=2e-9)   # migrate (LR write)
        l2.access(0x1000, is_write=True, now=5e-9)   # LR rewrite: interval 3ns
        assert len(l2.rewrite_intervals) == 1
        assert l2.rewrite_intervals[0] == pytest.approx(3e-9)

    def test_tracking_disabled(self):
        l2 = make_small_l2(track_intervals=False)
        for i in range(5):
            l2.access(0x1000, is_write=True, now=(i + 1) * 1e-9)
        assert l2.rewrite_intervals == []


class TestEnergyAccounting:
    def test_migration_energy_separated(self):
        l2 = make_small_l2()
        l2.access(0x1000, is_write=True, now=1e-9)
        assert l2.energy.migration_j == 0.0
        l2.access(0x1000, is_write=True, now=2e-9)  # migration
        assert l2.energy.migration_j > 0.0

    def test_lr_write_cheaper_than_hr_write(self):
        l2 = make_small_l2()
        assert (
            l2.lr_model.data_write_energy < l2.hr_model.data_write_energy
        )

    def test_total_energy_is_sum_of_buckets(self):
        l2 = make_small_l2()
        for i in range(20):
            l2.access(i * 256, is_write=(i % 3 == 0), now=(i + 1) * 1e-9)
        ledger = l2.energy
        assert ledger.total_j == pytest.approx(
            ledger.demand_j + ledger.migration_j + ledger.refresh_j + ledger.fill_j
        )

    def test_leakage_and_area_positive(self):
        l2 = make_small_l2()
        assert l2.leakage_power > 0
        assert l2.area > 0


class TestStatsConsistency:
    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=200),
                              st.booleans()),
                    min_size=10, max_size=400))
    def test_no_line_lost_or_duplicated(self, ops):
        """Property: every line is in at most one part; stats balance."""
        l2 = make_small_l2()
        now = 0.0
        touched = set()
        for lid, is_write in ops:
            now += 1e-9
            addr = lid * 256
            touched.add(addr)
            l2.access(addr, is_write, now=now)
            assert not (l2.lr_array.probe(addr) and l2.hr_array.probe(addr))
        stats = l2.stats
        assert stats.accesses == len(ops)
        assert stats.hits + stats.misses == stats.accesses

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=20, max_size=300))
    def test_hot_write_line_ends_in_lr(self, lids):
        """Any line written >= 2 times in a row must be LR-resident after."""
        l2 = make_small_l2()
        now = 0.0
        for lid in lids:
            now += 1e-9
            l2.access(lid * 256, is_write=True, now=now)
        # last line written twice at the end is surely in LR
        now += 1e-9
        l2.access(0x0, is_write=True, now=now)
        now += 1e-9
        result = l2.access(0x0, is_write=True, now=now)
        assert result.part == "lr"


class TestFactory:
    def test_c1_geometry(self):
        l2 = build_l2(config_c1().l2)
        assert isinstance(l2, TwoPartSTTL2)
        assert l2.hr_array.capacity_bytes == 1344 * KB
        assert l2.lr_array.capacity_bytes == 192 * KB
        assert l2.hr_array.associativity == 7
        assert l2.lr_array.associativity == 2

    def test_build_uniform_kinds(self):
        from repro.config import baseline_sram, baseline_stt
        sram = build_l2(baseline_sram().l2)
        stt = build_l2(baseline_stt().l2)
        assert isinstance(sram, UniformL2) and sram.technology == "sram"
        assert isinstance(stt, UniformL2) and stt.technology == "stt"

    def test_area_premise_c1_close_to_sram(self):
        """C1 must fit in roughly the SRAM baseline's area (the premise)."""
        from repro.config import baseline_sram
        c1 = build_l2(config_c1().l2)
        sram = build_l2(baseline_sram().l2)
        assert c1.area <= sram.area * 1.15
