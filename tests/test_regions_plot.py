"""Tests for the region-aggregate experiment and the ASCII bar renderer."""

import pytest

from repro.analysis.plot import ascii_bars, bars_for_columns
from repro.errors import AnalysisError
from repro.experiments import fig8, regions


class TestRegionsExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        sims = fig8.run_simulations(
            trace_length=6000, benchmarks=["stencil", "tpacf", "mri-gridding"]
        )
        return regions.run(results=sims)

    def test_one_row_per_region_present(self, result):
        labels = [row[0] for row in result.rows]
        assert any("insensitive" in label for label in labels)
        assert any("register-limited" in label for label in labels)

    def test_benchmark_counts(self, result):
        counts = {row[0]: row[1] for row in result.rows}
        assert counts["1: insensitive"] == 1
        assert counts["2: register-limited"] == 2

    def test_region1_flat(self, result):
        row = [r for r in result.rows if r[0].startswith("1")][0]
        for speedup in row[2:]:
            assert speedup == pytest.approx(1.0, abs=0.05)

    def test_region2_gains_only_with_registers(self, result):
        extras = result.extras
        assert extras["region2_C2"] > extras["region2_C1"]

    def test_extras_cover_all_regions_and_configs(self, result):
        for row in result.rows:
            region_number = row[0].split(":")[0]
            for config in fig8.CONFIG_ORDER:
                assert f"region{region_number}_{config}" in result.extras


class TestAsciiBars:
    def test_basic_rendering(self):
        out = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert "bb" in lines[1]
        # the longer value has the longer bar
        assert lines[1].count("█") > lines[0].count("█")

    def test_reference_tick_drawn(self):
        out = ascii_bars(["x"], [0.5], width=20, reference=1.0)
        assert "|" in out

    def test_values_shown(self):
        out = ascii_bars(["x"], [1.234], precision=2)
        assert "1.23" in out

    def test_zero_values_ok(self):
        out = ascii_bars(["x", "y"], [0.0, 0.0])
        assert "x" in out

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            ascii_bars([], [])
        with pytest.raises(AnalysisError):
            ascii_bars(["a"], [-1.0])
        with pytest.raises(AnalysisError):
            ascii_bars(["a"], [1.0], width=0)

    def test_bars_for_columns_titled(self):
        out = bars_for_columns(["a"], "speedup", [1.5])
        assert out.startswith("-- speedup --")


class TestRenderBars:
    def test_experiment_render_bars(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            "demo", ["bench", "speedup"], [["a", 1.2], ["b", 0.8], ["Gmean", "-"]]
        )
        out = result.render_bars()
        assert "speedup" in out
        assert "Gmean" not in out  # non-numeric rows skipped

    def test_render_bars_column_subset(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            "demo", ["bench", "x", "y"], [["a", 1.0, 2.0]]
        )
        out = result.render_bars(columns=["y"])
        assert "-- y --" in out and "-- x --" not in out
