"""Tests for configuration dataclasses and Table 2 presets."""

import pytest

from repro.config import (
    BASELINE_REGISTERS_PER_SM,
    GPUConfig,
    L1Config,
    L2Config,
    L2PartConfig,
    all_configs,
    baseline_sram,
    baseline_stt,
    config_c1,
    config_c2,
    config_c3,
    derived_register_boost,
    render_table2,
)
from repro.errors import ConfigurationError
from repro.units import KB


class TestL2PartConfig:
    def test_valid_geometry(self):
        part = L2PartConfig(384 * KB, 8)
        assert part.line_size == 256

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            L2PartConfig(384 * KB + 7, 8)

    def test_c1_hr_geometry_factors(self):
        L2PartConfig(1344 * KB, 7)  # 768 sets


class TestL2Config:
    def test_twopart_requires_lr(self):
        with pytest.raises(ConfigurationError):
            L2Config(kind="twopart", main=L2PartConfig(1344 * KB, 7))

    def test_uniform_rejects_lr(self):
        with pytest.raises(ConfigurationError):
            L2Config(
                kind="sram",
                main=L2PartConfig(384 * KB, 8),
                lr=L2PartConfig(48 * KB, 2),
            )

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            L2Config(kind="dram", main=L2PartConfig(384 * KB, 8))

    def test_total_capacity_sums_parts(self):
        config = config_c1().l2
        assert config.total_capacity_bytes == 1536 * KB

    def test_retention_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            L2Config(
                kind="twopart",
                main=L2PartConfig(1344 * KB, 7),
                lr=L2PartConfig(192 * KB, 2),
                hr_retention_s=1e-6,
                lr_retention_s=1e-3,
            )

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            L2Config(kind="sram", main=L2PartConfig(384 * KB, 8), write_threshold=0)


class TestPresets:
    def test_all_five_configs(self):
        configs = all_configs()
        assert set(configs) == {"baseline", "stt-baseline", "C1", "C2", "C3"}

    def test_baseline_geometry(self):
        config = baseline_sram()
        assert config.l2.kind == "sram"
        assert config.l2.main.capacity_bytes == 384 * KB
        assert config.l2.main.associativity == 8

    def test_stt_baseline_is_4x(self):
        config = baseline_stt()
        assert config.l2.main.capacity_bytes == 4 * 384 * KB

    def test_c1_table2_geometry(self):
        config = config_c1()
        assert config.l2.main.capacity_bytes == 1344 * KB
        assert config.l2.main.associativity == 7
        assert config.l2.lr is not None
        assert config.l2.lr.capacity_bytes == 192 * KB
        assert config.l2.lr.associativity == 2

    def test_c2_c3_same_and_double_capacity(self):
        assert config_c2().l2.total_capacity_bytes == 384 * KB
        assert config_c3().l2.total_capacity_bytes == 768 * KB

    def test_c2_register_boost_positive(self):
        assert config_c2().registers_per_sm > BASELINE_REGISTERS_PER_SM

    def test_c3_boost_smaller_than_c2(self):
        """C3 spends more area on cache, so less is left for registers."""
        assert (
            BASELINE_REGISTERS_PER_SM
            < config_c3().registers_per_sm
            < config_c2().registers_per_sm
        )

    def test_common_gtx480_parameters(self):
        for config in all_configs().values():
            assert config.num_sms == 15
            assert config.max_warps_per_sm == 48
            assert config.num_mem_controllers == 6
            assert config.l1.capacity_bytes == 16 * KB

    def test_render_table2_mentions_all(self):
        table = render_table2()
        for name in all_configs():
            assert name in table


class TestDerivedRegisterBoost:
    def test_boost_granularity(self):
        boost = derived_register_boost(
            L2PartConfig(336 * KB, 7), L2PartConfig(48 * KB, 2)
        )
        assert boost % 256 == 0
        assert boost > 0

    def test_no_boost_when_no_area_saved(self):
        # a two-part cache as large as C1 saves ~no area vs the SRAM baseline
        boost = derived_register_boost(
            L2PartConfig(1344 * KB, 7), L2PartConfig(192 * KB, 2)
        )
        assert boost == 0

    def test_smaller_cache_saves_more(self):
        small = derived_register_boost(
            L2PartConfig(336 * KB, 7), L2PartConfig(48 * KB, 2)
        )
        medium = derived_register_boost(
            L2PartConfig(672 * KB, 7), L2PartConfig(96 * KB, 2)
        )
        assert small > medium


class TestGPUConfigValidation:
    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(
                name="bad",
                l2=L2Config(kind="sram", main=L2PartConfig(384 * KB, 8)),
                num_sms=0,
            )

    def test_rejects_zero_registers(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(
                name="bad",
                l2=L2Config(kind="sram", main=L2PartConfig(384 * KB, 8)),
                registers_per_sm=0,
            )

    def test_l1_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            L1Config(capacity_bytes=16 * KB + 1)
