"""Tests for replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    NRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.errors import ConfigurationError

ALL_VALID = lambda way: True
NONE_VALID = lambda way: False


class TestVictimPrefersInvalid:
    @pytest.mark.parametrize("name", ["lru", "plru", "fifo", "random", "nru"])
    def test_invalid_way_chosen_first(self, name):
        policy = make_policy(name, 4)
        valid = [True, True, False, True]
        assert policy.victim(lambda w: valid[w]) == 2

    @pytest.mark.parametrize("name", ["lru", "plru", "fifo", "random", "nru"])
    def test_empty_set_gives_way_zero(self, name):
        policy = make_policy(name, 4)
        assert policy.victim(NONE_VALID) == 0


class TestLRU:
    def test_least_recent_evicted(self):
        policy = LRUPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_fill(way)
        policy.on_hit(0)  # order now 1,2,3,0
        assert policy.victim(ALL_VALID) == 1

    def test_sequence(self):
        policy = LRUPolicy(2)
        policy.on_fill(0)
        policy.on_fill(1)
        policy.on_hit(0)
        assert policy.victim(ALL_VALID) == 1
        policy.on_hit(1)
        assert policy.victim(ALL_VALID) == 0

    def test_way_range_checked(self):
        with pytest.raises(ConfigurationError):
            LRUPolicy(4).on_hit(4)

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=50))
    def test_victim_is_least_recent(self, touches):
        policy = LRUPolicy(8)
        for way in touches:
            policy.on_hit(way)
        # reconstruct expected LRU order
        order = list(range(8))
        for way in touches:
            order.remove(way)
            order.append(way)
        assert policy.victim(ALL_VALID) == order[0]


class TestTreePLRU:
    def test_victim_avoids_most_recent(self):
        policy = TreePLRUPolicy(4)
        policy.on_fill(2)
        assert policy.victim(ALL_VALID) != 2

    def test_rotation_covers_all_ways(self):
        """Filling the victim repeatedly must cycle through every way."""
        policy = TreePLRUPolicy(8)
        seen = set()
        for _ in range(16):
            victim = policy.victim(ALL_VALID)
            seen.add(victim)
            policy.on_fill(victim)
        assert seen == set(range(8))

    def test_non_pow2_associativity(self):
        policy = TreePLRUPolicy(7)
        for _ in range(20):
            victim = policy.victim(ALL_VALID)
            assert 0 <= victim < 7
            policy.on_fill(victim)


class TestFIFO:
    def test_hits_do_not_reorder(self):
        policy = FIFOPolicy(3)
        for way in (0, 1, 2):
            policy.on_fill(way)
        policy.on_hit(0)
        policy.on_hit(0)
        assert policy.victim(ALL_VALID) == 0

    def test_fill_moves_to_back(self):
        policy = FIFOPolicy(3)
        for way in (0, 1, 2):
            policy.on_fill(way)
        policy.on_fill(0)  # refill 0 -> now oldest is 1
        assert policy.victim(ALL_VALID) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(8, seed=42)
        b = RandomPolicy(8, seed=42)
        seq_a = [a.victim(ALL_VALID) for _ in range(20)]
        seq_b = [b.victim(ALL_VALID) for _ in range(20)]
        assert seq_a == seq_b

    def test_in_range(self):
        policy = RandomPolicy(4, seed=7)
        for _ in range(50):
            assert 0 <= policy.victim(ALL_VALID) < 4


class TestNRU:
    def test_unreferenced_way_is_victim(self):
        policy = NRUPolicy(4)
        policy.on_hit(0)
        policy.on_hit(1)
        assert policy.victim(ALL_VALID) == 2

    def test_reference_bits_clear_when_all_set(self):
        policy = NRUPolicy(2)
        policy.on_hit(0)
        policy.on_hit(1)  # all set -> cleared, 1 re-marked
        assert policy.victim(ALL_VALID) == 0


class TestFactory:
    def test_unknown_policy_raises(self):
        with pytest.raises(ConfigurationError):
            make_policy("clock", 4)

    def test_zero_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("lru", 0)

    @pytest.mark.parametrize("name,cls", [
        ("lru", LRUPolicy),
        ("plru", TreePLRUPolicy),
        ("fifo", FIFOPolicy),
        ("random", RandomPolicy),
        ("nru", NRUPolicy),
    ])
    def test_factory_types(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_factory_case_insensitive(self):
        assert isinstance(make_policy("LRU", 2), LRUPolicy)
