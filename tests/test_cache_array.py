"""Tests for the behavioural set-associative cache array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.array import SetAssociativeCache
from repro.errors import GeometryError
from repro.units import KB


def make_cache(capacity=16 * KB, assoc=4, line=256, **kwargs):
    return SetAssociativeCache(capacity, assoc, line, **kwargs)


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(16 * KB, 4, 256)
        assert cache.num_sets == 16

    def test_num_lines(self):
        cache = make_cache(16 * KB, 4, 256)
        assert cache.num_lines == 64

    def test_non_factoring_geometry_rejected(self):
        with pytest.raises(GeometryError):
            make_cache(16 * KB + 1, 4, 256)

    def test_seven_way_non_pow2_sets(self):
        cache = make_cache(1344 * KB, 7, 256)
        assert cache.num_sets == 768


class TestBasicAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        first = cache.access(0x1000, is_write=False)
        assert not first.hit and first.filled
        second = cache.access(0x1000, is_write=False)
        assert second.hit

    def test_same_line_different_bytes_hit(self):
        cache = make_cache(line=256)
        cache.access(0x1000, is_write=False)
        assert cache.access(0x10FF, is_write=False).hit

    def test_write_marks_dirty(self):
        cache = make_cache()
        cache.access(0x2000, is_write=True)
        block = cache.block_at(0x2000)
        assert block is not None and block.dirty

    def test_read_fill_is_clean(self):
        cache = make_cache()
        cache.access(0x2000, is_write=False)
        block = cache.block_at(0x2000)
        assert block is not None and not block.dirty

    def test_write_no_allocate_mode(self):
        cache = make_cache(write_allocate=False)
        outcome = cache.access(0x3000, is_write=True)
        assert not outcome.hit and not outcome.filled
        assert cache.block_at(0x3000) is None

    def test_probe_has_no_side_effects(self):
        cache = make_cache()
        assert not cache.probe(0x1000)
        assert cache.stats.accesses == 0


class TestEviction:
    def test_conflict_eviction_reports_address(self):
        cache = make_cache(capacity=2 * 256, assoc=1, line=256)  # 2 sets, direct-mapped
        cache.access(0x0000, is_write=False)
        outcome = cache.access(0x0000 + 2 * 256, is_write=False)  # same set
        assert outcome.evicted_address == 0x0000
        assert not outcome.evicted_dirty

    def test_dirty_eviction_flagged(self):
        cache = make_cache(capacity=2 * 256, assoc=1, line=256)
        cache.access(0x0000, is_write=True)
        outcome = cache.access(0x0000 + 2 * 256, is_write=False)
        assert outcome.evicted_dirty
        assert cache.stats.evictions_dirty == 1

    def test_lru_eviction_order(self):
        cache = make_cache(capacity=2 * 256, assoc=2, line=256)  # 1 set, 2 ways
        cache.access(0x0000, is_write=False)
        cache.access(0x0100, is_write=False)
        cache.access(0x0000, is_write=False)  # touch 0 -> 0x100 is LRU
        outcome = cache.access(0x0200, is_write=False)
        assert outcome.evicted_address == 0x0100

    def test_explicit_evict(self):
        cache = make_cache()
        cache.access(0x5000, is_write=True)
        result = cache.evict(0x5000)
        assert result == (0x5000, True)
        assert cache.block_at(0x5000) is None

    def test_evict_missing_returns_none(self):
        cache = make_cache()
        assert cache.evict(0x5000) is None


class TestFill:
    def test_fill_installs_without_demand_stats(self):
        cache = make_cache()
        cache.fill(0x4000, dirty=True)
        assert cache.stats.accesses == 0
        assert cache.probe(0x4000)

    def test_fill_existing_line_merges_dirty(self):
        cache = make_cache()
        cache.fill(0x4000, dirty=False)
        cache.fill(0x4000, dirty=True)
        block = cache.block_at(0x4000)
        assert block is not None and block.dirty
        # no duplicate installed
        assert cache.stats.fills == 1


class TestInvalidate:
    def test_invalidate_present(self):
        cache = make_cache()
        cache.access(0x6000, is_write=False)
        assert cache.invalidate(0x6000)
        assert not cache.probe(0x6000)
        assert cache.stats.invalidations == 1

    def test_invalidate_absent(self):
        cache = make_cache()
        assert not cache.invalidate(0x6000)

    def test_flush_counts_dirty(self):
        cache = make_cache()
        cache.access(0x1000, is_write=True)
        cache.access(0x2000, is_write=False)
        assert cache.flush() == 1
        assert cache.occupancy() == 0.0


class TestStats:
    def test_hit_rate(self):
        cache = make_cache()
        cache.access(0x1000, is_write=False)
        cache.access(0x1000, is_write=False)
        cache.access(0x1000, is_write=True)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 2
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_write_counters_saturate(self):
        cache = make_cache(write_counter_saturation=3)
        cache.access(0x1000, is_write=True)
        for _ in range(10):
            cache.access(0x1000, is_write=True)
        block = cache.block_at(0x1000)
        assert block is not None
        assert block.write_count == 3
        assert block.total_writes == 11

    def test_per_set_write_counts(self):
        cache = make_cache(capacity=4 * 256, assoc=1, line=256)  # 4 sets
        cache.access(0 * 256, is_write=True)
        cache.access(1 * 256, is_write=True)
        cache.access(1 * 256, is_write=True)
        counts = cache.per_set_write_counts()
        assert counts[0] == 1 and counts[1] == 2 and counts[2] == 0


class TestCapacityBehaviour:
    def test_working_set_within_capacity_all_hits_after_warmup(self):
        cache = make_cache(capacity=16 * KB, assoc=4, line=256)
        lines = [i * 256 for i in range(32)]  # 8KB working set
        for addr in lines:
            cache.access(addr, is_write=False)
        for addr in lines:
            assert cache.access(addr, is_write=False).hit

    def test_streaming_never_rehits(self):
        cache = make_cache(capacity=4 * KB, assoc=4, line=256)
        for i in range(1000):
            outcome = cache.access(i * 256, is_write=False)
            assert not outcome.hit

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
           st.booleans())
    def test_occupancy_invariant(self, line_ids, writes):
        """Occupancy never exceeds 1.0 and the tag map stays consistent."""
        cache = make_cache(capacity=4 * KB, assoc=4, line=256)
        for lid in line_ids:
            cache.access(lid * 256, is_write=writes)
        assert 0.0 < cache.occupancy() <= 1.0
        # every valid block must be findable through block_at
        for index, way, block in cache.iter_blocks():
            if block.valid:
                addr = cache.mapper.rebuild(block.tag, index)
                found = cache.block_at(addr)
                assert found is block

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
                    min_size=1, max_size=200))
    def test_stats_balance(self, ops):
        """accesses = hits + misses; fills <= misses (write-allocate)."""
        cache = make_cache(capacity=2 * KB, assoc=2, line=256)
        for lid, is_write in ops:
            cache.access(lid * 256, is_write=is_write)
        stats = cache.stats
        assert stats.accesses == stats.hits + stats.misses
        assert stats.fills <= stats.misses
        assert stats.evictions <= stats.fills
