"""Tests for the differential golden-model oracle (``repro.oracle``)."""

import json

import pytest

from repro.config import config_c1, config_c2, config_c3
from repro.errors import OracleError
from repro.io import canonical_json
from repro.oracle import (
    MUTANTS,
    LockstepRunner,
    build_report,
    diverges,
    make_pair,
    pressure_config,
    run_diff,
    shrink_sequence,
    validate_report,
)
from repro.tracing import TraceCollector

US = 1e-6


# --------------------------------------------------------------------------
# Zero divergence on fixed code
# --------------------------------------------------------------------------


class TestZeroDivergence:
    """The optimized L2 and the naive reference agree access for access."""

    @pytest.mark.parametrize("profile", ["cfd", "lbm", "bfs"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_paper_config_agrees(self, profile, seed):
        report = run_diff(profile, config_c1(), seed=seed, accesses=800)
        assert report["divergence"] is None
        assert report["shrunk"] is None
        assert report["checked_accesses"] == 800

    @pytest.mark.parametrize("make_config", [config_c2, config_c3])
    def test_other_table2_configs_agree(self, make_config):
        report = run_diff("kmeans", make_config(), seed=0, accesses=600)
        assert report["divergence"] is None

    @pytest.mark.parametrize("profile", ["lbm", "stencil", "bfs"])
    def test_small_config_under_pressure_agrees(self, profile):
        """The tiny config forces evictions/migrations/refreshes constantly."""
        report = run_diff(profile, pressure_config(), seed=3, accesses=2000)
        assert report["divergence"] is None

    def test_report_counters_reflect_real_traffic(self):
        report = run_diff("lbm", pressure_config(), seed=0, accesses=2000)
        counters = report["counters"]
        # the pressure config must actually exercise the interesting paths,
        # otherwise the zero-divergence above proves nothing
        assert counters["l2.migrations_to_lr"] > 0
        assert counters["l2.returns_to_hr"] > 0
        assert counters["refresh.lr_refreshes"] > 0
        assert counters["search.second_probes"] > 0


# --------------------------------------------------------------------------
# Mutants: the oracle must catch known-bad variants, quickly
# --------------------------------------------------------------------------


class TestMutantDetection:
    @pytest.mark.parametrize("mutant", sorted(MUTANTS))
    def test_caught_and_shrunk_small(self, mutant):
        report = run_diff(
            "lbm", pressure_config(), seed=0, accesses=2000,
            mutant=mutant, shrink=True,
        )
        divergence = report["divergence"]
        assert divergence is not None, f"oracle missed mutant {mutant!r}"
        assert divergence["index"] <= 2000
        shrunk = report["shrunk"]
        assert shrunk is not None
        assert 1 <= len(shrunk["accesses"]) <= 50
        assert shrunk["divergence"] is not None

    @pytest.mark.parametrize("mutant", sorted(MUTANTS))
    def test_shrunk_reproducer_is_1_minimal(self, mutant):
        """Removing any single access from the reproducer kills the bug."""
        config = pressure_config()
        report = run_diff(
            "lbm", config, seed=0, accesses=2000, mutant=mutant, shrink=True,
        )
        minimal = [tuple(a) for a in report["shrunk"]["accesses"]]
        assert diverges(config, minimal, mutant=mutant)
        for drop in range(len(minimal)):
            candidate = minimal[:drop] + minimal[drop + 1:]
            if candidate:
                assert not diverges(config, candidate, mutant=mutant), (
                    f"dropping access {drop} still diverges: not 1-minimal"
                )

    def test_probe_order_flagged_on_first_hit(self):
        """The swapped probe order shows up in latency/energy immediately."""
        report = run_diff(
            "cfd", config_c1(), seed=0, accesses=200, mutant="probe-order",
        )
        divergence = report["divergence"]
        assert divergence is not None
        fields = {f["field"] for f in divergence["fields"]}
        assert "result.latency_s" in fields or "result.probes" in fields

    def test_unknown_mutant_raises(self):
        from repro.oracle import build_mutant

        with pytest.raises(OracleError, match="unknown mutant"):
            build_mutant("definitely-not-a-mutant")


# --------------------------------------------------------------------------
# Lockstep runner plumbing
# --------------------------------------------------------------------------


class TestLockstepRunner:
    def test_end_state_snapshot_divergence(self):
        """State-only drift is reported at index == len(sequence)."""
        dut, ref = make_pair(pressure_config())
        dut.access(0x4000, True, 1 * US)  # DUT advanced, reference not
        divergence = LockstepRunner(dut, ref).run([])
        assert divergence is not None
        assert divergence["index"] == 0
        assert divergence["address"] is None
        fields = {f["field"] for f in divergence["fields"]}
        assert "state.hr.residents" in fields

    def test_tracer_pinpoints_divergence(self):
        tracer = TraceCollector()
        dut, ref = make_pair(pressure_config(), mutant="probe-order",
                             tracer=tracer)
        sequence = [(0x4000, True, 1 * US), (0x4000, True, 3 * US)]
        divergence = LockstepRunner(dut, ref, tracer=tracer).run(sequence)
        assert divergence is not None
        summary = tracer.summary()
        assert summary["counters"]["oracle.divergences"] == 1
        assert summary["counters"]["oracle.accesses_checked"] >= 1
        trace = tracer.to_chrome_trace()
        events = [e for e in trace["traceEvents"]
                  if e.get("name") == "oracle.divergence"]
        assert len(events) == 1
        assert events[0]["args"]["index"] == divergence["index"]
        assert events[0]["args"]["address"] == divergence["address"]

    def test_rejects_non_twopart_configs(self):
        from repro.config import baseline_sram, baseline_stt
        from repro.oracle import l2_kwargs_from_config

        with pytest.raises(OracleError, match="two-part"):
            l2_kwargs_from_config(baseline_sram().l2)
        with pytest.raises(OracleError, match="two-part"):
            l2_kwargs_from_config(baseline_stt().l2)

    def test_rejects_zero_accesses(self):
        with pytest.raises(OracleError, match="at least one access"):
            run_diff("cfd", pressure_config(), accesses=0)


# --------------------------------------------------------------------------
# Shrinker
# --------------------------------------------------------------------------


def _contains_all(needles):
    return lambda candidate: all(n in candidate for n in needles)


class TestShrinker:
    def test_finds_exact_minimal_subset(self):
        sequence = [(i, False, float(i)) for i in range(40)]
        needles = [sequence[3], sequence[17], sequence[31]]
        minimal = shrink_sequence(sequence, _contains_all(needles))
        assert sorted(minimal) == sorted(needles)

    def test_preserves_order_and_timestamps(self):
        sequence = [(i, bool(i % 2), i * 0.5) for i in range(16)]
        minimal = shrink_sequence(
            sequence, _contains_all([sequence[2], sequence[9]])
        )
        assert minimal == [sequence[2], sequence[9]]

    def test_single_element_input(self):
        sequence = [(7, True, 1.0)]
        assert shrink_sequence(sequence, lambda c: bool(c)) == sequence

    def test_empty_input_raises(self):
        with pytest.raises(OracleError, match="empty"):
            shrink_sequence([], lambda c: True)

    def test_non_failing_input_raises(self):
        with pytest.raises(OracleError, match="does not diverge"):
            shrink_sequence([(1, False, 0.1)], lambda c: False)

    def test_evaluation_budget_enforced(self):
        sequence = [(i, False, float(i)) for i in range(64)]
        with pytest.raises(OracleError, match="exceeded"):
            shrink_sequence(
                sequence, _contains_all(sequence[::2]), max_evaluations=5
            )


# --------------------------------------------------------------------------
# Report documents
# --------------------------------------------------------------------------


def _example_report(**overrides):
    payload = run_diff("lbm", pressure_config(), seed=0, accesses=120,
                       mutant="probe-order", shrink=True)
    payload.update(overrides)
    return payload


class TestReport:
    def test_round_trips_through_canonical_json(self):
        report = _example_report()
        rendered = canonical_json(report)
        reloaded = json.loads(rendered)
        assert validate_report(reloaded) is reloaded
        assert canonical_json(reloaded) == rendered

    def test_clean_report_validates(self):
        report = run_diff("cfd", pressure_config(), seed=0, accesses=60)
        assert validate_report(report) is report
        assert report["divergence"] is None

    def test_deterministic_across_runs(self):
        first = run_diff("stencil", pressure_config(), seed=5, accesses=300)
        second = run_diff("stencil", pressure_config(), seed=5, accesses=300)
        assert canonical_json(first) == canonical_json(second)

    @pytest.mark.parametrize("mutation, match", [
        ({"schema_version": 99}, "schema version"),
        ({"kind": "weird"}, "not an oracle report"),
        ({"seed": "zero"}, "seed"),
        ({"mutant": 4}, "mutant"),
        ({"counters": None}, "counters"),
    ])
    def test_rejects_malformed_top_level(self, mutation, match):
        with pytest.raises(OracleError, match=match):
            validate_report(_example_report(**mutation))

    def test_rejects_missing_divergence_fields(self):
        report = _example_report()
        del report["divergence"]["fields"]
        with pytest.raises(OracleError, match="missing key 'fields'"):
            validate_report(report)

    def test_rejects_orphan_shrunk_block(self):
        report = _example_report()
        clean = build_report(
            profile=report["profile"], config=report["config"],
            seed=report["seed"], accesses=report["accesses"],
            dt_s=report["dt_s"], mutant=report["mutant"],
            checked_accesses=report["checked_accesses"],
            divergence=None, shrunk=report["shrunk"],
            counters=report["counters"],
        )
        with pytest.raises(OracleError, match="no divergence"):
            validate_report(clean)

    def test_rejects_bad_shrunk_access_shape(self):
        report = _example_report()
        report["shrunk"]["accesses"][0] = [1, 2]
        with pytest.raises(OracleError, match="shrunk.accesses"):
            validate_report(report)
