"""Tests for the fill_from_dram paths of every L2 implementation."""

import pytest

from repro.core import RelaxedUniformL2, TwoPartSTTL2, UniformL2
from repro.units import KB


@pytest.fixture(params=["sram", "stt", "relaxed", "twopart"])
def l2(request):
    if request.param == "sram":
        return UniformL2(16 * KB, 4, 256, technology="sram")
    if request.param == "stt":
        return UniformL2(16 * KB, 4, 256, technology="stt")
    if request.param == "relaxed":
        return RelaxedUniformL2(16 * KB, 4, 256)
    return TwoPartSTTL2(16 * KB, 4, 4 * KB, 2)


class TestFillFromDram:
    def test_fill_installs_line(self, l2):
        l2.fill_from_dram(0x4000, now=1e-9)
        assert l2.access(0x4000, is_write=False, now=2e-9).hit

    def test_dirty_fill_counts_writeback_debt(self, l2):
        l2.fill_from_dram(0x4000, now=1e-9, dirty=True)
        assert l2.dirty_lines() == 1

    def test_fill_charges_energy(self, l2):
        before = l2.energy.total_j
        result = l2.fill_from_dram(0x5000, now=1e-9)
        assert result.energy_j > 0
        assert l2.energy.total_j > before

    def test_refill_of_present_line_is_idempotent(self, l2):
        l2.fill_from_dram(0x4000, now=1e-9)
        result = l2.fill_from_dram(0x4000, now=2e-9)
        assert result.hit
        # no duplicate: still exactly one resident copy
        assert l2.access(0x4000, is_write=False, now=3e-9).hit

    def test_fill_does_not_count_demand_stats(self, l2):
        l2.fill_from_dram(0x4000, now=1e-9)
        assert l2.stats.accesses == 0

    def test_conflict_fill_reports_writeback(self, l2):
        # make one set overflow with dirty fills
        if isinstance(l2, TwoPartSTTL2):
            sets = l2.hr_array.num_sets
            ways = l2.hr_array.associativity
        else:
            sets = l2.array.num_sets
            ways = l2.array.associativity
        writebacks = 0
        for i in range(ways + 1):
            result = l2.fill_from_dram(0x100000 + i * sets * 256, now=(i + 1) * 1e-9,
                                       dirty=True)
            writebacks += result.dram_writebacks
        assert writebacks == 1
