"""Tests for the subarray-partitioning explorer."""

import pytest
from hypothesis import given, strategies as st

from repro.areapower.partitioned import explore, optimal_organization
from repro.areapower.technology import TECH_32NM, TECH_40NM
from repro.errors import ConfigurationError
from repro.units import KB, MB


class TestExplore:
    @pytest.fixture(scope="class")
    def organizations(self):
        return explore(384 * KB)

    def test_power_of_two_counts(self, organizations):
        counts = [org.num_subarrays for org in organizations]
        assert counts[0] == 1
        for previous, current in zip(counts, counts[1:]):
            assert current == 2 * previous

    def test_capacity_conserved(self, organizations):
        for org in organizations:
            assert org.num_subarrays * org.rows * org.cols == 384 * KB * 8

    def test_delay_improves_with_partitioning(self, organizations):
        """The CACTI trend: shorter wordlines/bitlines -> faster access."""
        assert organizations[-1].access_delay_s < organizations[0].access_delay_s / 5

    def test_dynamic_energy_improves_with_partitioning(self, organizations):
        assert organizations[-1].access_energy_j < organizations[0].access_energy_j

    def test_leakage_and_area_worsen_with_partitioning(self, organizations):
        """Replicated periphery is the price of fine partitioning."""
        assert organizations[-1].leakage_w > organizations[0].leakage_w
        assert organizations[-1].area_m2 > organizations[0].area_m2

    def test_subarrays_near_square(self, organizations):
        for org in organizations:
            assert org.cols / org.rows <= 4

    def test_small_bank_has_fewer_options(self):
        small = explore(8 * KB)
        large = explore(4 * MB)
        assert len(small) < len(large)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            explore(0)
        with pytest.raises(ConfigurationError):
            explore(384 * KB, max_subarrays=100)
        with pytest.raises(ConfigurationError):
            explore(64, line_bytes=256)  # cannot hold one line


class TestOptimal:
    def test_edp_optimal_is_partitioned(self):
        best = optimal_organization(384 * KB)
        assert best.num_subarrays > 1

    def test_edp_optimal_minimizes_edp(self):
        best = optimal_organization(384 * KB)
        for org in explore(384 * KB):
            assert best.edp <= org.edp

    def test_edap_penalizes_replication(self):
        """Area-aware optimization never picks *more* subarrays than EDP."""
        edp = optimal_organization(1536 * KB, objective="edp")
        edap = optimal_organization(1536 * KB, objective="edap")
        assert edap.num_subarrays <= edp.num_subarrays

    def test_unknown_objective(self):
        with pytest.raises(ConfigurationError):
            optimal_organization(384 * KB, objective="power")

    def test_scaling_shrinks_delay(self):
        at40 = optimal_organization(384 * KB, tech=TECH_40NM)
        at32 = optimal_organization(384 * KB, tech=TECH_32NM)
        assert at32.access_delay_s < at40.access_delay_s

    @given(st.sampled_from([64 * KB, 256 * KB, 1536 * KB]))
    def test_optimal_within_explored_set(self, capacity):
        organizations = explore(capacity)
        best = optimal_organization(capacity)
        assert any(
            org.num_subarrays == best.num_subarrays for org in organizations
        )
