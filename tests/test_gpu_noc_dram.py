"""Tests for the butterfly NoC and DRAM models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.gpu.dram import DRAMModel
from repro.gpu.interconnect import ButterflyNoC


class TestButterflyNoC:
    def test_stage_count(self):
        noc = ButterflyNoC(num_sources=15, num_destinations=8, radix=2)
        assert noc.num_stages == 4  # ceil(log2(15))

    def test_traversal_includes_serialization(self):
        noc = ButterflyNoC()
        empty = noc.traversal_cycles(0)
        payload = noc.traversal_cycles(256)
        assert payload == pytest.approx(empty + 256 / noc.channel_bytes_per_cycle)

    def test_round_trip(self):
        noc = ButterflyNoC()
        rt = noc.round_trip_cycles(request_bytes=8, response_bytes=256)
        assert rt == pytest.approx(
            noc.traversal_cycles(8) + noc.traversal_cycles(256)
        )

    def test_contention_grows_with_utilization(self):
        noc = ButterflyNoC()
        assert noc.contention_cycles(0.0) == 0.0
        assert noc.contention_cycles(0.5) < noc.contention_cycles(0.9)

    def test_contention_capped(self):
        noc = ButterflyNoC()
        assert noc.contention_cycles(10.0) == noc.contention_cycles(0.95)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            ButterflyNoC(radix=1)
        with pytest.raises(ConfigurationError):
            ButterflyNoC(num_sources=0)
        with pytest.raises(ConfigurationError):
            ButterflyNoC().traversal_cycles(-1)

    @given(st.floats(min_value=0, max_value=0.94))
    def test_contention_monotone(self, u):
        noc = ButterflyNoC()
        assert noc.contention_cycles(u) <= noc.contention_cycles(u + 0.01)


class TestDRAMModel:
    def test_cold_read_pays_full_latency(self):
        dram = DRAMModel()
        latency = dram.access(0x0, is_write=False, now=0.0)
        assert latency == pytest.approx(dram.base_latency_s)

    def test_row_hit_is_cheaper(self):
        dram = DRAMModel(row_size=2048, num_channels=6, line_size=256)
        # 0x0 and 0x600 share channel 0 (6 lines apart) and row 0
        dram.access(0x0, is_write=False, now=0.0)
        latency = dram.access(0x600, is_write=False, now=1e-5)
        assert latency < dram.base_latency_s
        assert dram.stats.row_hits == 1

    def test_row_conflict_pays_full(self):
        dram = DRAMModel(row_size=2048)
        dram.access(0x0, is_write=False, now=0.0)
        latency = dram.access(0x10000, is_write=False, now=1e-5)
        assert latency >= dram.base_latency_s

    def test_queueing_under_load(self):
        dram = DRAMModel(num_channels=1)
        first = dram.access(0x0, is_write=False, now=0.0)
        second = dram.access(0x10000, is_write=False, now=0.0)
        assert second > first

    def test_queue_wait_capped(self):
        dram = DRAMModel(num_channels=1, max_queue_wait_factor=1.0)
        for i in range(200):
            latency = dram.access(i * 0x10000, is_write=False, now=0.0)
        assert latency <= dram.base_latency_s * 2 + dram.service_time_s

    def test_writes_do_not_block_reads(self):
        """Writes drain from a low-priority queue (GPU MC behaviour)."""
        dram = DRAMModel(num_channels=1)
        for i in range(50):
            dram.access(i * 0x10000, is_write=True, now=0.0)
        read = dram.access(0x5000000, is_write=False, now=0.0)
        assert read == pytest.approx(dram.base_latency_s)

    def test_writes_counted_in_traffic(self):
        dram = DRAMModel()
        dram.access(0x0, is_write=True, now=0.0)
        dram.access(0x0, is_write=False, now=0.0)
        assert dram.stats.writes == 1
        assert dram.stats.reads == 1
        assert dram.stats.accesses == 2

    def test_channel_interleaving(self):
        dram = DRAMModel(num_channels=6, line_size=256)
        assert dram._channel(0) == 0
        assert dram._channel(256) == 1
        assert dram._channel(6 * 256) == 0

    def test_reset_clears_state(self):
        dram = DRAMModel(num_channels=1)
        dram.access(0x0, is_write=False, now=0.0)
        dram.reset()
        assert dram.access(0x0, is_write=False, now=0.0) == pytest.approx(
            dram.base_latency_s
        )

    def test_utilization_bounded(self):
        dram = DRAMModel()
        for i in range(100):
            dram.access(i * 256, is_write=False, now=0.0)
        assert 0.0 <= dram.utilization(1e-5) <= 1.0

    def test_utilization_idle_gap_regression(self):
        """One late request must not read as a ~100% busy channel.

        The pre-fix implementation summed clamped ``_busy_until``
        *timestamps*: a single request served at t=0.9s against a 1s run
        reported the channel ~90% busy although it was busy for one
        service time.  Utilization must reflect accumulated service time.
        """
        dram = DRAMModel(num_channels=2)
        elapsed = 1.0
        dram.access(0x0, is_write=False, now=0.9)  # channel 0, one transfer
        expected = dram.service_time_s / (dram.num_channels * elapsed)
        assert dram.utilization(elapsed) == pytest.approx(expected)
        assert dram.utilization(elapsed) < 0.01

    def test_utilization_excludes_unfinished_tail(self):
        """Service queued past the measurement horizon is not busy time."""
        dram = DRAMModel(num_channels=1)
        for i in range(50):
            dram.access(i * 0x10000, is_write=False, now=0.0)
        # horizon cut mid-queue: busy time can never exceed the horizon
        horizon = 10 * dram.service_time_s
        assert dram.utilization(horizon) == pytest.approx(1.0)

    def test_utilization_reset(self):
        dram = DRAMModel(num_channels=1)
        dram.access(0x0, is_write=False, now=0.0)
        dram.reset()
        assert dram.utilization(1.0) == 0.0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            DRAMModel(num_channels=0)
        with pytest.raises(ConfigurationError):
            DRAMModel(row_hit_latency_s=1.0, base_latency_s=0.5)
        with pytest.raises(ConfigurationError):
            DRAMModel(bandwidth_bytes_per_s=0)
