"""Tests for the ``repro-sttgpu`` command-line interface."""

import json

from repro.cli import main
from repro.experiments.runner import EXPERIMENTS


class TestUnknownExperiment:
    def test_exit_code_2(self, capsys):
        assert main(["experiments", "nope"]) == 2

    def test_sorted_names_and_usage_hint(self, capsys):
        main(["experiments", "zzz", "aaa"])
        err = capsys.readouterr().err
        # unknown names reported sorted
        assert err.index("'aaa'") < err.index("'zzz'")
        # the full registry, sorted, plus a usage hint
        assert ", ".join(sorted(EXPERIMENTS)) in err
        assert "usage: repro-sttgpu experiments" in err

    def test_valid_names_not_rerun_before_failing(self, capsys):
        """Validation happens up front: nothing is printed to stdout."""
        main(["experiments", "fig3", "nope"])
        assert capsys.readouterr().out == ""


class TestExperimentsCommand:
    def test_runs_subset_and_prints_tables(self, capsys):
        assert main(["experiments", "table1", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_jobs_and_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        code = main([
            "experiments", "fig3",
            "--trace-length", "800", "--benchmarks", "nn",
            "--jobs", "2", "--manifest", str(manifest),
        ])
        assert code == 0
        document = json.loads(manifest.read_text())
        assert document["run"]["jobs"] == 2
        assert document["totals"]["jobs"] == 1
        assert "wrote manifest" in capsys.readouterr().out

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["experiments", "fig3", "--trace-length", "800",
                "--benchmarks", "nn", "--cache-dir", cache,
                "--manifest", str(tmp_path / "m.json")]
        assert main(args) == 0
        assert main(args) == 0
        document = json.loads((tmp_path / "m.json").read_text())
        assert document["totals"]["cache_hits"] == 1
        assert document["totals"]["cache_misses"] == 0

    def test_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        main(["experiments", "table1", "--json", str(out_file)])
        document = json.loads(out_file.read_text())
        assert "table1" in document["experiments"]


class TestOtherCommands:
    def test_configs(self, capsys):
        assert main(["configs"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        assert "bfs" in capsys.readouterr().out

    def test_simulate_unknown_config(self, capsys):
        assert main(["simulate", "bfs", "nope"]) == 2

    def test_simulate_shards_requires_sharded_engine(self, capsys):
        assert main(["simulate", "bfs", "C1", "--engine", "soa",
                     "--shards", "4"]) == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_simulate_workers_requires_sharded_engine(self, capsys):
        assert main(["simulate", "bfs", "C1", "--workers", "2"]) == 2
        assert "--engine sharded" in capsys.readouterr().err

    def test_simulate_sharded_defaults_to_four_shards(self, capsys):
        assert main(["simulate", "bfs", "C1", "--engine", "sharded",
                     "--workers", "1"]) == 0
        assert "(4 shards, 1 workers)" in capsys.readouterr().out


class TestDiffCommand:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["diff", "lbm", "--config", "oracle-small",
                     "--accesses", "400", "--out", str(out)])
        assert code == 0
        assert "OK (models agree" in capsys.readouterr().out
        from repro.oracle import validate_report

        report = validate_report(json.loads(out.read_text()))
        assert report["divergence"] is None
        assert report["checked_accesses"] == 400

    def test_mutant_diverges_and_shrinks(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["diff", "lbm", "--config", "oracle-small",
                     "--accesses", "2000", "--mutant", "drop-lr-return",
                     "--shrink", "--out", str(out)])
        assert code == 1
        stdout = capsys.readouterr().out
        assert "DIVERGED" in stdout
        assert "shrunk to" in stdout
        report = json.loads(out.read_text())
        assert report["mutant"] == "drop-lr-return"
        assert 1 <= len(report["shrunk"]["accesses"]) <= 50

    def test_report_is_byte_reproducible(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main(["diff", "cfd", "--config", "oracle-small",
                         "--seed", "3", "--accesses", "300",
                         "--out", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_trace_out_records_divergence_event(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        code = main(["diff", "lbm", "--config", "oracle-small",
                     "--accesses", "200", "--mutant", "probe-order",
                     "--trace-out", str(trace_file)])
        assert code == 1
        trace = json.loads(trace_file.read_text())
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "oracle.divergence" in names

    def test_unknown_config_exits_two(self, capsys):
        assert main(["diff", "lbm", "--config", "nope"]) == 2
        assert "unknown config" in capsys.readouterr().err

    def test_non_twopart_config_exits_two(self, capsys):
        assert main(["diff", "lbm", "--config", "baseline"]) == 2
        assert "two-part" in capsys.readouterr().err


class TestPredictCommand:
    def test_prediction_prints_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "prediction.json"
        code = main(["predict", "bfs", "C1", "--trace-length", "1200",
                     "--json", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "IPC" in stdout and "via" in stdout
        prediction = json.loads(out.read_text())
        assert prediction["benchmark"] == "bfs"
        assert prediction["config"] == "C1"
        assert 0.0 <= prediction["l2_hit_rate"] <= 1.0

    def test_compare_prints_relative_errors(self, capsys):
        code = main(["predict", "nn", "C2", "--trace-length", "1200",
                     "--compare"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "vs trace-driven engine" in stdout
        assert "rel err" in stdout

    def test_cache_dir_is_reused(self, tmp_path, capsys):
        args = ["predict", "kmeans", "C1", "--trace-length", "900",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run answers from the cache
        assert capsys.readouterr().out == first
        assert any(tmp_path.iterdir())  # anchors/features were persisted

    def test_unknown_config_exits_two(self, capsys):
        assert main(["predict", "bfs", "C9"]) == 2
        assert "C9" in capsys.readouterr().err

    def test_submit_predict_usage_errors(self, capsys):
        assert main(["submit", "--predict"]) == 2
        assert "BENCHMARK CONFIG" in capsys.readouterr().err
        assert main(["submit", "--predict", "bfs", "C1",
                     "--engine", "soa"]) == 2
        assert "engine-independent" in capsys.readouterr().err
