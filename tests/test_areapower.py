"""Tests for the CACTI-like area/power model."""

import pytest
from hypothesis import given, strategies as st

from repro.areapower import (
    CacheEnergyModel,
    SRAMArrayModel,
    STTDataArrayModel,
    TECH_32NM,
    TECH_40NM,
    TECH_45NM,
    TechnologyNode,
    WireModel,
)
from repro.errors import ConfigurationError, GeometryError
from repro.sttram.retention import retention_catalogue
from repro.units import KB, MB

CAT = retention_catalogue()


class TestTechnology:
    def test_40nm_feature_size(self):
        assert TECH_40NM.feature_size == pytest.approx(40e-9)

    def test_scaling_shrinks_area(self):
        assert TECH_32NM.sram_cell_area < TECH_40NM.sram_cell_area

    def test_scaling_grows_leakage_per_cell_on_shrink(self):
        """The paper's motivation: leakage worsens with each node."""
        assert TECH_32NM.sram_cell_leakage > TECH_40NM.sram_cell_leakage

    def test_older_node_leaks_less(self):
        assert TECH_45NM.sram_cell_leakage < TECH_40NM.sram_cell_leakage

    def test_rejects_bad_feature_size(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode(name="bad", feature_size=0.0, vdd=1.0)

    def test_leakage_per_byte_is_8x_cell(self):
        assert TECH_40NM.sram_leakage_per_byte() == pytest.approx(
            8 * TECH_40NM.sram_cell_leakage
        )


class TestWireModel:
    def test_htree_length_grows_with_area(self):
        wire = WireModel()
        assert wire.htree_length_mm(4e-6) == pytest.approx(2.0)

    def test_delay_scales_with_sqrt_area(self):
        wire = WireModel()
        assert wire.delay(4e-6) == pytest.approx(2 * wire.delay(1e-6))

    def test_energy_scales_with_bits(self):
        wire = WireModel()
        assert wire.energy(1e-6, 2048) == pytest.approx(2 * wire.energy(1e-6, 1024))

    def test_rejects_negative_bits(self):
        with pytest.raises(ConfigurationError):
            WireModel().energy(1e-6, -1)


class TestSRAMArray:
    def test_leakage_scales_with_capacity(self):
        small = SRAMArrayModel(capacity_bytes=128 * KB, access_bits=2048)
        large = SRAMArrayModel(capacity_bytes=512 * KB, access_bits=2048)
        assert large.leakage_power == pytest.approx(4 * small.leakage_power)

    def test_bigger_array_higher_access_energy(self):
        small = SRAMArrayModel(capacity_bytes=128 * KB, access_bits=2048)
        large = SRAMArrayModel(capacity_bytes=2 * MB, access_bits=2048)
        assert large.read_energy > small.read_energy

    def test_write_energy_exceeds_read(self):
        arr = SRAMArrayModel(capacity_bytes=384 * KB, access_bits=2048)
        assert arr.write_energy > arr.read_energy

    def test_latency_grows_with_capacity(self):
        small = SRAMArrayModel(capacity_bytes=64 * KB, access_bits=2048)
        large = SRAMArrayModel(capacity_bytes=4 * MB, access_bits=2048)
        assert large.access_latency > small.access_latency

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            SRAMArrayModel(capacity_bytes=0, access_bits=8)

    @given(st.integers(min_value=1, max_value=64))
    def test_area_linear_in_capacity(self, factor):
        base = SRAMArrayModel(capacity_bytes=16 * KB, access_bits=512)
        scaled = SRAMArrayModel(capacity_bytes=16 * KB * factor, access_bits=512)
        assert scaled.area == pytest.approx(base.area * factor)


class TestSTTDataArray:
    def test_density_about_4x_vs_sram(self):
        sram = SRAMArrayModel(capacity_bytes=384 * KB, access_bits=2048)
        stt = STTDataArrayModel(
            capacity_bytes=384 * KB, line_size_bytes=256, level=CAT["10year"]
        )
        assert 3.5 < sram.area / stt.area < 4.5

    def test_leakage_far_below_sram(self):
        sram = SRAMArrayModel(capacity_bytes=384 * KB, access_bits=2048)
        stt = STTDataArrayModel(
            capacity_bytes=384 * KB, line_size_bytes=256, level=CAT["hr"]
        )
        assert stt.leakage_power < 0.25 * sram.leakage_power

    def test_write_latency_ordering_by_retention(self):
        lr = STTDataArrayModel(192 * KB, 256, CAT["lr"])
        hr = STTDataArrayModel(192 * KB, 256, CAT["hr"])
        ny = STTDataArrayModel(192 * KB, 256, CAT["10year"])
        assert lr.write_latency < hr.write_latency < ny.write_latency

    def test_write_energy_ordering_by_retention(self):
        lr = STTDataArrayModel(192 * KB, 256, CAT["lr"])
        ny = STTDataArrayModel(192 * KB, 256, CAT["10year"])
        assert lr.write_energy < ny.write_energy

    def test_write_dominates_read(self):
        arr = STTDataArrayModel(384 * KB, 256, CAT["hr"])
        assert arr.write_energy > 2 * arr.read_energy
        assert arr.write_latency > arr.read_latency


class TestCacheEnergyModel:
    def make_sram(self, capacity=384 * KB, assoc=8):
        return CacheEnergyModel(capacity, assoc, 256)

    def make_stt(self, capacity=1536 * KB, assoc=8, level="10year", extra=0):
        return CacheEnergyModel(
            capacity, assoc, 256,
            sram_data=False, retention_level=CAT[level], extra_status_bits=extra,
        )

    def test_geometry_validation(self):
        with pytest.raises(GeometryError):
            CacheEnergyModel(384 * KB + 1, 8, 256)

    def test_stt_requires_retention_level(self):
        with pytest.raises(GeometryError):
            CacheEnergyModel(384 * KB, 8, 256, sram_data=False)

    def test_4x_stt_fits_in_sram_area(self):
        """The paper's premise: a 4x larger STT L2 in the same area."""
        sram = self.make_sram()
        stt = self.make_stt(capacity=4 * 384 * KB)
        assert stt.area <= sram.area * 1.10  # tags add a little

    def test_leakage_gap(self):
        sram = self.make_sram()
        stt = self.make_stt(capacity=4 * 384 * KB)
        assert stt.leakage_power < 0.6 * sram.leakage_power

    def test_stt_write_energy_exceeds_sram(self):
        """Even relaxed STT writes cost more than SRAM writes (the paper
        says exactly this)."""
        sram = self.make_sram()
        lr = self.make_stt(capacity=192 * KB, assoc=2, level="lr")
        assert lr.write_hit_energy > sram.write_hit_energy * 1.2

    def test_extra_status_bits_grow_tags(self):
        plain = self.make_stt()
        counters = self.make_stt(extra=6)
        assert counters.tag_record_bits == plain.tag_record_bits + 6
        assert counters.area > plain.area

    def test_fill_energy_at_least_write_hit(self):
        model = self.make_stt()
        assert model.fill_energy >= model.write_hit_energy * 0.9

    def test_write_latency_exceeds_read_for_stt(self):
        model = self.make_stt()
        assert model.write_latency > model.read_latency

    def test_sram_latencies_equal(self):
        model = self.make_sram()
        assert model.read_latency == pytest.approx(model.write_latency)

    def test_report_str_mentions_technology(self):
        report = self.make_stt(level="hr").report()
        assert "STT-RAM[hr]" in str(report)
        assert "40nm" in str(report)

    def test_report_fields_positive(self):
        report = self.make_sram().report()
        assert report.area_m2 > 0
        assert report.leakage_w > 0
        assert report.read_hit_energy_j > 0

    def test_seven_way_hr_geometry_from_table2(self):
        """C1's HR part: 1344KB 7-way 256B lines must factor cleanly."""
        model = CacheEnergyModel(
            1344 * KB, 7, 256, sram_data=False, retention_level=CAT["hr"]
        )
        assert model.num_lines == 1344 * KB // 256
