"""Tests for the WWS monitor, migration buffers, search selector and
retention counters."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.block import CacheBlock
from repro.core.buffers import MigrationBuffer
from repro.core.monitor import WWSMonitor
from repro.core.retention_counter import RetentionCounterSpec
from repro.core.search import SearchSelector
from repro.errors import ConfigurationError
from repro.units import US


class TestWWSMonitor:
    def make_block(self, writes):
        block = CacheBlock()
        block.fill(0x1, now=0.0)
        block.write_count = writes
        return block

    def test_threshold_one_migrates_on_rewrite(self):
        monitor = WWSMonitor(threshold=1)
        assert not monitor.should_migrate(self.make_block(0))
        assert monitor.should_migrate(self.make_block(1))

    def test_threshold_three(self):
        monitor = WWSMonitor(threshold=3)
        assert not monitor.should_migrate(self.make_block(2))
        assert monitor.should_migrate(self.make_block(3))

    def test_threshold_one_is_free(self):
        assert WWSMonitor(threshold=1).is_free
        assert not WWSMonitor(threshold=2).is_free

    def test_stats_track_rate(self):
        monitor = WWSMonitor(threshold=1)
        monitor.should_migrate(self.make_block(0))
        monitor.should_migrate(self.make_block(5))
        assert monitor.stats.writes_observed == 2
        assert monitor.stats.migration_rate == pytest.approx(0.5)

    def test_threshold_must_fit_counter(self):
        with pytest.raises(ConfigurationError):
            WWSMonitor(threshold=4, counter_bits=2)  # max count is 3

    def test_threshold_15_fits_4_bits(self):
        monitor = WWSMonitor(threshold=15, counter_bits=4)
        assert monitor.saturation == 15

    def test_rejects_zero_threshold(self):
        with pytest.raises(ConfigurationError):
            WWSMonitor(threshold=0)


class TestMigrationBuffer:
    def test_push_and_drain(self):
        buf = MigrationBuffer(4, drain_service_time=10e-9)
        assert buf.push(0x100, True, now=0.0)
        assert len(buf) == 1
        assert buf.drain_ready(now=5e-9) == []
        assert buf.drain_ready(now=20e-9) == [(0x100, True)]
        assert len(buf) == 0

    def test_serialized_drain_port(self):
        buf = MigrationBuffer(4, drain_service_time=10e-9)
        buf.push(0x100, True, now=0.0)
        buf.push(0x200, False, now=0.0)
        # second entry waits for the first drain: ready at 20ns
        assert buf.drain_ready(now=15e-9) == [(0x100, True)]
        assert buf.drain_ready(now=25e-9) == [(0x200, False)]

    def test_overflow_returns_false(self):
        buf = MigrationBuffer(1, drain_service_time=1.0)
        assert buf.push(0x100, True, now=0.0)
        assert not buf.push(0x200, True, now=0.0)
        assert buf.stats.overflows == 1

    def test_force_pop(self):
        buf = MigrationBuffer(1, drain_service_time=1.0)
        buf.push(0x100, True, now=0.0)
        assert buf.force_pop() == (0x100, True)
        assert len(buf) == 0

    def test_force_pop_empty_raises(self):
        buf = MigrationBuffer(1, drain_service_time=1.0)
        with pytest.raises(ConfigurationError):
            buf.force_pop()

    def test_drain_all(self):
        buf = MigrationBuffer(4, drain_service_time=1.0)
        buf.push(0x100, True, now=0.0)
        buf.push(0x200, False, now=0.0)
        assert buf.drain_all() == [(0x100, True), (0x200, False)]

    def test_contains_and_pending(self):
        buf = MigrationBuffer(4, drain_service_time=1.0)
        buf.push(0x100, True, now=0.0)
        assert buf.contains(0x100)
        assert not buf.contains(0x200)
        assert buf.pending() == [0x100]

    def test_peak_occupancy(self):
        buf = MigrationBuffer(4, drain_service_time=1.0)
        for i in range(3):
            buf.push(i * 256, False, now=0.0)
        assert buf.stats.peak_occupancy == 3

    @given(st.lists(st.booleans(), min_size=1, max_size=60))
    def test_occupancy_never_exceeds_capacity(self, dirties):
        buf = MigrationBuffer(5, drain_service_time=1.0)
        for i, dirty in enumerate(dirties):
            if buf.full:
                buf.force_pop()
            buf.push(i * 256, dirty, now=0.0)
            assert len(buf) <= 5


class TestSearchSelector:
    def test_probe_orders(self):
        selector = SearchSelector()
        assert selector.probe_order(is_write=True) == ("lr", "hr")
        assert selector.probe_order(is_write=False) == ("hr", "lr")

    def test_sequential_first_hit_one_probe(self):
        selector = SearchSelector(sequential=True)
        assert selector.record(is_write=True, hit_part="lr") == 1
        assert selector.record(is_write=False, hit_part="hr") == 1

    def test_sequential_second_hit_two_probes(self):
        selector = SearchSelector(sequential=True)
        assert selector.record(is_write=True, hit_part="hr") == 2
        assert selector.record(is_write=False, hit_part="lr") == 2

    def test_sequential_miss_two_probes(self):
        selector = SearchSelector(sequential=True)
        assert selector.record(is_write=False, hit_part="miss") == 2

    def test_parallel_always_two_probes(self):
        selector = SearchSelector(sequential=False)
        assert selector.record(is_write=True, hit_part="lr") == 2
        assert selector.record(is_write=False, hit_part="miss") == 2

    def test_latency_factor(self):
        seq = SearchSelector(sequential=True)
        par = SearchSelector(sequential=False)
        assert seq.latency_factor(2) == 2
        assert par.latency_factor(2) == 1

    def test_first_hit_rate(self):
        selector = SearchSelector()
        selector.record(True, "lr")
        selector.record(True, "hr")
        assert selector.stats.first_hit_rate == pytest.approx(0.5)

    def test_rejects_unknown_part(self):
        with pytest.raises(ConfigurationError):
            SearchSelector().record(True, "l3")


class TestRetentionCounterSpec:
    def test_paper_geometry(self):
        lr = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert lr.states == 16
        assert lr.tick_s == pytest.approx(2.5 * US)

    def test_count_saturates(self):
        spec = RetentionCounterSpec(bits=2, retention_s=40e-3)
        assert spec.count_for_age(1.0) == 3

    def test_count_zero_for_fresh_write(self):
        spec = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert spec.count_for_age(0.0) == 0
        assert spec.count_for_age(-1.0) == 0

    def test_needs_refresh_window(self):
        spec = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert not spec.needs_refresh(30 * US)
        assert spec.needs_refresh(38 * US)
        assert not spec.needs_refresh(41 * US)  # already expired

    def test_expired(self):
        spec = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert spec.expired(40 * US)
        assert not spec.expired(39 * US)

    def test_refresh_age_two_ticks_before_expiry(self):
        spec = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert spec.refresh_age_s == pytest.approx(35 * US)

    def test_refresh_age_degenerate_one_bit(self):
        spec = RetentionCounterSpec(bits=1, retention_s=40 * US)
        assert spec.refresh_age_s == pytest.approx(20 * US)

    def test_tick_frequency(self):
        spec = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert spec.tick_frequency_hz == pytest.approx(1 / (2.5 * US))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            RetentionCounterSpec(bits=0, retention_s=1.0)
        with pytest.raises(ConfigurationError):
            RetentionCounterSpec(bits=4, retention_s=0.0)

    @given(st.floats(min_value=0, max_value=1e-3))
    def test_count_monotone_in_age(self, age):
        spec = RetentionCounterSpec(bits=4, retention_s=40 * US)
        assert spec.count_for_age(age) <= spec.count_for_age(age + 1e-6)
