"""Tests for the single-array relaxed-retention comparator."""

import pytest

from repro.config import L2Config, L2PartConfig
from repro.core import RelaxedUniformL2, build_l2
from repro.errors import ConfigurationError
from repro.units import KB, MS, US


def make_relaxed(retention=1 * MS, capacity=32 * KB, assoc=4):
    return RelaxedUniformL2(capacity, assoc, 256, retention_s=retention)


class TestBasicBehaviour:
    def test_miss_then_hit(self):
        l2 = make_relaxed()
        assert not l2.access(0x1000, False, now=1e-9).hit
        assert l2.access(0x1000, False, now=2e-9).hit

    def test_write_energy_cheaper_than_10year(self):
        from repro.core import UniformL2

        relaxed = make_relaxed()
        naive = UniformL2(32 * KB, 4, 256, technology="stt")
        assert relaxed.model.write_hit_energy < naive.model.write_hit_energy

    def test_rejects_bad_retention(self):
        with pytest.raises(ConfigurationError):
            make_relaxed(retention=0.0)


class TestRefreshBehaviour:
    def test_dirty_line_refreshed_in_window(self):
        l2 = make_relaxed(retention=1 * MS)
        l2.access(0x1000, True, now=1e-9)
        # advance into the refresh window with activity so sweeps run
        now = 1e-9
        for _ in range(10):
            now += 0.2 * MS
            l2.access(0x9000, False, now=now)
        assert l2.refresh_writes > 0
        assert l2.access(0x1000, False, now=now + 1e-9).hit

    def test_clean_line_invalidated_not_refreshed(self):
        l2 = make_relaxed(retention=1 * MS)
        l2.access(0x1000, False, now=1e-9)  # clean fill
        now = 1e-9
        for _ in range(10):
            now += 0.2 * MS
            l2.access(0x9000, False, now=now)
        assert l2.expiry_invalidations > 0
        assert not l2.array.probe(0x1000)

    def test_expired_line_detected_on_access(self):
        l2 = make_relaxed(retention=100 * US)
        l2.access(0x1000, True, now=1e-9)
        result = l2.access(0x1000, False, now=1.0)  # long after expiry
        assert not result.hit

    def test_refresh_energy_accounted(self):
        l2 = make_relaxed(retention=1 * MS)
        l2.access(0x1000, True, now=1e-9)
        now = 1e-9
        for _ in range(10):
            now += 0.2 * MS
            l2.access(0x9000, False, now=now)
        assert l2.energy.refresh_j > 0


class TestComparatorContrast:
    def test_twopart_refreshes_less_than_relaxed_at_lr_retention(self):
        """The two-part design's point: refresh-hungry cells are confined
        to the small LR part, so uniform-relaxed at the *same* short
        retention refreshes far more."""
        from repro.core import TwoPartSTTL2

        def drive(l2):
            now = 0.0
            # dirty a 40-line working set (two writes each, so the
            # two-part design migrates them into LR)...
            for _ in range(2):
                for k in range(40):
                    now += 2e-8
                    l2.access(k * 256, is_write=True, now=now)
            # ...then 60us of reads elsewhere: the dirty lines sit idle
            # across several retention windows while sweeps keep running
            for i in range(3000):
                now += 2e-8
                l2.access(0x100000 + (i % 50) * 256, is_write=False, now=now)
            return l2

        relaxed = drive(RelaxedUniformL2(40 * KB, 5, 256, retention_s=40 * US))
        twopart = drive(TwoPartSTTL2(32 * KB, 4, 8 * KB, 2,
                                     lr_retention_s=40 * US))
        assert twopart.data_losses == 0 and relaxed.data_losses == 0
        assert 0 < twopart.refresh_writes < relaxed.refresh_writes

    def test_factory_builds_relaxed_kind(self):
        config = L2Config(
            kind="stt-relaxed",
            main=L2PartConfig(1536 * KB, 8),
            hr_retention_s=40e-3,
        )
        l2 = build_l2(config)
        assert isinstance(l2, RelaxedUniformL2)
        assert l2.spec.retention_s == pytest.approx(40e-3)

    def test_area_similar_to_naive_stt(self):
        from repro.core import UniformL2

        relaxed = RelaxedUniformL2(1536 * KB, 8, 256)
        naive = UniformL2(1536 * KB, 8, 256, technology="stt")
        assert relaxed.area == pytest.approx(naive.area, rel=0.02)

    def test_dirty_lines_counted(self):
        l2 = make_relaxed()
        l2.access(0x1000, True, now=1e-9)
        assert l2.dirty_lines() == 1
