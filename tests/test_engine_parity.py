"""Cross-engine parity gates: ``soa`` must be byte-identical to ``object``.

The SoA engine (``repro.engine``, see docs/engine.md) re-implements the
replay hot path over flat vectors; its entire claim to correctness is that
no observable output changes.  These tests enforce that claim three ways:

* **Pinned bench scenarios** — every scenario in the committed replay
  benchmark (``repro.benchmarks.PINNED_SCENARIOS`` + ``QUICK_SCENARIOS``)
  is run under both engines and the full canonical
  :class:`~repro.gpu.metrics.SimulationResult` dicts, their SHA-256
  digests, and the component counter surfaces must match exactly.
* **Randomized pressure profiles** — seeded workloads on the tiny
  ``oracle-small`` two-part config (capacity pressure ⇒ migrations,
  buffer traffic and refresh sweeps within tens of accesses) are replayed
  through both engines and through the oracle's lockstep runner with the
  SoA L2 as the DUT.
* **Refresh-sweep decisions** — both engines' refresh engines must emit
  identical action lists (same lines refreshed/expired/dropped, in the
  same order) on a shared access-and-maintenance schedule.

Engine selection itself (fallbacks, explicit-request errors) is covered at
the bottom; the regression *speed* gate lives in ``scripts/bench_replay.py``,
not here — tier-1 only proves equivalence.
"""

import random

import pytest

from repro.benchmarks import (
    PINNED_SCENARIOS,
    QUICK_SCENARIOS,
    all_configs,
    result_digest,
)
from repro.engine import ENGINES, make_simulator, resolve_engine
from repro.engine.soa_l2 import SoaTwoPartL2
from repro.engine.soa_sim import SoaGPUSimulator
from repro.errors import ConfigurationError
from repro.gpu.simulator import GPUSimulator
from repro.io import simulation_result_to_dict
from repro.oracle import (
    dut_counters,
    l2_kwargs_from_config,
    make_pair,
    pressure_config,
    run_diff,
)
from repro.workloads import build_workload

ALL_SCENARIOS = tuple(PINNED_SCENARIOS) + tuple(QUICK_SCENARIOS)


def _run(scenario_workload, config, trace_length, seed, engine):
    """One fresh simulation; returns (result, simulator)."""
    workload = build_workload(
        scenario_workload,
        num_accesses=trace_length,
        num_sms=config.num_sms,
        seed=seed,
    )
    simulator = make_simulator(config, workload, engine=engine)
    return simulator.run(), simulator


def _counter_surface(simulator):
    """Every component counter the experiments or metrics layer can read."""
    surface = {
        "banks": simulator.banks.stats,
        "dram": simulator.dram.stats,
    }
    for index, l1 in enumerate(simulator.l1s):
        surface[f"l1.{index}.array"] = l1.array.stats
        surface[f"l1.{index}.gpu"] = l1.gpu_stats
        surface[f"l1.{index}.mshr"] = l1.mshr.stats
    for index, cache in enumerate(simulator.const_caches):
        surface[f"const.{index}"] = cache.array.stats
    for index, cache in enumerate(simulator.texture_caches):
        surface[f"texture.{index}"] = cache.array.stats
    l2 = simulator.l2
    if hasattr(l2, "lr_array"):
        surface["l2"] = dut_counters(l2)
    else:
        surface["l2.array"] = l2.array.stats
        surface["l2.data_writes"] = l2.data_writes
        surface["l2.energy"] = l2.energy.as_dict()
    return surface


@pytest.mark.parametrize(
    "scenario", ALL_SCENARIOS, ids=lambda s: s.key.replace("/", "-")
)
def test_pinned_scenarios_are_engine_invariant(scenario):
    """Both engines produce byte-identical results on every pinned scenario."""
    config = all_configs()[scenario.config]
    obj_result, obj_sim = _run(
        scenario.workload, config, scenario.trace_length, scenario.seed,
        "object",
    )
    soa_result, soa_sim = _run(
        scenario.workload, config, scenario.trace_length, scenario.seed,
        "soa",
    )
    assert isinstance(soa_sim, SoaGPUSimulator)
    assert simulation_result_to_dict(obj_result) == \
        simulation_result_to_dict(soa_result)
    assert result_digest(obj_result) == result_digest(soa_result)
    assert _counter_surface(obj_sim) == _counter_surface(soa_sim)


@pytest.mark.parametrize("profile", ["bfs", "backprop", "stencil"])
@pytest.mark.parametrize("seed", [0, 1])
def test_pressure_profiles_are_engine_invariant(profile, seed):
    """Randomized workloads on the tiny two-part config: heavy migration
    and refresh traffic, still byte-identical across engines."""
    config = pressure_config()
    obj_result, obj_sim = _run(profile, config, 4000, seed, "object")
    soa_result, soa_sim = _run(profile, config, 4000, seed, "soa")
    assert simulation_result_to_dict(obj_result) == \
        simulation_result_to_dict(soa_result)
    assert _counter_surface(obj_sim) == _counter_surface(soa_sim)


@pytest.mark.parametrize("profile", ["bfs", "stencil"])
def test_soa_l2_survives_the_lockstep_oracle(profile):
    """The SoA two-part L2 as DUT against the naive reference: zero
    divergence on per-access outcomes, counters and refresh decisions."""
    report = run_diff(
        profile, pressure_config(), seed=3, accesses=1500, engine="soa"
    )
    assert report["engine"] == "soa"
    assert report["divergence"] is None


def test_refresh_sweep_decisions_match():
    """Both refresh engines act on the same lines in the same order."""
    kwargs = l2_kwargs_from_config(pressure_config().l2)
    from repro.core.twopart import TwoPartSTTL2

    obj = TwoPartSTTL2(**kwargs)
    soa = SoaTwoPartL2(**kwargs)
    rng = random.Random(11)
    now = 0.0
    sweeps = 0
    for _ in range(2500):
        now += 2e-6
        address = rng.randrange(0, 1 << 16) & ~(kwargs["line_size"] - 1)
        is_write = rng.random() < 0.6
        obj_res = obj.access(address, is_write, now)
        soa_res = soa.access(address, is_write, now)
        assert (obj_res.hit, obj_res.part, obj_res.latency_s,
                obj_res.energy_j, obj_res.dram_writebacks) == \
            (soa_res.hit, soa_res.part, soa_res.latency_s,
             soa_res.energy_j, soa_res.dram_writebacks)
        obj_actions = obj.refresh_engine.last_actions
        soa_actions = soa.refresh_engine.last_actions
        if obj_actions is not None or soa_actions is not None:
            assert obj_actions is not None and soa_actions is not None
            assert obj_actions.as_dict() == soa_actions.as_dict()
            sweeps += 1
    assert sweeps > 0, "schedule never triggered a refresh sweep"
    assert dut_counters(obj) == dut_counters(soa)


def test_lockstep_pair_accepts_engine_and_rejects_soa_mutants():
    config = pressure_config()
    dut, _ref = make_pair(config, engine="soa")
    assert isinstance(dut, SoaTwoPartL2)
    from repro.errors import OracleError

    with pytest.raises(OracleError):
        make_pair(config, mutant="probe-order", engine="soa")
    with pytest.raises(OracleError):
        make_pair(config, engine="vectorized")


def test_engine_resolution_fallbacks_and_errors():
    config = all_configs()["C1"]

    class _Tracer:
        enabled = True

    assert resolve_engine(config) == "soa"
    assert resolve_engine(config, engine="object") == "object"
    assert resolve_engine(config, tracer=_Tracer()) == "object"
    assert resolve_engine(config, deferred_l1_fills=False) == "object"
    assert resolve_engine(config, invariant_checker=object()) == "object"
    with pytest.raises(ConfigurationError):
        resolve_engine(config, engine="soa", tracer=_Tracer())
    with pytest.raises(ConfigurationError):
        resolve_engine(config, engine="no-such-engine")
    assert set(ENGINES) == {"object", "soa", "sharded"}
    with pytest.raises(ConfigurationError):
        resolve_engine(config, engine="sharded", tracer=_Tracer())


def test_make_simulator_returns_the_resolved_engine():
    config = all_configs()["C1"]
    workload = build_workload(
        "bfs", num_accesses=200, num_sms=config.num_sms, seed=0
    )
    assert isinstance(
        make_simulator(config, workload, engine="soa"), SoaGPUSimulator
    )
    explicit = make_simulator(config, workload, engine="object")
    assert type(explicit) is GPUSimulator
