"""Cross-module integration tests: full stack, public API, CLI."""

import pytest

from repro import (
    all_configs,
    baseline_sram,
    build_l2,
    build_workload,
    config_c1,
    retention_catalogue,
    simulate,
)
from repro.cli import main as cli_main
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import replay_through_l1


class TestPublicAPI:
    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        workload = build_workload("bfs", num_accesses=5000)
        base = simulate(baseline_sram(), workload)
        c1 = simulate(config_c1(), workload)
        assert c1.speedup_over(base) > 0
        assert c1.total_power_ratio(base) > 0

    def test_version_exposed(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None


class TestFullStackConsistency:
    @pytest.fixture(scope="class")
    def run(self):
        wl = build_workload("kmeans", num_accesses=6000, seed=11)
        from repro.gpu.simulator import GPUSimulator

        sim = GPUSimulator(config_c1(), wl)
        result = sim.run()
        return sim, result

    def test_l2_requests_match_l2_stats(self, run):
        sim, result = run
        assert sim.l2.stats.accesses == result.l2_requests

    def test_l1_traffic_conservation(self, run):
        """Every trace access reaches exactly one L1."""
        sim, result = run
        total_l1 = sum(l1.array.stats.accesses for l1 in sim.l1s)
        assert total_l1 == sim.workload.num_accesses

    def test_l2_reads_are_l1_misses_plus_writebacks(self, run):
        sim, result = run
        # L2 reads == L1 fetch requests (read misses incl. local write
        # misses, which fetch before writing)
        assert result.l2_reads <= sim.workload.num_accesses
        assert result.l2_reads > 0

    def test_dram_traffic_not_larger_than_l2_misses_plus_writebacks(self, run):
        sim, result = run
        l2_misses = sim.l2.stats.misses
        assert result.dram_accesses <= l2_misses + result.dram_writebacks + sim.l2.dirty_lines() + result.l2_requests

    def test_twopart_no_line_in_both_parts(self, run):
        sim, _ = run
        l2 = sim.l2
        assert isinstance(l2, TwoPartSTTL2)
        lr_lines = {
            l2.lr_array.mapper.rebuild(b.tag, s)
            for s, _, b in l2.lr_array.iter_blocks() if b.valid
        }
        hr_lines = {
            l2.hr_array.mapper.rebuild(b.tag, s)
            for s, _, b in l2.hr_array.iter_blocks() if b.valid
        }
        assert not (lr_lines & hr_lines)

    def test_energy_ledger_consistent(self, run):
        sim, result = run
        assert result.l2_dynamic_energy_j == pytest.approx(sim.l2.energy.total_j)


class TestReplayHelper:
    def test_replay_produces_l2_traffic(self):
        wl = build_workload("bfs", num_accesses=2000, seed=0)
        seen = []
        replay_through_l1(wl, lambda a, w, n: seen.append((a, w)))
        assert len(seen) > 0
        # write-throughs must appear (bfs writes a lot)
        assert any(w for _, w in seen)

    def test_replay_matches_simulator_l2_demand(self):
        """replay_through_l1 and GPUSimulator see identical L2 streams."""
        wl = build_workload("nn", num_accesses=2000, seed=0)
        stream_a = []
        replay_through_l1(wl, lambda a, w, n: stream_a.append((a, w)))

        from repro.gpu.simulator import GPUSimulator

        captured = []

        class Recorder(TwoPartSTTL2):
            def access(self, address, is_write, now):
                captured.append((address, is_write))
                return super().access(address, is_write, now)

        l2 = Recorder(32 * 1024, 4, 8 * 1024, 2)
        # with immediate L1 fills both paths see identical L2 streams; the
        # default deferred mode additionally coalesces in-flight misses
        GPUSimulator(baseline_sram(), wl, l2=l2, deferred_l1_fills=False).run()
        assert stream_a == captured


class TestBaselineVsTwoPartEquivalence:
    def test_hit_rates_similar_for_same_capacity(self):
        """A two-part L2 must not lose capacity to the split itself."""
        wl = build_workload("kmeans", num_accesses=6000, seed=2)
        uniform = build_l2(all_configs()["stt-baseline"].l2)
        twopart = build_l2(all_configs()["C1"].l2)
        replay_through_l1(wl, uniform.access)
        wl2 = build_workload("kmeans", num_accesses=6000, seed=2)
        replay_through_l1(wl2, twopart.access)
        assert twopart.stats.hit_rate == pytest.approx(
            uniform.stats.hit_rate, abs=0.05
        )


class TestCLI:
    def test_configs_command(self, capsys):
        assert cli_main(["configs"]) == 0
        out = capsys.readouterr().out
        assert "C1" in out and "baseline" in out

    def test_suite_command(self, capsys):
        assert cli_main(["suite"]) == 0
        assert "bfs" in capsys.readouterr().out

    def test_simulate_command(self, capsys):
        code = cli_main(["simulate", "nn", "C1", "--trace-length", "800"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "LR write share" in out

    def test_simulate_unknown_config(self, capsys):
        assert cli_main(["simulate", "nn", "C9"]) == 2

    def test_experiments_subset(self, capsys):
        code = cli_main([
            "experiments", "table1", "table2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_experiments_unknown_name(self, capsys):
        assert cli_main(["experiments", "fig99"]) == 2

    def test_retention_catalogue_reachable(self):
        catalogue = retention_catalogue()
        assert set(catalogue) == {"10year", "hr", "lr"}
