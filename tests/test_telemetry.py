"""Tests for the telemetry layer: manifests, cache, content keys."""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.parallel import run_battery
from repro.telemetry import (
    CACHE_SCHEMA_VERSION,
    MANIFEST_SCHEMA_VERSION,
    JobRecord,
    ResultCache,
    RunTelemetry,
    config_fingerprint,
    content_key,
    load_manifest,
)


class TestContentKeys:
    def test_key_is_order_insensitive(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_key_is_value_sensitive(self):
        assert content_key({"a": 1}) != content_key({"a": 2})

    def test_config_fingerprint_stable(self):
        assert config_fingerprint() == config_fingerprint()
        assert len(config_fingerprint()) == 64


class TestResultCache:
    def test_get_put_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"x": 1.5, "rows": [[1, 2]], "s": "txt"}
        key = content_key({"k": "v"})
        assert cache.get(key) is None
        cache.put(key, {"k": "v"}, payload)
        assert cache.get(key) == payload
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"k": "v"})
        cache.put(key, {"k": "v"}, {"x": 1})
        cache.path_for(key).write_text("{ not json")
        assert cache.get(key) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = content_key({"k": "v"})
        cache.put(key, {"k": "v"}, {"x": 1})
        entry = json.loads(cache.path_for(key).read_text())
        entry["cache_schema_version"] = CACHE_SCHEMA_VERSION + 1
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None


class TestManifest:
    def _telemetry(self):
        telemetry = RunTelemetry(jobs=2, trace_length=1000, seed=0,
                                 experiments=["fig3"])
        telemetry.record(JobRecord(
            key="k1", kind="fig3", benchmark="nn", trace_length=1000, seed=0,
            experiments=["fig3"], worker=123, wall_time_s=0.5,
            cache_hit=False, counters={"l2_writes": 42},
        ))
        telemetry.record(JobRecord(
            key="k2", kind="fig3", benchmark="bfs", trace_length=1000, seed=0,
            experiments=["fig3"], worker=124, wall_time_s=0.25,
            cache_hit=True,
        ))
        return telemetry

    def test_manifest_schema(self):
        document = self._telemetry().manifest()
        assert document["schema_version"] == MANIFEST_SCHEMA_VERSION
        run = document["run"]
        for field in ("jobs", "cache_dir", "cache_enabled", "trace_length",
                      "seed", "benchmarks", "experiments",
                      "config_fingerprint", "wall_time_s"):
            assert field in run
        totals = document["totals"]
        assert totals == {
            "jobs": 2, "cache_hits": 1, "cache_misses": 1,
            "wall_time_s": pytest.approx(0.75),
        }
        job = document["jobs"][0]
        for field in ("key", "kind", "benchmark", "trace_length", "seed",
                      "experiments", "worker", "wall_time_s", "cache_hit",
                      "counters"):
            assert field in job
        assert job["counters"] == {"l2_writes": 42}

    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        self._telemetry().write(path)
        document = load_manifest(path)
        assert document["totals"]["jobs"] == 2

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ReproError):
            load_manifest(path)

    def test_manifest_is_json_serializable_end_to_end(self, tmp_path):
        """A real battery run produces a loadable manifest."""
        _, telemetry = run_battery(["table1", "fig3"], trace_length=800,
                                   benchmarks=["nn"],
                                   cache_dir=str(tmp_path / "cache"))
        path = tmp_path / "m.json"
        telemetry.write(path)
        document = load_manifest(path)
        assert document["run"]["cache_enabled"] is True
        assert document["totals"]["jobs"] == 2
        kinds = {job["kind"] for job in document["jobs"]}
        assert kinds == {"table1", "fig3"}
