"""Tests for the trace-driven GPU simulator and its IPC/power model."""

import pytest

from repro.config import all_configs, baseline_sram, config_c2
from repro.errors import SimulationError
from repro.gpu.simulator import GPUSimulator, simulate
from repro.workloads import build_workload

TRACE = 4000  # small traces keep the unit tests fast


@pytest.fixture(scope="module")
def bfs_results():
    # bfs needs a longer trace than TRACE for its 1.1 MB hot set to show
    # reuse; 10k keeps the module under a few seconds
    wl = build_workload("bfs", num_accesses=10_000, seed=3)
    return {name: simulate(cfg, wl) for name, cfg in all_configs().items()}


class TestBasicInvariants:
    def test_ipc_positive_and_bounded(self, bfs_results):
        for result in bfs_results.values():
            assert 0 < result.ipc <= 32 * 15

    def test_utilization_bounded(self, bfs_results):
        for result in bfs_results.values():
            assert 0 < result.utilization <= 1.0

    def test_hit_rates_bounded(self, bfs_results):
        for result in bfs_results.values():
            assert 0 <= result.l1_hit_rate <= 1
            assert 0 <= result.l2_hit_rate <= 1

    def test_sim_time_positive(self, bfs_results):
        for result in bfs_results.values():
            assert result.sim_time_s > 0

    def test_power_components_positive(self, bfs_results):
        for result in bfs_results.values():
            assert result.l2_dynamic_power_w > 0
            assert result.l2_leakage_power_w > 0
            assert result.l2_total_power_w == pytest.approx(
                result.l2_dynamic_power_w + result.l2_leakage_power_w
            )

    def test_deterministic(self):
        wl = build_workload("kmeans", num_accesses=1500, seed=5)
        a = simulate(baseline_sram(), wl)
        b = simulate(baseline_sram(), wl)
        assert a.ipc == b.ipc
        assert a.l2_dynamic_energy_j == b.l2_dynamic_energy_j

    def test_bound_by_reported(self, bfs_results):
        for result in bfs_results.values():
            assert result.bound_by in ("latency", "dram-bandwidth", "l2-banks")


class TestPaperShapes:
    """The headline comparisons the reproduction must preserve."""

    def test_c1_beats_baseline_on_cache_friendly(self, bfs_results):
        assert bfs_results["C1"].speedup_over(bfs_results["baseline"]) > 1.1

    def test_c1_at_least_matches_stt_baseline(self, bfs_results):
        assert bfs_results["C1"].ipc >= bfs_results["stt-baseline"].ipc * 0.98

    def test_stt_leakage_far_below_sram(self, bfs_results):
        assert (
            bfs_results["C1"].l2_leakage_power_w
            < 0.6 * bfs_results["baseline"].l2_leakage_power_w
        )

    def test_c2_saves_most_total_power(self, bfs_results):
        base = bfs_results["baseline"]
        ratios = {
            name: bfs_results[name].total_power_ratio(base)
            for name in ("stt-baseline", "C1", "C2", "C3")
        }
        assert ratios["C2"] == min(ratios.values())
        assert ratios["C2"] < ratios["C3"] < ratios["C1"] < ratios["stt-baseline"]

    def test_stt_baseline_dynamic_power_highest(self, bfs_results):
        base = bfs_results["baseline"]
        assert (
            bfs_results["stt-baseline"].dynamic_power_ratio(base)
            > bfs_results["C1"].dynamic_power_ratio(base)
        )

    def test_lr_absorbs_majority_of_writes(self, bfs_results):
        """The LR part must host the WWS for a write-skewed benchmark."""
        c1 = bfs_results["C1"]
        assert c1.lr_write_share is not None and c1.lr_write_share > 0.3

    def test_no_data_losses(self, bfs_results):
        assert bfs_results["C1"].data_losses == 0

    def test_buffer_overflows_rare(self, bfs_results):
        """The paper's worst case write-back overhead is ~1%."""
        assert bfs_results["C1"].buffer_overflow_rate is not None
        assert bfs_results["C1"].buffer_overflow_rate < 0.05

    def test_register_insensitive_benchmark_flat_on_c2(self):
        wl = build_workload("tpacf", num_accesses=TRACE, seed=3)
        base = simulate(baseline_sram(), wl)
        c2 = simulate(config_c2(), wl)
        assert c2.speedup_over(base) == pytest.approx(1.0, abs=0.05)

    def test_c2_occupancy_boost_on_register_limited(self):
        wl = build_workload("mri-gridding", num_accesses=TRACE, seed=3)
        base = simulate(baseline_sram(), wl)
        c2 = simulate(config_c2(), wl)
        assert c2.warps_per_sm > base.warps_per_sm


class TestMetricsHelpers:
    def test_speedup_identity(self, bfs_results):
        base = bfs_results["baseline"]
        assert base.speedup_over(base) == pytest.approx(1.0)

    def test_speedup_zero_baseline_raises(self, bfs_results):
        import dataclasses

        from repro.errors import AnalysisError

        base = bfs_results["baseline"]
        broken = dataclasses.replace(base, ipc=0.0)
        with pytest.raises(AnalysisError, match="baseline IPC"):
            base.speedup_over(broken)

    def test_power_ratio_zero_baseline_names_runs(self, bfs_results):
        import dataclasses

        from repro.errors import AnalysisError

        base = bfs_results["baseline"]
        broken = dataclasses.replace(
            base, l2_dynamic_power_w=0.0, l2_leakage_power_w=0.0
        )
        with pytest.raises(AnalysisError, match="bfs/baseline"):
            base.dynamic_power_ratio(broken)
        with pytest.raises(AnalysisError, match="total power"):
            base.total_power_ratio(broken)

    def test_energy_breakdown_sums(self, bfs_results):
        for result in bfs_results.values():
            breakdown = result.energy_breakdown
            assert breakdown["total_j"] == pytest.approx(
                breakdown["demand_j"] + breakdown["migration_j"]
                + breakdown["refresh_j"] + breakdown["fill_j"]
            )
            assert breakdown["total_j"] == pytest.approx(result.l2_dynamic_energy_j)

    def test_uniform_l2_has_no_twopart_extras(self, bfs_results):
        assert bfs_results["baseline"].lr_write_share is None
        assert bfs_results["baseline"].migrations_to_lr is None


class TestSimulatorValidation:
    def test_rejects_bad_time_dilation(self):
        wl = build_workload("nn", num_accesses=100, seed=0)
        with pytest.raises(SimulationError):
            GPUSimulator(baseline_sram(), wl, time_dilation=0.0)

    def test_rejects_trace_with_too_many_sms(self):
        wl = build_workload("nn", num_accesses=100, num_sms=15, seed=0)
        import dataclasses

        config = dataclasses.replace(baseline_sram(), num_sms=4)
        with pytest.raises(SimulationError):
            GPUSimulator(config, wl).run()

    def test_custom_l2_injection(self):
        from repro.core import UniformL2

        wl = build_workload("nn", num_accesses=500, seed=0)
        l2 = UniformL2(384 * 1024, 8, 256, technology="sram")
        result = GPUSimulator(baseline_sram(), wl, l2=l2).run()
        assert result.l2_requests > 0
        assert l2.stats.accesses == result.l2_requests
