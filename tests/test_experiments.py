"""Tests for the experiment harnesses (small traces, benchmark subsets)."""

import pytest

from repro.experiments import fig3, fig4, fig5, fig6, fig8, table1, table2
from repro.experiments.common import ExperimentResult, geomean
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment

SMALL = 3000
SUBSET = ["bfs", "stencil", "tpacf"]


class TestCommon:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_result_render_contains_name(self):
        result = ExperimentResult("demo", ["a"], [[1]])
        assert "demo" in result.render()

    def test_result_column_and_row(self):
        result = ExperimentResult("demo", ["k", "v"], [["x", 1], ["y", 2]])
        assert result.column("v") == [1, 2]
        assert result.row_for("y") == ["y", 2]

    def test_result_row_missing_raises(self):
        result = ExperimentResult("demo", ["k"], [["x"]])
        with pytest.raises(KeyError):
            result.row_for("z")

    def test_result_csv(self):
        result = ExperimentResult("demo", ["k", "v"], [["x", 1.5]])
        assert result.csv().splitlines()[0] == "k,v"


class TestTable1:
    def test_three_rows(self):
        result = table1.run()
        assert len(result.rows) == 3

    def test_write_energy_ordering(self):
        """Table 1's trend: relaxing retention cuts write energy/latency."""
        result = table1.run()
        energies = result.column("write_energy_pJ_per_line")
        by_level = dict(zip(result.column("level"), energies))
        assert by_level["lr"] < by_level["hr"] < by_level["10year"]

    def test_energy_ratio_extras(self):
        result = table1.run()
        assert result.extras["we_ratio_10year_over_lr"] > 2.0
        assert result.extras["wl_ratio_10year_over_lr"] > 2.0


class TestTable2:
    def test_five_rows(self):
        result = table2.run()
        assert len(result.rows) == 5

    def test_area_equivalence_premise(self):
        """C1 and the STT baseline must fit in ~the SRAM baseline's area."""
        result = table2.run()
        assert result.extras["c1_area_over_sram"] < 1.15
        assert result.extras["stt_area_over_sram"] < 1.15


class TestFig3:
    def test_rows_per_benchmark_plus_gmean(self):
        result = fig3.run(trace_length=SMALL, benchmarks=SUBSET)
        assert len(result.rows) == len(SUBSET) + 1
        assert result.rows[-1][0] == "Gmean"

    def test_bfs_more_skewed_than_stencil(self):
        """The paper's Fig. 3 contrast: irregular vs regular writes."""
        result = fig3.run(trace_length=SMALL, benchmarks=["bfs", "stencil"])
        bfs_cov = result.row_for("bfs")[2]
        stencil_cov = result.row_for("stencil")[2]
        assert bfs_cov > 3 * stencil_cov

    def test_covs_non_negative(self):
        result = fig3.run(trace_length=SMALL, benchmarks=SUBSET)
        for row in result.rows[:-1]:
            assert row[2] >= 0 and row[3] >= 0


class TestFig4:
    def test_th1_is_reference(self):
        result = fig4.run(trace_length=SMALL, benchmarks=["bfs"])
        row = result.row_for("bfs")
        assert row[1] == pytest.approx(1.0)  # lr/hr ratio at TH1
        assert row[5] == pytest.approx(1.0)  # total writes at TH1

    def test_higher_threshold_lower_lr_utilization(self):
        """The paper's Fig. 4: TH1 maximizes LR usage."""
        result = fig4.run(trace_length=SMALL, benchmarks=["bfs", "kmeans"])
        avg = result.row_for("AVG")
        th1, th3, th7, th15 = avg[1:5]
        assert th1 >= th3 >= th7 >= th15

    def test_write_overhead_of_th1_small(self):
        """...while costing almost no extra writes (justifies TH=1)."""
        result = fig4.run(trace_length=SMALL, benchmarks=["bfs", "kmeans"])
        assert result.extras["avg_write_overhead_th1_vs_th15"] < 1.10


class TestFig5:
    def test_normalized_to_full_associativity(self):
        result = fig5.run(trace_length=SMALL, benchmarks=["bfs"])
        row = result.row_for("bfs")
        # every column is a fraction of the fully-associative utilization
        for value in row[1:]:
            assert 0 < value <= 1.05

    def test_higher_associativity_at_least_as_good(self):
        result = fig5.run(trace_length=SMALL, benchmarks=["bfs", "kmeans"])
        gmean_row = result.rows[-1]
        assert gmean_row[1] <= gmean_row[-1] * 1.02  # 1-way <= 16-way

    def test_two_way_close_to_full(self):
        """The paper picks 2-way: nearly fully-associative utilization."""
        result = fig5.run(trace_length=SMALL, benchmarks=SUBSET)
        assert result.extras["two_way_gap_to_full"] < 0.10


class TestFig6:
    def test_fractions_rows(self):
        result = fig6.run(trace_length=SMALL, benchmarks=["bfs"])
        row = result.row_for("bfs")
        fractions = row[1:-1]
        assert sum(fractions) == pytest.approx(1.0, abs=0.01)

    def test_most_rewrites_fast(self):
        """The paper's Fig. 6: most LR rewrites land within ~10 us."""
        result = fig6.run(trace_length=SMALL, benchmarks=["bfs", "kmeans"])
        assert result.extras["avg_fraction_under_10us"] > 0.5

    def test_exact_10us_interval_counts_as_under_10us(self):
        """Boundary regression: an interval of exactly 10e-6 s is <=10us.

        The bucket bounds are exact literals; 10e-6 == 1e-5, so the
        paper's threshold lands in the ``<=10us`` bin, not the next one.
        """
        from repro.analysis.intervals import rewrite_interval_distribution

        distribution = rewrite_interval_distribution([10e-6])
        assert distribution.counts["<=10us"] == 1
        assert distribution.fraction_under(10e-6) == 1.0

    def test_under_10us_includes_the_10us_bucket(self):
        """fig6's under_10us is the cumulative share through <=10us."""
        payload = fig6.compute("bfs", trace_length=SMALL)
        fractions = payload["fractions"]
        expected = fractions["<=1us"] + fractions["<=5us"] + fractions["<=10us"]
        assert payload["under_10us"] == pytest.approx(expected)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        # bfs needs enough trace for its 1.1 MB hot set to show reuse
        return fig8.run(trace_length=10_000, benchmarks=["bfs", "tpacf"])

    def test_row_structure(self, result):
        assert len(result.rows) == 3  # two benchmarks + Gmean
        assert len(result.headers) == 2 + 12

    def test_tpacf_flat(self, result):
        row = result.row_for("tpacf")
        for speedup in row[2:6]:
            assert speedup == pytest.approx(1.0, abs=0.06)

    def test_bfs_gains_on_c1(self, result):
        row = result.row_for("bfs")
        speedup_c1 = row[3]
        assert speedup_c1 > 1.15

    def test_total_power_ordering(self, result):
        """C2 < C3 < C1 < stt-baseline in total L2 power."""
        extras = result.extras
        assert (
            extras["gmean_total_c2"]
            < extras["gmean_total_c3"]
            < extras["gmean_total_c1"]
            < extras["gmean_total_stt"]
        )

    def test_reuse_of_precomputed_results(self):
        sims = fig8.run_simulations(trace_length=2000, benchmarks=["nn"])
        result = fig8.run(results=sims)
        assert result.row_for("nn")


class TestRunner:
    def test_registry(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig8",
            "regions", "scaling", "energy", "variance",
        }

    def test_run_experiment_by_name(self):
        result = run_experiment("table1")
        assert isinstance(result, ExperimentResult)

    def test_run_all_small(self):
        results = run_all(trace_length=1500, benchmarks=["nn"])
        assert set(results) == set(EXPERIMENTS)
