"""Tests for the GPU L1 write policies (the paper's Fig. 1-b)."""

import pytest

from repro.config import L1Config
from repro.gpu.l1 import GPUL1Cache, L2Request


def make_l1():
    return GPUL1Cache(L1Config())


class TestGlobalWrites:
    def test_global_write_miss_is_no_allocate(self):
        l1 = make_l1()
        requests = l1.access(0x1000, is_write=True, is_local=False, now=0.0)
        assert requests == [L2Request("write", 0x1000)]
        assert not l1.array.probe(0x1000)

    def test_global_write_hit_is_write_evict(self):
        l1 = make_l1()
        l1.access(0x1000, is_write=False, is_local=False, now=0.0)  # fill
        assert l1.array.probe(0x1000)
        requests = l1.access(0x1000, is_write=True, is_local=False, now=1e-9)
        assert requests == [L2Request("write", 0x1000)]
        assert not l1.array.probe(0x1000), "write-evict must drop the L1 copy"
        assert l1.gpu_stats.write_evictions == 1

    def test_global_write_never_leaves_dirty_line(self):
        l1 = make_l1()
        for i in range(50):
            l1.access(i * 128, is_write=True, is_local=False, now=i * 1e-9)
        dirty = [b for _, _, b in l1.array.iter_blocks() if b.valid and b.dirty]
        assert dirty == []

    def test_write_through_aligned_to_line(self):
        l1 = make_l1()
        requests = l1.access(0x10AB, is_write=True, is_local=False, now=0.0)
        assert requests[0].address == 0x1080  # 128B alignment


class TestGlobalReads:
    def test_read_miss_fetches(self):
        l1 = make_l1()
        requests = l1.access(0x2000, is_write=False, is_local=False, now=0.0)
        assert requests == [L2Request("fetch", 0x2000)]

    def test_read_hit_generates_no_traffic(self):
        l1 = make_l1()
        l1.access(0x2000, is_write=False, is_local=False, now=0.0)
        requests = l1.access(0x2000, is_write=False, is_local=False, now=1e-9)
        assert requests == []

    def test_hit_rate_tracks(self):
        l1 = make_l1()
        l1.access(0x2000, is_write=False, is_local=False, now=0.0)
        l1.access(0x2000, is_write=False, is_local=False, now=1e-9)
        assert l1.hit_rate == pytest.approx(0.5)


class TestLocalData:
    def test_local_write_allocates_and_fetches(self):
        l1 = make_l1()
        requests = l1.access(0x3000, is_write=True, is_local=True, now=0.0)
        # write-allocate: fetch the line, keep it dirty in L1
        assert L2Request("fetch", 0x3000) in requests
        block = l1.array.block_at(0x3000)
        assert block is not None and block.dirty

    def test_local_write_hit_stays_in_l1(self):
        l1 = make_l1()
        l1.access(0x3000, is_write=True, is_local=True, now=0.0)
        requests = l1.access(0x3000, is_write=True, is_local=True, now=1e-9)
        assert requests == []

    def test_dirty_local_eviction_writes_back(self):
        l1 = make_l1()
        config = l1.config
        sets = l1.array.num_sets
        # fill one set with dirty local lines beyond associativity
        conflicting = [0x100000 + i * sets * config.line_size
                       for i in range(config.associativity + 1)]
        writebacks = []
        for i, addr in enumerate(conflicting):
            for req in l1.access(addr, is_write=True, is_local=True, now=i * 1e-9):
                if req.kind == "writeback":
                    writebacks.append(req.address)
        assert writebacks == [conflicting[0]]
        assert l1.gpu_stats.local_writebacks == 1

    def test_writeback_request_is_write(self):
        assert L2Request("writeback", 0).is_write
        assert L2Request("write", 0).is_write
        assert not L2Request("fetch", 0).is_write


class TestStatsAccounting:
    def test_gpu_stats_partition(self):
        l1 = make_l1()
        l1.access(0x0, False, False, 0.0)
        l1.access(0x0, True, False, 0.0)
        l1.access(0x100, False, True, 0.0)
        l1.access(0x100, True, True, 0.0)
        stats = l1.gpu_stats
        assert stats.global_reads == 1
        assert stats.global_writes == 1
        assert stats.local_reads == 1
        assert stats.local_writes == 1

    def test_array_stats_count_all_demand(self):
        l1 = make_l1()
        l1.access(0x0, False, False, 0.0)
        l1.access(0x0, True, False, 0.0)
        assert l1.array.stats.accesses == 2
