"""Tests for the parallel experiment harness (decompose / execute / merge)."""

import pytest

from repro.errors import ReproError
from repro.experiments import fig8
from repro.experiments.parallel import (
    JobSpec,
    decompose,
    execute_job,
    job_key,
    merge_experiment,
    run_battery,
)
from repro.experiments.runner import EXPERIMENTS, run_all, run_experiment

SMALL = 1000
SUBSET = ["nn", "bfs"]


class TestDecompose:
    def test_one_job_per_benchmark(self):
        specs = decompose("fig3", trace_length=SMALL, benchmarks=SUBSET, seed=0)
        assert [s.benchmark for s in specs] == SUBSET
        assert all(s.kind == "fig3" for s in specs)

    def test_tables_are_single_jobs(self):
        assert decompose("table1") == [JobSpec("table1", None, None, None)]
        assert decompose("table2") == [JobSpec("table2", None, None, None)]

    def test_fig8_regions_variance_share_kind(self):
        fig8_specs = decompose("fig8", SMALL, SUBSET, seed=0)
        regions_specs = decompose("regions", SMALL, SUBSET, seed=0)
        variance_specs = decompose("variance", SMALL, SUBSET, seed=0)
        assert fig8_specs == regions_specs
        # the variance sweep's seed-0 slice is exactly the fig8 job set
        assert [s for s in variance_specs if s.seed == 0] == fig8_specs
        assert {s.seed for s in variance_specs} == {0, 1, 2}

    def test_scaling_uses_its_default_mix(self):
        specs = decompose("scaling", trace_length=SMALL)
        assert [s.benchmark for s in specs] == ["bfs", "stencil"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(ReproError):
            decompose("fig99")

    def test_job_key_depends_on_inputs(self):
        a = job_key(JobSpec("fig3", "nn", SMALL, 0))
        assert a == job_key(JobSpec("fig3", "nn", SMALL, 0))
        assert a != job_key(JobSpec("fig3", "nn", SMALL, 1))
        assert a != job_key(JobSpec("fig3", "bfs", SMALL, 0))
        assert a != job_key(JobSpec("fig4", "nn", SMALL, 0))


class TestSerialParallelEquivalence:
    def test_run_all_jobs4_identical_to_serial(self):
        serial = run_all(trace_length=SMALL, benchmarks=SUBSET)
        parallel = run_all(trace_length=SMALL, benchmarks=SUBSET, jobs=4)
        assert set(serial) == set(EXPERIMENTS)
        for name in EXPERIMENTS:
            assert parallel[name].headers == serial[name].headers, name
            assert parallel[name].rows == serial[name].rows, name
            assert parallel[name].extras == serial[name].extras, name

    def test_run_experiment_jobs_identical(self):
        serial = run_experiment("fig4", trace_length=SMALL, benchmarks=SUBSET)
        parallel = run_experiment("fig4", trace_length=SMALL, benchmarks=SUBSET,
                                  jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.extras == serial.extras

    def test_merge_matches_module_run(self):
        """merge_experiment over execute_job payloads == the module's run()."""
        specs = decompose("fig8", SMALL, SUBSET, seed=0)
        payloads = {spec: execute_job(spec) for spec in specs}
        merged = merge_experiment("fig8", specs, payloads)
        direct = fig8.run(trace_length=SMALL, benchmarks=SUBSET, seed=0)
        assert merged.rows == direct.rows
        assert merged.extras == direct.extras


class TestCache:
    def test_cold_then_warm_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold, tel_cold = run_battery(
            ["fig3", "fig8"], trace_length=SMALL, benchmarks=SUBSET,
            cache_dir=cache_dir,
        )
        assert tel_cold.cache_hits == 0
        assert tel_cold.cache_misses == len(tel_cold.records) > 0

        warm, tel_warm = run_battery(
            ["fig3", "fig8"], trace_length=SMALL, benchmarks=SUBSET,
            cache_dir=cache_dir,
        )
        assert tel_warm.cache_misses == 0
        assert tel_warm.cache_hits == tel_cold.cache_misses
        for name in ("fig3", "fig8"):
            assert warm[name].rows == cold[name].rows
            assert warm[name].extras == cold[name].extras

    def test_no_cache_flag_disables_lookup(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_battery(["fig3"], trace_length=SMALL, benchmarks=["nn"],
                    cache_dir=cache_dir)
        _, telemetry = run_battery(["fig3"], trace_length=SMALL,
                                   benchmarks=["nn"], cache_dir=cache_dir,
                                   use_cache=False)
        assert telemetry.cache_hits == 0
        assert not telemetry.cache_enabled

    def test_different_seed_misses(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_battery(["fig3"], trace_length=SMALL, benchmarks=["nn"], seed=0,
                    cache_dir=cache_dir)
        _, telemetry = run_battery(["fig3"], trace_length=SMALL,
                                   benchmarks=["nn"], seed=7,
                                   cache_dir=cache_dir)
        assert telemetry.cache_hits == 0


class TestBattery:
    def test_shared_jobs_deduplicated(self):
        _, telemetry = run_battery(
            ["fig8", "regions"], trace_length=SMALL, benchmarks=SUBSET,
        )
        # one record per unique job, each owned by both experiments
        assert len(telemetry.records) == len(SUBSET)
        for record in telemetry.records:
            assert sorted(record.experiments) == ["fig8", "regions"]

    def test_rejects_bad_jobs_value(self):
        with pytest.raises(ReproError):
            run_battery(["fig3"], trace_length=SMALL, benchmarks=["nn"], jobs=0)

    def test_counters_surface_in_records(self):
        _, telemetry = run_battery(["fig8"], trace_length=SMALL,
                                   benchmarks=["nn"])
        (record,) = telemetry.records
        assert record.counters["l2_requests"] > 0
        assert record.counters["dram_accesses"] >= 0
