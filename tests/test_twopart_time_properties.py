"""Property tests of the two-part L2 under irregular timing.

Hypothesis drives the cache with random address streams *and* random time
gaps (including gaps far beyond both retention windows), checking the
invariants that must survive expiry, refresh, and migration in any order.
"""

from hypothesis import given, settings, strategies as st

from repro.core import TwoPartSTTL2
from repro.units import KB, MS, US


def make_l2():
    return TwoPartSTTL2(
        hr_capacity_bytes=16 * KB,
        hr_associativity=4,
        lr_capacity_bytes=4 * KB,
        lr_associativity=2,
        lr_retention_s=40 * US,
        hr_retention_s=4 * MS,
    )


access_step = st.tuples(
    st.integers(min_value=0, max_value=60),          # line id
    st.booleans(),                                   # write?
    st.sampled_from([1e-9, 1e-7, 1e-5, 5e-5, 1e-3, 1e-2]),  # gap (s)
)


class TestTimingProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(access_step, min_size=5, max_size=250))
    def test_no_duplicate_residency_under_any_timing(self, steps):
        l2 = make_l2()
        now = 0.0
        for lid, is_write, gap in steps:
            now += gap
            addr = lid * 256
            l2.access(addr, is_write, now=now)
            assert not (l2.lr_array.probe(addr) and l2.hr_array.probe(addr))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(access_step, min_size=5, max_size=250))
    def test_stats_balance_under_any_timing(self, steps):
        l2 = make_l2()
        now = 0.0
        for lid, is_write, gap in steps:
            now += gap
            l2.access(lid * 256, is_write, now=now)
        stats = l2.stats
        assert stats.accesses == len(steps)
        assert stats.hits + stats.misses == stats.accesses
        assert l2.energy.total_j >= 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(access_step, min_size=5, max_size=250))
    def test_no_resident_block_is_expired(self, steps):
        """After every access, no *resident* block may be past retention
        (the sweeps + access-path checks must keep the arrays clean)."""
        from repro.core.refresh import cell_age

        l2 = make_l2()
        now = 0.0
        for lid, is_write, gap in steps:
            now += gap
            l2.access(lid * 256, is_write, now=now)
        # verify the invariant at the final time against LR (the part with
        # the tight window); blocks the sweep hasn't visited yet are only
        # tolerable within one sweep tick
        tolerance = l2.lr_spec.tick_s
        for _, _, block in l2.lr_array.iter_blocks():
            if block.valid:
                assert cell_age(block, now) < l2.lr_spec.retention_s + tolerance

    @settings(max_examples=20, deadline=None)
    @given(st.lists(access_step, min_size=5, max_size=150),
           st.integers(min_value=1, max_value=3))
    def test_monotonic_time_required_semantics(self, steps, reps):
        """Re-running the identical stream gives identical statistics
        (the architecture is deterministic)."""
        outcomes = []
        for _ in range(reps + 1):
            l2 = make_l2()
            now = 0.0
            for lid, is_write, gap in steps:
                now += gap
                l2.access(lid * 256, is_write, now=now)
            outcomes.append((
                l2.stats.hits, l2.migrations_to_lr, l2.refresh_writes,
                l2.data_losses, round(l2.energy.total_j, 18),
            ))
        assert len(set(outcomes)) == 1
