"""Tests for the analytical surrogate: features, model, validation, gate.

Covers the contracts docs/surrogate.md promises:

* workload pre-characterization — determinism, the content-keyed cache
  round-trip in the battery key space, malformed-payload rejection;
* the fitted model — anchor-exact predictions, log-length interpolation,
  clamping, serialization/digest stability, config-fingerprint and
  schema rejection, the feature-space nearest-neighbour fallback;
* the lazy :class:`~repro.surrogate.SurrogateOracle` (what the service
  embeds) — per-pair fitting, shared-cache reuse;
* the validation harness — deterministic grid sampling, error
  summaries, the ``BENCH_surrogate.json`` schema gate and its
  digest-changes-always-fail policy;
* the committed baseline — schema-valid, >= 200 grid points, and error
  bounds within the acceptance policy.
"""

import json
import os

import pytest

from repro.errors import SurrogateError
from repro.io import load_json
from repro.surrogate import (
    DEFAULT_ANCHOR_LENGTHS,
    ERROR_POLICY,
    MIN_PREDICTIONS_PER_S,
    PREDICTED_METRICS,
    SurrogateModel,
    SurrogateOracle,
    WorkloadFeatures,
    anchor_key,
    build_grid,
    characterize_workload,
    compare_surrogate_bench,
    feature_key,
    fit_surrogate,
    measure_throughput,
    summarize_errors,
    validate_surrogate_bench,
)
from repro.telemetry import ResultCache
from repro.tracing import TraceCollector

# small anchors keep the fit cheap; real serving uses DEFAULT_ANCHOR_LENGTHS
ANCHORS = (800, 2400)

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_surrogate.json"
)


@pytest.fixture(scope="module")
def small_model():
    """One tiny fitted model shared by the model tests."""
    return fit_surrogate(
        configs=["C1", "C3"], benchmarks=["bfs", "nn"], anchor_lengths=ANCHORS
    )


class TestFeatures:
    def test_characterization_is_deterministic(self):
        first = characterize_workload("bfs", trace_length=3000)
        second = characterize_workload("bfs", trace_length=3000)
        assert first == second
        assert first.benchmark == "bfs"
        assert 0.0 <= first.write_fraction <= 1.0
        assert 0.0 <= first.wws_fraction <= 1.0
        assert 0.0 <= first.rewrite_under_10us <= 1.0
        assert first.l2_requests > 0

    def test_cache_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        tracer = TraceCollector(max_events=0)
        fresh = characterize_workload(
            "nn", trace_length=3000, cache=cache, tracer=tracer
        )
        cached = characterize_workload(
            "nn", trace_length=3000, cache=cache, tracer=tracer
        )
        assert cached == fresh
        counters = tracer.counters_dict()
        assert counters["surrogate.features.computed"] == 1
        assert counters["surrogate.features.cache_hits"] == 1

    def test_keys_are_parameter_sensitive(self):
        base = feature_key("bfs", 3000, 0)
        assert feature_key("bfs", 3000, 1) != base
        assert feature_key("bfs", 4000, 0) != base
        assert feature_key("nn", 3000, 0) != base
        assert anchor_key("C1", "bfs", 3000, 0) != base

    def test_malformed_payload_is_rejected(self):
        with pytest.raises(SurrogateError):
            WorkloadFeatures.from_dict({"benchmark": "bfs"})

    def test_vector_keys_are_stable(self):
        features = characterize_workload("bfs", trace_length=3000)
        assert set(features.vector()) == {
            "write_fraction", "wws_fraction", "rewrite_under_10us",
            "l2_write_share",
        }


class TestModel:
    def test_prediction_at_anchor_reproduces_ground_truth(self, small_model):
        anchor = small_model.anchors["C1"]["bfs"][0]
        predicted = small_model.predict("C1", "bfs", anchor.trace_length)
        assert predicted["ipc"] == pytest.approx(anchor.ipc)
        assert predicted["l2_hit_rate"] == pytest.approx(anchor.l2_hit_rate)
        assert predicted["l2_dynamic_energy_j"] == pytest.approx(
            anchor.l2_dynamic_energy_j
        )
        assert predicted["via"] == "bfs"

    def test_interpolated_rates_stay_clamped(self, small_model):
        for length in (100, 1200, 50_000):
            predicted = small_model.predict("C1", "bfs", length)
            assert 0.0 <= predicted["l2_hit_rate"] <= 1.0
            assert 0.0 <= predicted["l1_hit_rate"] <= 1.0
            assert predicted["ipc"] >= 0.0
            assert predicted["l2_dynamic_energy_j"] >= 0.0

    def test_energy_is_linear_in_traffic_at_fixed_coefficient(self, small_model):
        anchor = small_model.anchors["C1"]["bfs"][0]
        predicted = small_model.predict("C1", "bfs", anchor.trace_length)
        per_access = predicted["l2_dynamic_energy_j"] / anchor.trace_length
        assert per_access == pytest.approx(
            anchor.l2_dynamic_energy_j / anchor.trace_length
        )

    def test_unseen_benchmark_falls_back_to_nearest_neighbour(self, small_model):
        predicted = small_model.predict("C1", "kmeans", 1200)
        assert predicted["benchmark"] == "kmeans"
        assert predicted["via"] in ("bfs", "nn")

    def test_serialization_round_trip_preserves_digest(self, small_model):
        document = small_model.to_dict()
        rehydrated = SurrogateModel.from_dict(
            json.loads(json.dumps(document))
        )
        assert rehydrated.digest() == small_model.digest()
        a = small_model.predict("C3", "nn", 1500)
        b = rehydrated.predict("C3", "nn", 1500)
        assert a == b

    def test_fingerprint_mismatch_is_rejected(self, small_model):
        document = small_model.to_dict()
        document["config_fingerprint"] = "0" * 64
        with pytest.raises(SurrogateError, match="fingerprint"):
            SurrogateModel.from_dict(document)

    def test_unsupported_schema_is_rejected(self, small_model):
        document = small_model.to_dict()
        document["schema_version"] = 999
        with pytest.raises(SurrogateError, match="schema"):
            SurrogateModel.from_dict(document)

    def test_misuse_raises(self, small_model):
        with pytest.raises(SurrogateError):
            fit_surrogate(configs=["C9"], benchmarks=["bfs"])
        with pytest.raises(SurrogateError):
            fit_surrogate(configs=["C1"], benchmarks=["nope"])
        with pytest.raises(SurrogateError):
            fit_surrogate(configs=["C1"], benchmarks=["bfs"],
                          anchor_lengths=(4000,))
        with pytest.raises(SurrogateError):
            small_model.predict("C9", "bfs", 1000)
        with pytest.raises(SurrogateError):
            small_model.predict("C1", "bfs", 0)


class TestOracle:
    def test_pairs_fit_lazily_and_cache_is_shared(self, tmp_path):
        cache = ResultCache(tmp_path)
        tracer = TraceCollector(max_events=0)
        oracle = SurrogateOracle(
            anchor_lengths=ANCHORS, cache=cache, tracer=tracer
        )
        assert oracle.fitted_pairs == 0
        first = oracle.predict("C1", "bfs", 1200)
        assert oracle.fitted_pairs == 1
        again = oracle.predict("C1", "bfs", 1200)
        assert again == first
        assert oracle.fitted_pairs == 1  # warm pair, no re-fit

        warm_tracer = TraceCollector(max_events=0)
        warm = SurrogateOracle(
            anchor_lengths=ANCHORS, cache=cache, tracer=warm_tracer
        )
        assert warm.predict("C1", "bfs", 1200) == first
        counters = warm_tracer.counters_dict()
        assert counters["surrogate.fit.anchor_cache_hits"] == len(ANCHORS)
        assert counters["surrogate.features.cache_hits"] == 1
        assert "surrogate.fit.anchor_sims" not in counters


class TestValidationHarness:
    def test_grid_is_deterministic_and_large_enough(self):
        from repro.config import all_configs
        from repro.workloads.suite import suite_names

        configs = sorted(all_configs())
        benchmarks = suite_names()
        grid = build_grid(configs, benchmarks)
        assert grid == build_grid(configs, benchmarks)
        assert len(grid) >= 200  # the acceptance floor
        assert len({
            (p["config"], p["benchmark"], p["trace_length"], p["seed"])
            for p in grid
        }) == len(grid)

    def test_grid_rejects_oversampling(self):
        with pytest.raises(SurrogateError):
            build_grid(["C1"], ["bfs"], lengths=(1000,), seeds=(0,),
                       points_per_pair=2)

    def test_summarize_errors(self):
        points = [{
            "truth": {m: 1.0 for m in PREDICTED_METRICS},
            "predicted": {m: 1.1 for m in PREDICTED_METRICS},
        }]
        summary = summarize_errors(points)
        for metric in PREDICTED_METRICS:
            assert summary[metric]["median_abs_rel_err"] == pytest.approx(0.1)
            assert summary[metric]["max_abs_rel_err"] == pytest.approx(0.1)

    def test_summarize_errors_empty_raises(self):
        with pytest.raises(SurrogateError):
            summarize_errors([])

    def test_throughput_needs_a_grid(self, small_model):
        with pytest.raises(SurrogateError):
            measure_throughput(small_model, [])

    def test_throughput_measurement_shape(self, small_model):
        grid = [{"config": "C1", "benchmark": "bfs",
                 "trace_length": 1200, "seed": 0}]
        report = measure_throughput(small_model, grid, predictions=500)
        assert report["predictions"] == 500
        assert report["predictions_per_s"] > 0


class TestBenchGate:
    @pytest.fixture(scope="class")
    def baseline(self):
        return load_json(BASELINE_PATH)

    def test_committed_baseline_is_schema_valid(self, baseline):
        validate_surrogate_bench(baseline)
        assert baseline["params"]["grid_points"] >= 200
        assert baseline["params"]["anchor_lengths"] == sorted(
            DEFAULT_ANCHOR_LENGTHS
        )

    def test_committed_error_bounds_meet_the_policy(self, baseline):
        for metric, bound in ERROR_POLICY.items():
            median = baseline["errors"][metric]["median_abs_rel_err"]
            assert median <= bound, (metric, median, bound)
        assert (
            baseline["throughput"]["predictions_per_s"]
            >= MIN_PREDICTIONS_PER_S
        )

    def test_baseline_compares_clean_against_itself(self, baseline):
        report = compare_surrogate_bench(baseline, baseline)
        assert report["ok"] is True
        assert report["model_digest_match"] is True
        assert report["points_digest_match"] is True
        assert report["error_violations"] == {}

    def test_model_digest_change_fails_the_gate(self, baseline):
        tampered = json.loads(json.dumps(baseline))
        tampered["model_digest"] = "0" * 64
        report = compare_surrogate_bench(baseline, tampered)
        assert report["ok"] is False
        assert report["model_digest_match"] is False

    def test_tampered_points_are_rejected(self, baseline):
        tampered = json.loads(json.dumps(baseline))
        tampered["points"][0]["predicted"]["ipc"] += 1.0
        with pytest.raises(SurrogateError, match="points_digest"):
            validate_surrogate_bench(tampered)

    def test_error_violation_fails_the_gate(self, baseline):
        current = json.loads(json.dumps(baseline))
        current["errors"]["l2_hit_rate"]["median_abs_rel_err"] = 0.5
        report = compare_surrogate_bench(current, baseline)
        assert report["ok"] is False
        assert "l2_hit_rate" in report["error_violations"]

    def test_throughput_collapse_fails_the_gate(self, baseline):
        current = json.loads(json.dumps(baseline))
        current["throughput"]["predictions_per_s"] = 1.0
        report = compare_surrogate_bench(current, baseline)
        assert report["ok"] is False
        assert report["throughput_ok"] is False

    def test_validation_rejects_malformed_documents(self):
        with pytest.raises(SurrogateError):
            validate_surrogate_bench({"schema_version": 999})
        with pytest.raises(SurrogateError):
            validate_surrogate_bench(
                {"schema_version": 1, "kind": "service-bench"}
            )
