"""Tests for the uniform L2 baselines and the refresh engine."""

import pytest

from repro.cache.array import SetAssociativeCache
from repro.core.refresh import RefreshEngine, cell_age
from repro.core.retention_counter import RetentionCounterSpec
from repro.core.uniform import UniformL2
from repro.errors import ConfigurationError
from repro.units import KB, MS, US


class TestUniformL2:
    def make(self, technology="sram"):
        return UniformL2(64 * KB, 8, 256, technology=technology)

    def test_miss_then_hit(self):
        l2 = self.make()
        miss = l2.access(0x1000, is_write=False, now=0.0)
        assert not miss.hit and miss.dram_fetch
        hit = l2.access(0x1000, is_write=False, now=1e-9)
        assert hit.hit and not hit.dram_fetch

    def test_dirty_eviction_reports_writeback(self):
        l2 = UniformL2(2 * 256, 1, 256, technology="sram")  # 2 lines
        l2.access(0x0000, is_write=True, now=0.0)
        outcome = l2.access(0x0000 + 2 * 256, is_write=False, now=1e-9)
        assert outcome.dram_writebacks == 1

    def test_stt_write_latency_exceeds_read(self):
        l2 = self.make("stt")
        l2.access(0x1000, is_write=False, now=0.0)
        read = l2.access(0x1000, is_write=False, now=1e-9)
        write = l2.access(0x1000, is_write=True, now=2e-9)
        assert write.latency_s > read.latency_s

    def test_sram_symmetric_latency(self):
        l2 = self.make("sram")
        l2.access(0x1000, is_write=False, now=0.0)
        read = l2.access(0x1000, is_write=False, now=1e-9)
        write = l2.access(0x1000, is_write=True, now=2e-9)
        assert write.latency_s == pytest.approx(read.latency_s)

    def test_energy_accumulates(self):
        l2 = self.make()
        l2.access(0x1000, is_write=False, now=0.0)
        first = l2.energy.total_j
        l2.access(0x2000, is_write=True, now=1e-9)
        assert l2.energy.total_j > first

    def test_fill_from_dram(self):
        l2 = self.make()
        result = l2.fill_from_dram(0x3000, now=0.0, dirty=True)
        assert l2.array.probe(0x3000)
        assert result.energy_j > 0

    def test_dirty_lines_counted(self):
        l2 = self.make()
        l2.access(0x1000, is_write=True, now=0.0)
        l2.access(0x2000, is_write=False, now=1e-9)
        assert l2.dirty_lines() == 1

    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformL2(64 * KB, 8, 256, technology="pcm")

    def test_stt_leaks_less_than_sram(self):
        assert self.make("stt").leakage_power < self.make("sram").leakage_power

    def test_data_writes_counted(self):
        l2 = self.make()
        l2.access(0x1000, is_write=True, now=0.0)   # miss -> dirty fill
        l2.access(0x1000, is_write=True, now=1e-9)  # write hit
        assert l2.data_writes == 2


class TestCellAge:
    def test_age_from_fill(self):
        from repro.cache.block import CacheBlock

        block = CacheBlock()
        block.fill(0x1, now=2.0)
        assert cell_age(block, 5.0) == pytest.approx(3.0)

    def test_age_resets_on_write(self):
        from repro.cache.block import CacheBlock

        block = CacheBlock()
        block.fill(0x1, now=0.0)
        block.record_write(now=4.0)
        assert cell_age(block, 5.0) == pytest.approx(1.0)


class TestRefreshEngine:
    def make_engine(self, lr_ret=40 * US, hr_ret=40 * MS):
        lr = SetAssociativeCache(4 * KB, 2, 256)
        hr = SetAssociativeCache(16 * KB, 4, 256)
        engine = RefreshEngine(
            lr, hr,
            RetentionCounterSpec(4, lr_ret),
            RetentionCounterSpec(2, hr_ret),
        )
        return lr, hr, engine

    def test_not_due_immediately(self):
        _, _, engine = self.make_engine()
        assert not engine.due(0.0)

    def test_due_after_tick(self):
        _, _, engine = self.make_engine()
        assert engine.due(3 * US)

    def test_lr_refresh_scheduled_in_window(self):
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        # sweep inside the refresh window (retention 40us, window from 35us)
        actions = engine.sweep(36 * US)
        assert actions.lr_refresh == [0x100]
        assert engine.stats.lr_refreshes == 1

    def test_lr_expiry_detected(self):
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        actions = engine.sweep(50 * US)
        assert actions.lr_lost == [0x100]
        assert engine.stats.lr_expiries == 1

    def test_fresh_lr_block_untouched(self):
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        actions = engine.sweep(5 * US)
        assert actions.lr_refresh == [] and actions.lr_lost == []

    def test_hr_dirty_expiry_writes_back(self):
        _, hr, engine = self.make_engine(hr_ret=1 * MS)
        hr.access(0x200, is_write=True, now=0.0)
        actions = engine.sweep(2 * MS)
        assert actions.hr_drop_dirty == [0x200]

    def test_hr_clean_expiry_invalidates(self):
        _, hr, engine = self.make_engine(hr_ret=1 * MS)
        hr.access(0x200, is_write=False, now=0.0)
        actions = engine.sweep(2 * MS)
        assert actions.hr_drop_clean == [0x200]

    def test_sweep_advances_schedule(self):
        _, _, engine = self.make_engine()
        engine.sweep(3 * US)
        assert not engine.due(4 * US)

    def test_invalid_blocks_ignored(self):
        lr, _, engine = self.make_engine()
        actions = engine.sweep(100 * US)
        assert actions.lr_refresh == [] and actions.lr_lost == []
