"""Tests for the uniform L2 baselines and the refresh engine."""

import pytest

from repro.cache.array import SetAssociativeCache
from repro.core.refresh import RefreshEngine, cell_age
from repro.core.retention_counter import RetentionCounterSpec
from repro.core.uniform import UniformL2
from repro.errors import ConfigurationError
from repro.units import KB, MS, US


class TestUniformL2:
    def make(self, technology="sram"):
        return UniformL2(64 * KB, 8, 256, technology=technology)

    def test_miss_then_hit(self):
        l2 = self.make()
        miss = l2.access(0x1000, is_write=False, now=0.0)
        assert not miss.hit and miss.dram_fetch
        hit = l2.access(0x1000, is_write=False, now=1e-9)
        assert hit.hit and not hit.dram_fetch

    def test_dirty_eviction_reports_writeback(self):
        l2 = UniformL2(2 * 256, 1, 256, technology="sram")  # 2 lines
        l2.access(0x0000, is_write=True, now=0.0)
        outcome = l2.access(0x0000 + 2 * 256, is_write=False, now=1e-9)
        assert outcome.dram_writebacks == 1

    def test_stt_write_latency_exceeds_read(self):
        l2 = self.make("stt")
        l2.access(0x1000, is_write=False, now=0.0)
        read = l2.access(0x1000, is_write=False, now=1e-9)
        write = l2.access(0x1000, is_write=True, now=2e-9)
        assert write.latency_s > read.latency_s

    def test_sram_symmetric_latency(self):
        l2 = self.make("sram")
        l2.access(0x1000, is_write=False, now=0.0)
        read = l2.access(0x1000, is_write=False, now=1e-9)
        write = l2.access(0x1000, is_write=True, now=2e-9)
        assert write.latency_s == pytest.approx(read.latency_s)

    def test_energy_accumulates(self):
        l2 = self.make()
        l2.access(0x1000, is_write=False, now=0.0)
        first = l2.energy.total_j
        l2.access(0x2000, is_write=True, now=1e-9)
        assert l2.energy.total_j > first

    def test_fill_from_dram(self):
        l2 = self.make()
        result = l2.fill_from_dram(0x3000, now=0.0, dirty=True)
        assert l2.array.probe(0x3000)
        assert result.energy_j > 0

    def test_dirty_lines_counted(self):
        l2 = self.make()
        l2.access(0x1000, is_write=True, now=0.0)
        l2.access(0x2000, is_write=False, now=1e-9)
        assert l2.dirty_lines() == 1

    def test_unknown_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformL2(64 * KB, 8, 256, technology="pcm")

    def test_stt_leaks_less_than_sram(self):
        assert self.make("stt").leakage_power < self.make("sram").leakage_power

    def test_data_writes_counted(self):
        l2 = self.make()
        l2.access(0x1000, is_write=True, now=0.0)   # miss -> dirty fill
        l2.access(0x1000, is_write=True, now=1e-9)  # write hit
        assert l2.data_writes == 2


class TestCellAge:
    def test_age_from_fill(self):
        from repro.cache.block import CacheBlock

        block = CacheBlock()
        block.fill(0x1, now=2.0)
        assert cell_age(block, 5.0) == pytest.approx(3.0)

    def test_age_resets_on_write(self):
        from repro.cache.block import CacheBlock

        block = CacheBlock()
        block.fill(0x1, now=0.0)
        block.record_write(now=4.0)
        assert cell_age(block, 5.0) == pytest.approx(1.0)


class TestRefreshEngine:
    def make_engine(self, lr_ret=40 * US, hr_ret=40 * MS):
        lr = SetAssociativeCache(4 * KB, 2, 256)
        hr = SetAssociativeCache(16 * KB, 4, 256)
        engine = RefreshEngine(
            lr, hr,
            RetentionCounterSpec(4, lr_ret),
            RetentionCounterSpec(2, hr_ret),
        )
        return lr, hr, engine

    def test_not_due_immediately(self):
        _, _, engine = self.make_engine()
        assert not engine.due(0.0)

    def test_due_after_tick(self):
        _, _, engine = self.make_engine()
        assert engine.due(3 * US)

    def test_lr_refresh_scheduled_in_window(self):
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        # sweep inside the refresh window (retention 40us, window from 35us)
        actions = engine.sweep(36 * US)
        assert actions.lr_refresh == [0x100]
        assert engine.stats.lr_refreshes == 1

    def test_lr_expiry_detected(self):
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        actions = engine.sweep(50 * US)
        assert actions.lr_lost == [0x100]
        assert engine.stats.lr_expiries == 1

    def test_fresh_lr_block_untouched(self):
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        actions = engine.sweep(5 * US)
        assert actions.lr_refresh == [] and actions.lr_lost == []

    def test_hr_dirty_expiry_writes_back(self):
        _, hr, engine = self.make_engine(hr_ret=1 * MS)
        hr.access(0x200, is_write=True, now=0.0)
        actions = engine.sweep(2 * MS)
        assert actions.hr_drop_dirty == [0x200]

    def test_hr_clean_expiry_invalidates(self):
        _, hr, engine = self.make_engine(hr_ret=1 * MS)
        hr.access(0x200, is_write=False, now=0.0)
        actions = engine.sweep(2 * MS)
        assert actions.hr_drop_clean == [0x200]

    def test_sweep_advances_schedule(self):
        _, _, engine = self.make_engine()
        engine.sweep(3 * US)
        assert not engine.due(4 * US)

    def test_invalid_blocks_ignored(self):
        lr, _, engine = self.make_engine()
        actions = engine.sweep(100 * US)
        assert actions.lr_refresh == [] and actions.lr_lost == []

    def test_last_actions_seam(self):
        """sweep() publishes its decisions for external observers."""
        lr, _, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)
        actions = engine.sweep(36 * US)
        assert engine.last_actions is actions
        assert engine.last_actions.as_dict()["lr_refresh"] == [0x100]


class TestRefreshCadence:
    """Sweep rescheduling must stay on the tick grid (no phase drift)."""

    def make_engine(self, lr_bits=2, lr_ret=10 * US):
        # 2-bit LR counter: tick = lr_ret / 4, refresh window is the last
        # two ticks, i.e. ages in [lr_ret / 2, lr_ret)
        lr = SetAssociativeCache(4 * KB, 2, 256)
        hr = SetAssociativeCache(16 * KB, 4, 256)
        engine = RefreshEngine(
            lr, hr,
            RetentionCounterSpec(lr_bits, lr_ret),
            RetentionCounterSpec(2, 40 * MS),
        )
        return lr, engine

    def test_late_sweep_reschedules_on_grid(self):
        _, engine = self.make_engine()  # LR tick 2.5us
        engine.sweep(3 * US)  # 0.5us late
        assert engine._next_lr_scan == pytest.approx(5 * US)
        engine.sweep(5.1 * US)
        assert engine._next_lr_scan == pytest.approx(7.5 * US)

    def test_hr_reschedules_on_grid(self):
        _, engine = self.make_engine()  # HR tick 10ms
        engine.sweep(13 * MS)
        assert engine._next_hr_scan == pytest.approx(20 * MS)

    def test_sweep_on_grid_point_advances(self):
        """A sweep exactly on a grid point must not re-arm for the same time."""
        _, engine = self.make_engine()
        engine.sweep(2.5 * US)
        assert engine._next_lr_scan > 2.5 * US

    def test_skipped_window_expiry_regression(self):
        """Re-anchoring at call time let the refresh window be stepped over.

        Retention 10us, tick 2.5us, refresh window [5us, 10us).  With the
        pre-fix ``now + tick`` rescheduling, a sweep 0.9 ticks late
        (at 4.75us) re-armed for 7.25us, so a maintenance opportunity at
        7.0us — inside the refresh window — was skipped and the line
        silently expired at the next call (10.25us).  Grid rescheduling
        keeps 7.0us due and the line is refreshed in its window.
        """
        lr, engine = self.make_engine()
        lr.access(0x100, is_write=True, now=0.0)

        # late sweep, below the refresh window: no action either way
        assert engine.due(4.75 * US)
        actions = engine.sweep(4.75 * US)
        assert actions.lr_refresh == [] and actions.lr_lost == []

        # 7.0us is in the window; pre-fix code had re-armed for 7.25us
        # and skipped this opportunity entirely
        assert engine.due(7.0 * US)
        actions = engine.sweep(7.0 * US)
        assert actions.lr_refresh == [0x100]
        assert actions.lr_lost == []
        # apply the refresh the way the owning cache does: restart the clock
        block = lr.block_at(0x100)
        block.insert_time = 7.0 * US
        block.last_write_time = 7.0 * US

        # after the in-window refresh nothing expires at the next sweep
        actions = engine.sweep(10.25 * US)
        assert actions.lr_lost == []
        assert engine.stats.lr_expiries == 0
