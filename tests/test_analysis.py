"""Tests for the characterization analyses (COV, WWS, rewrite intervals)."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.cov import write_variation
from repro.analysis.intervals import (
    REWRITE_BUCKETS,
    rewrite_interval_distribution,
    snap_threshold,
)
from repro.analysis.tables import format_table, to_csv
from repro.analysis.wws import weighted_wws_fraction, write_working_set
from repro.cache.array import SetAssociativeCache
from repro.errors import AnalysisError
from repro.units import KB, MS, US
from repro.workloads.trace import FLAG_WRITE, Trace


class TestWriteVariation:
    def make_cache(self):
        return SetAssociativeCache(4 * KB, 2, 256)  # 8 sets x 2 ways

    def test_uniform_writes_low_cov(self):
        cache = self.make_cache()
        for line in range(16):
            cache.access(line * 256, is_write=True)
        variation = write_variation(cache)
        assert variation.inter_set_cov == pytest.approx(0.0)

    def test_skewed_writes_high_cov(self):
        cache = self.make_cache()
        for _ in range(100):
            cache.access(0x0, is_write=True)
        cache.access(0x100, is_write=True)
        variation = write_variation(cache)
        assert variation.inter_set_cov > 1.0

    def test_no_writes_raises(self):
        cache = self.make_cache()
        cache.access(0x0, is_write=False)
        with pytest.raises(AnalysisError):
            write_variation(cache)

    def test_intra_set_variation(self):
        cache = self.make_cache()
        # two lines in the same set, one written far more often
        for _ in range(99):
            cache.access(0x0, is_write=True)
        cache.access(0x0 + 8 * 256, is_write=True)  # same set, other way
        variation = write_variation(cache)
        assert variation.intra_set_cov > 0.9

    def test_percent_rendering(self):
        cache = self.make_cache()
        for _ in range(10):
            cache.access(0x0, is_write=True)
        pct = write_variation(cache).as_percentages()
        assert pct["inter_set_pct"] == pytest.approx(
            write_variation(cache).inter_set_cov * 100
        )

    def test_total_writes_counted(self):
        cache = self.make_cache()
        for i in range(7):
            cache.access(i * 256, is_write=True)
        assert write_variation(cache).total_writes == 7


class TestWWS:
    def make_trace(self, writes_mask, lines):
        n = len(lines)
        flags = np.where(np.asarray(writes_mask), FLAG_WRITE, 0).astype(np.uint8)
        return Trace(
            np.zeros(n, dtype=np.int16),
            np.asarray(lines, dtype=np.int64) * 256,
            flags,
        )

    def test_window_partitioning(self):
        trace = self.make_trace([True] * 10, list(range(10)))
        windows = write_working_set(trace, window=4)
        assert [w.start_index for w in windows] == [0, 4, 8]

    def test_distinct_written_lines(self):
        trace = self.make_trace([True, True, False, True], [1, 1, 2, 3])
        windows = write_working_set(trace, window=4)
        assert windows[0].distinct_written_lines == 2  # lines 1 and 3
        assert windows[0].distinct_touched_lines == 3

    def test_wws_fraction(self):
        trace = self.make_trace([True, False], [1, 2])
        window = write_working_set(trace, window=2)[0]
        assert window.wws_fraction == pytest.approx(0.5)

    def test_small_wws_for_generated_workload(self):
        """The paper's observation: the WWS per window is small."""
        from repro.workloads import build_workload

        wl = build_workload("bfs", num_accesses=8000, seed=0)
        windows = write_working_set(wl.trace, window=2000)
        for window in windows:
            assert window.wws_fraction < 0.6

    def test_rejects_bad_window(self):
        trace = self.make_trace([True], [0])
        with pytest.raises(AnalysisError):
            write_working_set(trace, window=0)

    def test_window_sizes_recorded(self):
        trace = self.make_trace([True] * 10, list(range(10)))
        windows = write_working_set(trace, window=4)
        assert [w.size for w in windows] == [4, 4, 2]

    def test_partial_tail_weighting(self):
        # first window: 4 accesses, all written (fraction 1.0);
        # tail window: 1 access, read only (fraction 0.0)
        trace = self.make_trace(
            [True, True, True, True, False], [0, 1, 2, 3, 4]
        )
        windows = write_working_set(trace, window=4)
        assert [w.size for w in windows] == [4, 1]
        naive = sum(w.wws_fraction for w in windows) / len(windows)
        weighted = weighted_wws_fraction(windows)
        assert naive == pytest.approx(0.5)
        assert weighted == pytest.approx(4 / 5)  # tail weighs 1/5, not 1/2

    def test_weighted_fraction_empty(self):
        assert weighted_wws_fraction([]) == 0.0

    @given(
        st.lists(st.booleans(), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=16),
    )
    def test_window_sizes_partition_trace(self, writes, window):
        """Window sizes always sum to the trace length, tail included."""
        trace = self.make_trace(writes, list(range(len(writes))))
        windows = write_working_set(trace, window=window)
        assert sum(w.size for w in windows) == len(writes)
        assert all(0 < w.size <= window for w in windows)
        if len(writes) % window:
            assert windows[-1].size == len(writes) % window


class TestRewriteIntervals:
    def test_bucketing(self):
        dist = rewrite_interval_distribution(
            [0.5 * US, 3 * US, 8 * US, 0.5 * MS, 2 * MS, 10 * MS]
        )
        assert dist.counts["<=1us"] == 1
        assert dist.counts["<=5us"] == 1
        assert dist.counts["<=10us"] == 1
        assert dist.counts["<=1ms"] == 1
        assert dist.counts["<=2.5ms"] == 1
        assert dist.counts[">2.5ms"] == 1

    def test_fractions_sum_to_one(self):
        dist = rewrite_interval_distribution([1e-6, 2e-6, 3e-3])
        assert sum(dist.fractions().values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        dist = rewrite_interval_distribution([])
        assert dist.total == 0
        assert all(v == 0.0 for v in dist.fractions().values())

    def test_fraction_under(self):
        dist = rewrite_interval_distribution([0.5 * US, 2 * US, 5 * MS])
        # 10 * US is one ulp below the exact 1e-5 edge; the documented
        # contract snaps it onto the edge instead of dropping buckets
        assert dist.fraction_under(10 * US) == pytest.approx(2 / 3)
        assert dist.fraction_under(1e-5) == pytest.approx(2 / 3)

    def test_fraction_under_rejects_off_edge_threshold(self):
        dist = rewrite_interval_distribution([0.5 * US, 2 * US])
        for off_edge in (7e-6, 2e-3, 0.5e-6, 0.0):
            with pytest.raises(AnalysisError):
                dist.fraction_under(off_edge)

    def test_fraction_under_inf_covers_everything(self):
        dist = rewrite_interval_distribution([0.5 * US, 5 * MS])
        assert dist.fraction_under(float("inf")) == pytest.approx(1.0)

    def test_fraction_under_empty_still_validates_threshold(self):
        dist = rewrite_interval_distribution([])
        assert dist.fraction_under(1e-5) == 0.0
        with pytest.raises(AnalysisError):
            dist.fraction_under(7e-6)

    def test_snap_threshold_absorbs_computed_bounds(self):
        assert snap_threshold(5 * US) == 5e-6
        assert snap_threshold(10 * US) == 1e-5
        assert snap_threshold(2.5 * MS) == 2.5e-3
        assert snap_threshold(float("inf")) == float("inf")
        with pytest.raises(AnalysisError):
            snap_threshold(7e-6)

    def test_exact_edges_classify_into_paper_bin(self):
        """Regression: the bounds are exact literals, so an interval of
        exactly 1 us / 5 us / 10 us / 1 ms / 2.5 ms lands in its own bin,
        not the next-larger one (10 * US-style computed bounds were one
        ulp below the edge)."""
        edges = [bound for _, bound in REWRITE_BUCKETS[:-1]]
        assert edges == [1e-6, 5e-6, 1e-5, 1e-3, 2.5e-3]
        dist = rewrite_interval_distribution(edges)
        for (label, _), _edge in zip(REWRITE_BUCKETS[:-1], edges):
            assert dist.counts[label] == 1, label
        assert dist.counts[">2.5ms"] == 0

    def test_10us_literal_is_under_10us(self):
        """The acceptance-criteria case: exactly 10e-6 s is <=10us."""
        assert 10e-6 == 1e-5  # the literal parses onto the edge
        dist = rewrite_interval_distribution([10e-6])
        assert dist.counts["<=10us"] == 1
        assert dist.fraction_under(10e-6) == 1.0

    @pytest.mark.parametrize("edge_index", range(len(REWRITE_BUCKETS) - 1))
    def test_one_ulp_around_every_edge(self, edge_index):
        """An interval one ulp below/at an edge is inside the bucket; one
        ulp above is in the next bucket."""
        label, edge = REWRITE_BUCKETS[edge_index]
        below = math.nextafter(edge, 0.0)
        above = math.nextafter(edge, math.inf)
        dist = rewrite_interval_distribution([below, edge, above])
        assert dist.counts[label] == 2, label
        next_label = REWRITE_BUCKETS[edge_index + 1][0]
        assert dist.counts[next_label] == 1, next_label

    @given(
        st.integers(min_value=0, max_value=len(REWRITE_BUCKETS) - 2),
        st.integers(min_value=-1, max_value=1),
    )
    def test_ulp_perturbed_edges_classify_consistently(self, edge_index, ulps):
        """Property: for any edge and any interval within one ulp of it,
        classification matches the inclusive ``interval <= bound`` rule
        applied to exact arithmetic."""
        label, edge = REWRITE_BUCKETS[edge_index]
        interval = edge
        if ulps < 0:
            interval = math.nextafter(edge, 0.0)
        elif ulps > 0:
            interval = math.nextafter(edge, math.inf)
        dist = rewrite_interval_distribution([interval])
        expected = label if interval <= edge else REWRITE_BUCKETS[edge_index + 1][0]
        assert dist.counts[expected] == 1

    def test_rejects_negative(self):
        with pytest.raises(AnalysisError):
            rewrite_interval_distribution([-1.0])

    @given(st.lists(st.floats(min_value=0, max_value=1.0), max_size=50))
    def test_total_matches_input(self, intervals):
        dist = rewrite_interval_distribution(intervals)
        assert dist.total == len(intervals)
        assert sum(dist.counts.values()) == len(intervals)

    def test_bucket_bounds_ordered(self):
        bounds = [b for _, b in REWRITE_BUCKETS]
        assert bounds == sorted(bounds)


class TestTables:
    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.123456]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "4.123" in table

    def test_format_table_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_csv(self):
        csv = to_csv(["a", "b"], [[1, "x"], [2, "y"]])
        assert csv.splitlines() == ["a,b", "1,x", "2,y"]
