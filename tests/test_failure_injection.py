"""Failure-injection tests: break a safety mechanism, observe the failure.

These tests verify the refresh/expiry machinery is *load-bearing*: with the
mechanism disabled or mis-sized, data losses and correctness hazards must
actually appear — otherwise the green tests elsewhere would be vacuous.
"""


from repro.core import TwoPartSTTL2
from repro.units import KB, US


def make_l2(**kwargs):
    defaults = dict(
        hr_capacity_bytes=32 * KB,
        hr_associativity=4,
        lr_capacity_bytes=8 * KB,
        lr_associativity=2,
        lr_retention_s=40 * US,
    )
    defaults.update(kwargs)
    return TwoPartSTTL2(**defaults)


def write_twice_then_idle(l2, idle_accesses=60, idle_step=2 * US):
    """Put a line in LR, then idle-read elsewhere past its retention."""
    l2.access(0x1000, is_write=True, now=1e-9)
    l2.access(0x1000, is_write=True, now=2e-9)  # migrate to LR
    assert l2.lr_array.probe(0x1000)
    now = 2e-9
    for _ in range(idle_accesses):
        now += idle_step
        l2.access(0x90000, is_write=False, now=now)
    return now


class TestRefreshIsLoadBearing:
    def test_with_refresh_no_loss(self):
        l2 = make_l2()
        now = write_twice_then_idle(l2)
        assert l2.data_losses == 0
        assert l2.access(0x1000, is_write=False, now=now + 1e-9).hit

    def test_without_refresh_data_is_lost(self):
        """Disable the sweeps: the LR line must expire and its dirty data
        must be counted lost."""
        l2 = make_l2()
        l2.refresh_engine.due = lambda now: False  # sabotage
        now = write_twice_then_idle(l2)
        result = l2.access(0x1000, is_write=False, now=now + 1e-9)
        assert not result.hit
        assert l2.data_losses >= 1

    def test_sweeps_too_rare_also_lose_data(self):
        """Refresh exists but runs slower than the retention: loss."""
        l2 = make_l2()
        # push the next sweeps far beyond the idle window
        l2.refresh_engine._next_lr_scan = 1.0
        l2.refresh_engine._next_hr_scan = 1.0
        now = write_twice_then_idle(l2)
        assert not l2.access(0x1000, is_write=False, now=now + 1e-9).hit
        assert l2.data_losses >= 1

    def test_clean_expiry_is_not_a_loss(self):
        """Expired *clean* data is refetchable — a miss, not a loss."""
        l2 = make_l2(hr_retention_s=100 * US)
        l2.access(0x1000, is_write=False, now=1e-9)  # clean, lives in HR
        l2.refresh_engine.due = lambda now: False
        result = l2.access(0x1000, is_write=False, now=1.0)
        assert not result.hit
        assert l2.data_losses == 0


class TestBufferSafety:
    def test_tiny_buffers_force_writebacks_not_losses(self):
        """A 1-line migration buffer must overflow to DRAM, never drop."""
        l2 = make_l2(buffer_lines=1)
        now = 0.0
        for i in range(400):
            now += 1e-9
            l2.access((i % 30) * 256, is_write=True, now=now)
        overflows = l2.hr_to_lr.stats.overflows + l2.lr_to_hr.stats.overflows
        assert overflows > 0, "the tiny buffer must actually overflow"
        assert l2.data_losses == 0

    def test_overflowed_lines_remain_findable(self):
        """Even under constant buffer overflow, no line may vanish from
        the L2's logical state while unexpired."""
        l2 = make_l2(buffer_lines=1)
        now = 0.0
        lines = [(i % 30) * 256 for i in range(400)]
        for line in lines:
            now += 1e-9
            l2.access(line, is_write=True, now=now)
        for line in set(lines):
            assert l2.lr_array.probe(line) or l2.hr_array.probe(line)


class TestMonitorMisconfiguration:
    def test_huge_threshold_starves_lr(self):
        """With an unreachable threshold nothing migrates — the LR part
        sits idle and every rewrite pays HR write energy."""
        l2 = make_l2(write_threshold=7)
        now = 0.0
        for i in range(200):
            now += 1e-9
            l2.access(0x2000, is_write=True, now=now)
        # counter saturates at 7; first 7 writes arm it, further writes
        # migrate - verify the *contrast* with TH1 instead of absolutes
        th1 = make_l2(write_threshold=1)
        now = 0.0
        for i in range(200):
            now += 1e-9
            th1.access(0x2000, is_write=True, now=now)
        assert l2.hr_data_writes > th1.hr_data_writes
