"""Tests for the observability layer: collector, schema, and wiring.

Covers the tentpole contracts:

* counters/histograms are exact (never sampled) and reconcile with
  :class:`~repro.gpu.metrics.SimulationResult` field for field;
* disabled tracing is a true no-op — byte-identical results, bounded
  wall time, no trace artifacts;
* emitted documents satisfy the Chrome-trace schema validator end to end
  (collector -> file -> ``validate_trace``), including via the CLI.
"""

import dataclasses
import json
import time

import pytest

from repro.config import config_c1
from repro.errors import TracingError
from repro.gpu.simulator import GPUSimulator, simulate
from repro.io import canonical_json
from repro.tracing import (
    NULL_TRACER,
    Histogram,
    NullTraceCollector,
    TraceCollector,
    TRACE_SCHEMA_VERSION,
    trace_issues,
    validate_trace,
)
from repro.workloads import build_workload

TRACE = 4000  # small traces keep the module fast


@pytest.fixture(scope="module")
def traced_run():
    """One traced C1 simulation shared by the reconciliation tests."""
    tracer = TraceCollector(sample_every=2)
    workload = build_workload("nn", num_accesses=TRACE, seed=0)
    result = GPUSimulator(config_c1(), workload, tracer=tracer).run()
    return tracer, result


class TestHistogram:
    def test_power_of_two_buckets(self):
        h = Histogram(unit=1.0)
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
            h.observe(value)
        rendered = h.to_dict()["buckets"]
        # (.., 1] ; (1, 2] ; (2, 4] ; (8, 16]
        assert rendered == {"1": 2, "2": 2, "4": 1, "16": 1}

    def test_exact_moments_survive_bucketing(self):
        h = Histogram(unit=1e-9)
        values = [3e-9, 5e-9, 100e-9]
        for v in values:
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(sum(values))
        assert d["min"] == pytest.approx(3e-9)
        assert d["max"] == pytest.approx(100e-9)
        assert d["mean"] == pytest.approx(sum(values) / 3)

    def test_bucket_counts_sum_to_count(self):
        h = Histogram()
        for i in range(100):
            h.observe(i * 1e-9)
        assert sum(h.buckets.values()) == h.count == 100

    def test_bad_unit_rejected(self):
        with pytest.raises(TracingError):
            Histogram(unit=0)


class TestTraceCollector:
    def test_counters_are_never_sampled(self):
        t = TraceCollector(sample_every=10)
        for _ in range(25):
            t.count("x")
            t.observe("h", 1e-9)
        assert t.counters_dict()["x"] == 25
        assert t.histograms_dict()["h"]["count"] == 25

    def test_events_sampled_per_name(self):
        t = TraceCollector(sample_every=3)
        for i in range(9):
            t.event("a", i * 1e-6)
        for i in range(2):
            t.event("b", i * 1e-6)
        # a: admitted at occurrences 0, 3, 6; b: admitted at 0
        assert t.num_events == 4

    def test_event_cap_counts_drops(self):
        t = TraceCollector(max_events=5)
        for i in range(8):
            t.event("a", i * 1e-6)
        assert t.num_events == 5
        assert t.dropped_events == 3
        assert t.summary()["dropped_events"] == 3

    def test_bad_parameters_rejected(self):
        with pytest.raises(TracingError):
            TraceCollector(sample_every=0)
        with pytest.raises(TracingError):
            TraceCollector(max_events=-1)

    def test_chrome_trace_shape(self):
        t = TraceCollector()
        t.count("c", 2)
        t.event("e", 1e-6, component="l2", line=42)
        t.sample("occ", 2e-6, 7.0, component="l2.buffer")
        doc = t.to_chrome_trace()
        assert not trace_issues(doc)
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"process_name", "thread_name", "e", "occ"} <= names
        assert doc["otherData"]["schema_version"] == TRACE_SCHEMA_VERSION
        assert doc["otherData"]["counters"]["c"] == 2
        # components map to stable thread tracks
        tids = {
            e["args"]["name"]: e["tid"]
            for e in doc["traceEvents"] if e["name"] == "thread_name"
        }
        assert set(tids) == {"l2", "l2.buffer"}

    def test_write_round_trips_through_validator(self, tmp_path):
        t = TraceCollector()
        t.count("c")
        t.event("e", 1e-6)
        path = t.write(tmp_path / "trace.json")
        validate_trace(json.loads(path.read_text()))


class TestNullCollector:
    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTraceCollector)

    def test_recorders_accumulate_nothing(self):
        NULL_TRACER.count("x", 5)
        NULL_TRACER.set_counter("y", 1)
        NULL_TRACER.observe("h", 1e-9)
        NULL_TRACER.event("e", 0.0)
        NULL_TRACER.sample("s", 0.0, 1.0)
        assert NULL_TRACER.counters_dict() == {}
        assert NULL_TRACER.histograms_dict() == {}
        assert NULL_TRACER.num_events == 0

    def test_export_raises(self, tmp_path):
        with pytest.raises(TracingError):
            NULL_TRACER.to_chrome_trace()
        with pytest.raises(TracingError):
            NULL_TRACER.write(tmp_path / "never.json")


class TestSchemaValidation:
    def _minimal(self):
        return {
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                 "args": {"name": "x"}},
                {"name": "e", "ph": "i", "s": "t", "ts": 1.0, "pid": 0,
                 "tid": 0, "args": {}},
            ],
            "otherData": {
                "schema_version": TRACE_SCHEMA_VERSION,
                "counters": {"c": 1},
                "histograms": {},
            },
        }

    def test_minimal_document_passes(self):
        assert trace_issues(self._minimal()) == []

    def test_bad_phase_detected(self):
        doc = self._minimal()
        doc["traceEvents"][1]["ph"] = "X"
        assert any("ph" in issue for issue in trace_issues(doc))

    def test_missing_timestamp_detected(self):
        doc = self._minimal()
        del doc["traceEvents"][1]["ts"]
        assert trace_issues(doc)

    def test_counter_event_needs_value(self):
        doc = self._minimal()
        doc["traceEvents"].append(
            {"name": "c", "ph": "C", "ts": 1.0, "pid": 0, "tid": 0,
             "args": {}}
        )
        assert trace_issues(doc)

    def test_schema_version_mismatch_detected(self):
        doc = self._minimal()
        doc["otherData"]["schema_version"] = 999
        assert any("schema_version" in issue for issue in trace_issues(doc))

    def test_histogram_bucket_sum_checked(self):
        doc = self._minimal()
        doc["otherData"]["histograms"]["h"] = {
            "unit": 1e-9, "count": 3, "sum": 1.0, "buckets": {"1": 1},
        }
        assert any("bucket" in issue for issue in trace_issues(doc))

    def test_validate_trace_raises_with_all_issues(self):
        doc = self._minimal()
        doc["traceEvents"][1]["ph"] = "X"
        doc["otherData"]["schema_version"] = 999
        with pytest.raises(TracingError) as excinfo:
            validate_trace(doc)
        assert "ph" in str(excinfo.value)
        assert "schema_version" in str(excinfo.value)


class TestSimulatorReconciliation:
    """Trace counters must equal SimulationResult fields exactly."""

    RECONCILED = [
        ("sim.l2_requests", "l2_requests"),
        ("l2.migrations_to_lr", "migrations_to_lr"),
        ("l2.refresh_writes", "refresh_writes"),
        ("l2.data_losses", "data_losses"),
        ("dram.writebacks", "dram_writebacks"),
        ("l2.reads", "l2_reads"),
        ("l2.writes", "l2_writes"),
        ("dram.accesses_charged", "dram_accesses"),
    ]

    @pytest.mark.parametrize("counter,field", RECONCILED)
    def test_counter_equals_result_field(self, traced_run, counter, field):
        tracer, result = traced_run
        assert tracer.counters_dict().get(counter, 0) == getattr(result, field)

    def test_l1_hit_rate_recomputable(self, traced_run):
        tracer, result = traced_run
        counters = tracer.counters_dict()
        assert result.l1_hit_rate == pytest.approx(
            counters["l1.accesses"] and
            counters["l1.hits"] / counters["l1.accesses"]
        )

    def test_request_kinds_sum_to_l2_requests(self, traced_run):
        tracer, result = traced_run
        counters = tracer.counters_dict()
        kinds = sum(
            v for k, v in counters.items()
            if k.startswith("sim.l1_requests.")
        )
        assert kinds == result.l2_requests

    def test_serve_split_sums_to_l2_requests(self, traced_run):
        tracer, result = traced_run
        counters = tracer.counters_dict()
        served = sum(
            v for k, v in counters.items() if k.startswith("l2.serve.")
        )
        assert served == result.l2_requests

    def test_histograms_cover_every_request(self, traced_run):
        tracer, result = traced_run
        hists = tracer.histograms_dict()
        assert hists["l2.service_latency_s"]["count"] == result.l2_requests
        assert hists["l2.bank_wait_s"]["count"] == result.l2_requests

    def test_metadata_self_describing(self, traced_run):
        tracer, _ = traced_run
        assert tracer.metadata["workload"] == "nn"
        assert tracer.metadata["config"] == "C1"
        assert "l2" in tracer.metadata
        assert tracer.metadata["result"]["ipc"] > 0

    def test_full_document_validates(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tracer.write(tmp_path / "sim-trace.json")
        validate_trace(json.loads(path.read_text()))

    def test_per_set_eviction_counts_exposed(self, traced_run):
        tracer, _ = traced_run
        counters = tracer.counters_dict()
        evictions = sum(
            v for k, v in counters.items()
            if k.startswith("cache.twopart-") and "evictions" in k
        )
        assert evictions >= 0  # present and non-negative by construction


class TestZeroOverheadContract:
    def test_disabled_tracing_byte_identical(self):
        results = []
        for tracer in (None, TraceCollector(sample_every=4)):
            workload = build_workload("nn", num_accesses=TRACE, seed=0)
            sim = GPUSimulator(config_c1(), workload, tracer=tracer)
            results.append(canonical_json(dataclasses.asdict(sim.run())))
        assert results[0] == results[1]

    def test_untraced_runs_are_identical_and_fast(self):
        workload = build_workload("nn", num_accesses=TRACE, seed=0)
        start = time.monotonic()
        first = simulate(config_c1(), workload)
        elapsed = time.monotonic() - start
        workload = build_workload("nn", num_accesses=TRACE, seed=0)
        second = simulate(config_c1(), workload)
        assert canonical_json(dataclasses.asdict(first)) == canonical_json(
            dataclasses.asdict(second)
        )
        # generous absolute budget: the guarded no-op instrumentation must
        # not turn a sub-second run into a slow one (catches accidental
        # unguarded allocation in hot paths)
        assert elapsed < 30.0

    def test_untraced_simulator_holds_the_shared_null(self):
        workload = build_workload("nn", num_accesses=200, seed=0)
        sim = GPUSimulator(config_c1(), workload)
        assert sim.tracer is NULL_TRACER
        assert sim.dram.tracer is NULL_TRACER
        assert all(l1.tracer is NULL_TRACER for l1 in sim.l1s)


class TestCLITraceFlags:
    def test_trace_run_emits_valid_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        trace_file = tmp_path / "trace.json"
        manifest_file = tmp_path / "run.json"
        code = main([
            "simulate", "nn", "C1", "--trace-length", str(TRACE),
            "--trace", "--trace-sample", "4",
            "--trace-out", str(trace_file),
            "--manifest", str(manifest_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace          :" in out
        document = json.loads(trace_file.read_text())
        validate_trace(document)
        manifest = json.loads(manifest_file.read_text())
        assert manifest["trace"]["counters"] == (
            document["otherData"]["counters"]
        )
        assert manifest["trace"]["sample_every"] == 4

    def test_trace_sample_validated(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "nn", "C1", "--trace", "--trace-sample", "0",
        ]) == 2
        assert "--trace-sample" in capsys.readouterr().err

    def test_untraced_cli_writes_no_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace_file = tmp_path / "trace.json"
        code = main([
            "simulate", "nn", "C1", "--trace-length", "500",
            "--trace-out", str(trace_file),
        ])
        assert code == 0
        assert not trace_file.exists()
