"""Unit tests for the energy-breakdown and seed-robustness experiments."""

import pytest

from repro.experiments import energy, variance


class TestEnergyBreakdown:
    @pytest.fixture(scope="class")
    def result(self):
        return energy.run(trace_length=3000, benchmarks=["bfs", "streamcluster"])

    def test_shares_sum_to_one(self, result):
        for row in result.rows:
            assert sum(row[1:5]) == pytest.approx(1.0, abs=0.02)

    def test_shares_non_negative(self, result):
        for row in result.rows:
            assert all(share >= 0 for share in row[1:5])

    def test_read_mostly_benchmark_low_migration(self, result):
        row = result.row_for("streamcluster")
        assert row[2] < 0.10  # migration share

    def test_extras_present(self, result):
        assert 0 <= result.extras["mean_overhead_share"] <= 1
        assert result.extras["max_overhead_share"] >= result.extras[
            "mean_overhead_share"
        ]


class TestVariance:
    @pytest.fixture(scope="class")
    def result(self):
        return variance.run(
            trace_length=2000, benchmarks=["nn", "tpacf"], seeds=(0, 1)
        )

    def test_one_row_per_metric(self, result):
        assert len(result.rows) == len(variance.METRICS)

    def test_min_max_bracket_mean(self, result):
        for row in result.rows:
            _, mean, _, lo, hi = row
            assert lo <= mean <= hi

    def test_std_non_negative(self, result):
        for row in result.rows:
            assert row[2] >= 0

    def test_default_seed_expansion(self):
        # seed=5 expands to (5, 6, 7)
        result = variance.run(
            trace_length=800, benchmarks=["nn"], seed=5
        )
        assert "(5, 6, 7)" in result.name

    def test_flat_benchmarks_are_seed_stable(self, result):
        """nn/tpacf are insensitive: speedups must be ~1 at every seed."""
        row = result.row_for("gmean_speedup_c1")
        assert row[3] == pytest.approx(1.0, abs=0.05)  # min
        assert row[4] == pytest.approx(1.0, abs=0.05)  # max

    def test_mean_std_helper(self):
        mean, std = variance._mean_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(2.0 ** 0.5)

    def test_mean_std_single_value(self):
        mean, std = variance._mean_std([4.2])
        assert mean == pytest.approx(4.2)
        assert std == 0.0
