"""Tests for the hybrid (SRAM LR + STT HR) organization — ref [16]."""

import pytest

from repro.core import TwoPartSTTL2
from repro.errors import ConfigurationError
from repro.units import KB, US


def make(lr_technology="sram", **kwargs):
    defaults = dict(
        hr_capacity_bytes=32 * KB,
        hr_associativity=4,
        lr_capacity_bytes=8 * KB,
        lr_associativity=2,
        lr_technology=lr_technology,
    )
    defaults.update(kwargs)
    return TwoPartSTTL2(**defaults)


class TestHybridOrganization:
    def test_protocol_identical(self):
        """Migration behaviour is technology-independent."""
        hybrid, stt = make("sram"), make("stt")
        now = 0.0
        for i in range(1500):
            now += 1e-9
            for l2 in (hybrid, stt):
                l2.access((i % 80) * 256, is_write=(i % 3 == 0), now=now)
        assert hybrid.migrations_to_lr == stt.migrations_to_lr
        assert hybrid.lr_data_writes == stt.lr_data_writes
        assert hybrid.stats.hit_rate == pytest.approx(stt.stats.hit_rate)

    def test_sram_lr_never_refreshes(self):
        hybrid = make("sram", lr_retention_s=40 * US)
        hybrid.access(0x1000, is_write=True, now=1e-9)
        hybrid.access(0x1000, is_write=True, now=2e-9)  # migrate to LR
        # idle long past any STT retention window
        now = 2e-9
        for _ in range(60):
            now += 5 * US
            hybrid.access(0x90000, is_write=False, now=now)
        assert hybrid.refresh_writes == 0
        assert hybrid.data_losses == 0
        assert hybrid.access(0x1000, is_write=False, now=now + 1e-9).hit, \
            "SRAM LR data never expires"

    def test_stt_lr_would_have_refreshed(self):
        stt = make("stt", lr_retention_s=40 * US)
        stt.access(0x1000, is_write=True, now=1e-9)
        stt.access(0x1000, is_write=True, now=2e-9)
        now = 2e-9
        for _ in range(60):
            now += 5 * US
            stt.access(0x90000, is_write=False, now=now)
        assert stt.refresh_writes > 0

    def test_leakage_tradeoff(self):
        """The hybrid buys refresh-free fast writes with SRAM leakage+area."""
        hybrid, stt = make("sram"), make("stt")
        assert hybrid.leakage_power > 2 * stt.leakage_power
        assert hybrid.area > 1.3 * stt.area

    def test_sram_lr_write_cheap(self):
        hybrid, stt = make("sram"), make("stt")
        assert hybrid.lr_model.data_write_energy < stt.lr_model.data_write_energy

    def test_latency_aliases_work(self):
        hybrid = make("sram")
        hybrid.access(0x1000, is_write=True, now=1e-9)
        result = hybrid.access(0x1000, is_write=True, now=2e-9)  # migrate
        assert result.part == "lr"
        assert result.latency_s > 0

    def test_unknown_lr_technology_rejected(self):
        with pytest.raises(ConfigurationError):
            make("edram")

    def test_no_lr_counter_bits_in_sram_tags(self):
        hybrid, stt = make("sram"), make("stt")
        assert hybrid.lr_model.tag_record_bits < stt.lr_model.tag_record_bits
