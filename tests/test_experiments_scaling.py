"""Tests for the technology-scaling experiment."""

import pytest

from repro.experiments import scaling


@pytest.fixture(scope="module")
def result():
    return scaling.run(trace_length=4000, benchmarks=["nn"])


class TestScalingExperiment:
    def test_three_nodes(self, result):
        assert [row[0] for row in result.rows] == ["45nm", "40nm", "32nm"]

    def test_advantage_grows_with_shrink(self, result):
        """The paper's motivation: worse SRAM leakage per node means a
        growing STT total-power advantage."""
        ratios = result.column("c1_total_power_ratio")
        assert ratios[2] < ratios[1] < ratios[0]

    def test_extras_match_rows(self, result):
        assert result.extras["total_ratio_40nm"] == pytest.approx(
            result.row_for("40nm")[2], abs=5e-4
        )

    def test_leakage_ratio_below_one(self, result):
        for ratio in result.column("c1_leakage_ratio"):
            assert ratio < 1.0

    def test_speedups_positive(self, result):
        for speedup in result.column("c1_speedup"):
            assert speedup > 0
