"""Tests for the L1's deferred-fill (MSHR) mode."""

import pytest

from repro.config import L1Config
from repro.errors import SimulationError
from repro.gpu.l1 import GPUL1Cache, L2Request


def make_l1(**kwargs):
    return GPUL1Cache(L1Config(), deferred_fills=True, **kwargs)


class TestDeferredFills:
    def test_miss_issues_fetch_without_filling(self):
        l1 = make_l1()
        requests = l1.access(0x1000, False, False, now=0.0)
        assert requests == [L2Request("fetch", 0x1000)]
        assert not l1.array.probe(0x1000), "line must not land before the fetch"

    def test_fill_lands_after_completion(self):
        l1 = make_l1()
        l1.access(0x1000, False, False, now=0.0)
        l1.complete_fetch(0x1000, ready_time=100e-9)
        # before the data arrives: still a miss
        l1.access(0x1000, False, False, now=50e-9)
        assert not l1.array.probe(0x1000)
        # after: the drain installs the line
        l1.access(0x2000, False, False, now=200e-9)
        assert l1.array.probe(0x1000)

    def test_secondary_miss_coalesces(self):
        l1 = make_l1()
        first = l1.access(0x1000, False, False, now=0.0)
        l1.complete_fetch(0x1000, ready_time=100e-9)
        second = l1.access(0x1000, False, False, now=10e-9)
        assert first == [L2Request("fetch", 0x1000)]
        assert second == [], "in-flight line must not refetch"
        assert l1.gpu_stats.coalesced_misses == 1

    def test_hit_after_landing(self):
        l1 = make_l1()
        l1.access(0x1000, False, False, now=0.0)
        l1.complete_fetch(0x1000, ready_time=10e-9)
        requests = l1.access(0x1000, False, False, now=20e-9)
        assert requests == []
        assert l1.array.probe(0x1000)

    def test_local_write_miss_fills_dirty(self):
        l1 = make_l1()
        l1.access(0x3000, True, True, now=0.0)
        l1.complete_fetch(0x3000, ready_time=10e-9)
        l1.access(0x9000, False, False, now=20e-9)  # trigger drain
        block = l1.array.block_at(0x3000)
        assert block is not None and block.dirty

    def test_coalesced_write_merges_dirty_intent(self):
        l1 = make_l1()
        l1.access(0x3000, False, True, now=0.0)       # local read miss
        l1.access(0x3000, True, True, now=1e-9)       # local write, in flight
        l1.complete_fetch(0x3000, ready_time=10e-9)
        l1.access(0x9000, False, False, now=20e-9)
        block = l1.array.block_at(0x3000)
        assert block is not None and block.dirty

    def test_global_write_cancels_pending_fill(self):
        """A written-through store must not be overwritten by a stale fill."""
        l1 = make_l1()
        l1.access(0x1000, False, False, now=0.0)      # fetch in flight
        l1.access(0x1000, True, False, now=1e-9)      # write-through
        l1.complete_fetch(0x1000, ready_time=10e-9)   # ignored (cancelled)
        l1.access(0x9000, False, False, now=20e-9)
        assert not l1.array.probe(0x1000)

    def test_mshr_stall_issues_uncached_fetch(self):
        l1 = make_l1(mshr_entries=1)
        l1.access(0x1000, False, False, now=0.0)
        requests = l1.access(0x2000, False, False, now=1e-9)
        assert requests == [L2Request("fetch", 0x2000)]
        assert l1.gpu_stats.mshr_stalls == 1
        # the uncached fetch fills nothing even if "completed"
        l1.complete_fetch(0x2000, ready_time=2e-9)
        l1.access(0x9000, False, False, now=10e-9)
        assert not l1.array.probe(0x2000)

    def test_drain_eviction_writes_back(self):
        l1 = make_l1()
        sets = l1.array.num_sets
        line = l1.config.line_size
        conflicting = [0x100000 + i * sets * line
                       for i in range(l1.config.associativity + 1)]
        now = 0.0
        for addr in conflicting:
            now += 1e-9
            l1.access(addr, True, True, now=now)
            l1.complete_fetch(addr, ready_time=now)
        now += 1e-9
        requests = l1.access(0x9000, False, False, now=now)
        writebacks = [r for r in requests if r.kind == "writeback"]
        assert writebacks == [L2Request("writeback", conflicting[0])]

    def test_complete_fetch_requires_deferred_mode(self):
        l1 = GPUL1Cache(L1Config())
        with pytest.raises(SimulationError):
            l1.complete_fetch(0x1000, ready_time=0.0)

    def test_mshr_occupancy_returns_to_zero(self):
        l1 = make_l1()
        for i in range(4):
            l1.access(0x1000 + i * 128, False, False, now=float(i) * 1e-9)
            l1.complete_fetch(0x1000 + i * 128, ready_time=float(i) * 1e-9)
        l1.access(0x9000, False, False, now=1.0)
        # only the last access (0x9000) can still be outstanding
        assert l1.mshr.occupancy <= 1
