"""Tests for the MSHR file and the bank conflict model."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.banked import BankedCache
from repro.cache.mshr import MSHRFile
from repro.errors import ConfigurationError, SimulationError


class TestMSHR:
    def test_allocate_then_coalesce(self):
        mshr = MSHRFile(num_entries=4)
        assert mshr.register_miss(0x1000) == "allocated"
        assert mshr.register_miss(0x1000) == "coalesced"
        assert mshr.stats.allocations == 1
        assert mshr.stats.coalesced == 1

    def test_full_file_stalls(self):
        mshr = MSHRFile(num_entries=2)
        mshr.register_miss(0x1000)
        mshr.register_miss(0x2000)
        assert mshr.register_miss(0x3000) == "stall"
        assert mshr.stats.stalls == 1

    def test_merge_limit_stalls(self):
        mshr = MSHRFile(num_entries=4, max_merged=2)
        mshr.register_miss(0x1000)
        mshr.register_miss(0x1000)
        assert mshr.register_miss(0x1000) == "stall"

    def test_complete_returns_merged_count(self):
        mshr = MSHRFile(num_entries=4)
        mshr.register_miss(0x1000)
        mshr.register_miss(0x1000)
        assert mshr.complete(0x1000) == 2
        assert not mshr.lookup(0x1000)

    def test_complete_unknown_raises(self):
        mshr = MSHRFile(num_entries=4)
        with pytest.raises(SimulationError):
            mshr.complete(0x9000)

    def test_completion_frees_entry(self):
        mshr = MSHRFile(num_entries=1)
        mshr.register_miss(0x1000)
        mshr.complete(0x1000)
        assert mshr.register_miss(0x2000) == "allocated"

    def test_reset_clears(self):
        mshr = MSHRFile(num_entries=2)
        mshr.register_miss(0x1000)
        mshr.reset()
        assert mshr.occupancy == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(num_entries=0)
        with pytest.raises(ConfigurationError):
            MSHRFile(num_entries=4, max_merged=0)

    @given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=100))
    def test_occupancy_bounded(self, lines):
        mshr = MSHRFile(num_entries=4)
        for lid in lines:
            mshr.register_miss(lid * 256)
        assert 0 <= mshr.occupancy <= 4
        assert len(mshr.outstanding_lines()) == mshr.occupancy


class TestBankedCache:
    def test_no_conflict_when_idle(self):
        banks = BankedCache(num_banks=8, line_size=256)
        wait = banks.schedule(0x0000, now=0.0, service_time=10e-9)
        assert wait == 0.0

    def test_back_to_back_same_bank_conflicts(self):
        banks = BankedCache(num_banks=8, line_size=256)
        banks.schedule(0x0000, now=0.0, service_time=10e-9)
        wait = banks.schedule(0x0000, now=0.0, service_time=10e-9)
        assert wait == pytest.approx(10e-9)
        assert banks.stats.conflicts == 1

    def test_different_banks_independent(self):
        banks = BankedCache(num_banks=8, line_size=256)
        banks.schedule(0 * 256, now=0.0, service_time=10e-9)
        wait = banks.schedule(1 * 256, now=0.0, service_time=10e-9)
        assert wait == 0.0

    def test_wait_decreases_as_time_passes(self):
        banks = BankedCache(num_banks=4, line_size=256)
        banks.schedule(0x0000, now=0.0, service_time=10e-9)
        wait = banks.schedule(0x0000, now=6e-9, service_time=10e-9)
        assert wait == pytest.approx(4e-9)

    def test_utilization(self):
        banks = BankedCache(num_banks=2, line_size=256)
        banks.schedule(0 * 256, now=0.0, service_time=5e-9)
        banks.schedule(1 * 256, now=0.0, service_time=5e-9)
        assert banks.utilization(10e-9) == pytest.approx(0.5)

    def test_negative_service_rejected(self):
        banks = BankedCache(num_banks=2, line_size=256)
        with pytest.raises(ConfigurationError):
            banks.schedule(0, now=0.0, service_time=-1.0)

    def test_reset(self):
        banks = BankedCache(num_banks=2, line_size=256)
        banks.schedule(0, now=0.0, service_time=1.0)
        banks.reset()
        assert banks.busy_until(0) == 0.0

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                              st.floats(min_value=0, max_value=1e-6)),
                    min_size=1, max_size=100))
    def test_busy_until_monotone_per_bank(self, requests):
        """A bank's busy-until never decreases as requests arrive in time order."""
        banks = BankedCache(num_banks=4, line_size=256)
        now = 0.0
        last = {}
        for lid, dt in requests:
            now += dt
            addr = lid * 256
            bank = banks.bank_for(addr)
            banks.schedule(addr, now=now, service_time=5e-9)
            busy = banks.busy_until(addr)
            assert busy >= last.get(bank, 0.0)
            last[bank] = busy
