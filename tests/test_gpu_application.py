"""Tests for multi-kernel application runs and trace persistence."""

import numpy as np
import pytest

from repro.config import baseline_sram, config_c1
from repro.errors import SimulationError, TraceError
from repro.gpu import run_application, compare_applications
from repro.gpu.simulator import GPUSimulator
from repro.workloads import build_workload
from repro.workloads.trace import Trace


def make_kernels(n=2, length=2500):
    return [build_workload("kmeans", num_accesses=length, seed=s) for s in range(n)]


class TestApplicationRun:
    def test_one_kernel_matches_simulate(self):
        kernels = make_kernels(1)
        app = run_application(baseline_sram(), kernels)
        from repro.gpu.simulator import simulate

        single = simulate(baseline_sram(), kernels[0])
        assert app.kernels[0].ipc == pytest.approx(single.ipc)
        assert app.aggregate_ipc == pytest.approx(single.ipc, rel=1e-6)

    def test_l2_stays_warm_between_kernels(self):
        """A repeated kernel must hit more on its second run (same data)."""
        workload = build_workload("kmeans", num_accesses=2500, seed=0)
        app = run_application(config_c1(), [workload, workload])
        assert app.kernels[1].l2_hit_rate > app.kernels[0].l2_hit_rate

    def test_per_kernel_energy_is_delta_not_cumulative(self):
        workload = build_workload("kmeans", num_accesses=2500, seed=0)
        app = run_application(config_c1(), [workload, workload])
        first, second = app.kernels
        # a warm second run spends *less* energy, so cumulative reporting
        # would show second > first
        assert second.l2_dynamic_energy_j < first.l2_dynamic_energy_j

    def test_total_time_sums(self):
        app = run_application(baseline_sram(), make_kernels(2))
        assert app.total_time_s == pytest.approx(
            sum(k.sim_time_s for k in app.kernels)
        )

    def test_speedup_over(self):
        kernels = make_kernels(2)
        base = run_application(baseline_sram(), kernels)
        c1 = run_application(config_c1(), kernels)
        assert c1.speedup_over(base) > 0.9

    def test_empty_application_rejected(self):
        with pytest.raises(SimulationError):
            run_application(baseline_sram(), [])

    def test_compare_applications(self):
        kernels = make_kernels(1, length=1200)
        results = compare_applications(
            {"baseline": baseline_sram(), "C1": config_c1()}, kernels
        )
        assert set(results) == {"baseline", "C1"}

    def test_retention_clock_monotone_across_kernels(self):
        """The L2's replay clock must not jump backwards at boundaries."""
        kernels = make_kernels(2, length=1500)
        from repro.core.factory import build_l2

        l2 = build_l2(config_c1().l2)
        start = 0.0
        for workload in kernels:
            sim = GPUSimulator(config_c1(), workload, l2=l2, start_time_s=start)
            sim.run()
            assert sim.end_time_s > start
            start = sim.end_time_s

    def test_negative_start_time_rejected(self):
        workload = build_workload("nn", num_accesses=200, seed=0)
        with pytest.raises(SimulationError):
            GPUSimulator(baseline_sram(), workload, start_time_s=-1.0)


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        workload = build_workload("bfs", num_accesses=1000, seed=4)
        path = tmp_path / "bfs.npz"
        workload.trace.save(path)
        restored = Trace.load(path)
        assert np.array_equal(restored.sm, workload.trace.sm)
        assert np.array_equal(restored.address, workload.trace.address)
        assert np.array_equal(restored.flags, workload.trace.flags)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            Trace.load(tmp_path / "nope.npz")

    def test_load_wrong_contents(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            Trace.load(path)
