"""Tests for kernel descriptors, register file and SM occupancy."""

import pytest
from hypothesis import given, strategies as st

from repro.config import baseline_sram, config_c2
from repro.errors import ConfigurationError
from repro.gpu.kernel import KernelDescriptor
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.regfile import RegisterFile


class TestKernelDescriptor:
    def test_warps_per_block_rounds_up(self):
        kernel = KernelDescriptor(name="k", threads_per_block=100)
        assert kernel.warps_per_block() == 4

    def test_regs_per_block(self):
        kernel = KernelDescriptor(name="k", regs_per_thread=48, threads_per_block=256)
        assert kernel.regs_per_block() == 12288

    def test_rejects_compute_intensity_below_one(self):
        with pytest.raises(ConfigurationError):
            KernelDescriptor(name="k", compute_intensity=0.5)

    def test_rejects_bad_resources(self):
        with pytest.raises(ConfigurationError):
            KernelDescriptor(name="k", regs_per_thread=0)
        with pytest.raises(ConfigurationError):
            KernelDescriptor(name="k", shared_mem_per_block=-1)


class TestRegisterFile:
    def test_capacity(self):
        assert RegisterFile(32768).capacity_bytes == 128 * 1024

    def test_max_threads(self):
        assert RegisterFile(32768).max_concurrent_threads(32) == 1024

    def test_area_scales_with_registers(self):
        small = RegisterFile(32768)
        large = RegisterFile(65536)
        assert large.area == pytest.approx(2 * small.area)

    def test_rejects_zero_registers(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(0)

    def test_rejects_zero_regs_per_thread(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(1024).max_concurrent_threads(0)


class TestOccupancy:
    def test_register_limited_kernel(self):
        # 48 regs x 256 threads = 12288 regs/block; 32768 // 12288 = 2 blocks
        kernel = KernelDescriptor(name="k", regs_per_thread=48, threads_per_block=256)
        occ = compute_occupancy(kernel, baseline_sram())
        assert occ.blocks_per_sm == 2
        assert occ.warps_per_sm == 16
        assert occ.limiter == "registers"

    def test_c2_fits_one_more_block(self):
        """The C2 lever: a larger register file admits one more whole CTA."""
        kernel = KernelDescriptor(name="k", regs_per_thread=48, threads_per_block=256)
        base = compute_occupancy(kernel, baseline_sram())
        boosted = compute_occupancy(kernel, config_c2())
        assert boosted.blocks_per_sm == base.blocks_per_sm + 1

    def test_block_granularity_blocks_partial_gains(self):
        """The paper's no-gain case: 63 regs/thread cannot use C2's boost."""
        kernel = KernelDescriptor(name="k", regs_per_thread=63, threads_per_block=256)
        base = compute_occupancy(kernel, baseline_sram())
        boosted = compute_occupancy(kernel, config_c2())
        assert boosted.warps_per_sm == base.warps_per_sm

    def test_warp_limited_kernel(self):
        kernel = KernelDescriptor(name="k", regs_per_thread=8, threads_per_block=256)
        occ = compute_occupancy(kernel, baseline_sram())
        assert occ.warps_per_sm <= 48
        assert occ.limiter in ("warps", "blocks")

    def test_shared_memory_limiter(self):
        kernel = KernelDescriptor(
            name="k", regs_per_thread=8, threads_per_block=64,
            shared_mem_per_block=24 * 1024,
        )
        occ = compute_occupancy(kernel, baseline_sram())
        assert occ.blocks_per_sm == 2
        assert occ.limiter == "shared_mem"

    def test_kernel_too_big_raises(self):
        kernel = KernelDescriptor(
            name="k", regs_per_thread=200, threads_per_block=512
        )
        with pytest.raises(ConfigurationError):
            compute_occupancy(kernel, baseline_sram())

    def test_occupancy_fraction(self):
        kernel = KernelDescriptor(name="k", regs_per_thread=8, threads_per_block=256)
        occ = compute_occupancy(kernel, baseline_sram())
        assert 0 < occ.occupancy_fraction <= 1.0

    @given(st.integers(min_value=8, max_value=64),
           st.sampled_from([64, 128, 192, 256, 512]))
    def test_warps_never_exceed_limits(self, regs, tpb):
        kernel = KernelDescriptor(name="k", regs_per_thread=regs, threads_per_block=tpb)
        config = baseline_sram()
        try:
            occ = compute_occupancy(kernel, config)
        except ConfigurationError:
            return
        assert occ.warps_per_sm <= config.max_warps_per_sm
        assert occ.blocks_per_sm <= config.max_blocks_per_sm
        assert (
            occ.blocks_per_sm * kernel.regs_per_block() <= config.registers_per_sm
        )
