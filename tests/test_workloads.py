"""Tests for trace containers, patterns, profiles and the generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, TraceError
from repro.workloads import (
    PROFILES,
    TraceGenerator,
    build_suite,
    build_workload,
    get_profile,
    suite_names,
)
from repro.workloads.generator import ACCESS_GRANULARITY
from repro.workloads.patterns import (
    HotSegment,
    LocalSegment,
    PhasedWriteSegment,
    StreamingSegment,
    zipf_pmf,
)
from repro.workloads.trace import FLAG_LOCAL, FLAG_WRITE, Trace


class TestZipf:
    def test_normalized(self):
        assert zipf_pmf(100, 0.8).sum() == pytest.approx(1.0)

    def test_alpha_zero_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert np.allclose(pmf, 0.1)

    def test_skew_increases_with_alpha(self):
        flat = zipf_pmf(100, 0.2)
        skewed = zipf_pmf(100, 1.5)
        assert skewed[0] > flat[0]

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            zipf_pmf(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_pmf(10, -1.0)


class TestSegments:
    def test_streaming_sequential(self):
        rng = np.random.default_rng(0)
        seg = StreamingSegment(100)
        lines = seg.draw(rng, 10)
        assert lines.tolist() == list(range(10))

    def test_streaming_wraps(self):
        rng = np.random.default_rng(0)
        seg = StreamingSegment(8)
        seg.draw(rng, 6)
        lines = seg.draw(rng, 4)
        assert lines.tolist() == [6, 7, 0, 1]

    def test_hot_segment_in_range(self):
        rng = np.random.default_rng(0)
        seg = HotSegment(64, alpha=1.0)
        lines = seg.draw(rng, 500)
        assert lines.min() >= 0 and lines.max() < 64

    def test_hot_segment_skewed(self):
        rng = np.random.default_rng(0)
        seg = HotSegment(256, alpha=1.2, scatter=False)
        lines = seg.draw(rng, 5000)
        counts = np.bincount(lines, minlength=256)
        assert counts[0] > 10 * max(1, counts[200])

    def test_hot_scatter_changes_mapping(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        scattered = HotSegment(256, alpha=1.2, scatter=True).draw(rng1, 100)
        sequential = HotSegment(256, alpha=1.2, scatter=False).draw(rng2, 100)
        assert scattered.tolist() != sequential.tolist()

    def test_phased_wws_rerandomizes(self):
        seg = PhasedWriteSegment(128, alpha=1.2)
        seg.start_phase(0)
        perm0 = seg._perm.copy()
        seg.start_phase(1)
        assert not np.array_equal(perm0, seg._perm)

    def test_phase_restart_idempotent(self):
        seg = PhasedWriteSegment(128)
        seg.start_phase(3)
        perm = seg._perm.copy()
        seg.start_phase(3)
        assert np.array_equal(perm, seg._perm)

    def test_local_window_bounded(self):
        rng = np.random.default_rng(0)
        seg = LocalSegment(100, window_lines=10)
        lines = seg.draw(rng, 200)
        assert lines.min() >= 0 and lines.max() < 100

    def test_segment_rejects_zero_lines(self):
        with pytest.raises(ConfigurationError):
            StreamingSegment(0)


class TestTrace:
    def make_trace(self, n=10):
        return Trace(
            np.zeros(n, dtype=np.int16),
            np.arange(n, dtype=np.int64) * 128,
            np.zeros(n, dtype=np.uint8),
        )

    def test_length(self):
        assert len(self.make_trace(5)) == 5

    def test_rejects_mismatched_columns(self):
        with pytest.raises(TraceError):
            Trace(np.zeros(3, dtype=np.int16), np.zeros(2, dtype=np.int64),
                  np.zeros(3, dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(TraceError):
            Trace(np.zeros(0, dtype=np.int16), np.zeros(0, dtype=np.int64),
                  np.zeros(0, dtype=np.uint8))

    def test_rejects_negative_addresses(self):
        with pytest.raises(TraceError):
            Trace(np.zeros(1, dtype=np.int16), np.array([-1], dtype=np.int64),
                  np.zeros(1, dtype=np.uint8))

    def test_write_fraction(self):
        trace = Trace(
            np.zeros(4, dtype=np.int16),
            np.zeros(4, dtype=np.int64),
            np.array([FLAG_WRITE, 0, FLAG_WRITE, 0], dtype=np.uint8),
        )
        assert trace.write_fraction == pytest.approx(0.5)

    def test_records_decode_flags(self):
        trace = Trace(
            np.array([3], dtype=np.int16),
            np.array([256], dtype=np.int64),
            np.array([FLAG_WRITE | FLAG_LOCAL], dtype=np.uint8),
        )
        record = next(trace.records())
        assert record.sm == 3 and record.is_write and record.is_local

    def test_slice(self):
        trace = self.make_trace(10)
        part = trace.slice(2, 5)
        assert len(part) == 3
        assert part.address[0] == 2 * 128

    def test_slice_validates(self):
        with pytest.raises(TraceError):
            self.make_trace(10).slice(5, 3)


class TestProfiles:
    def test_sixteen_benchmarks(self):
        assert len(PROFILES) == 16

    def test_all_regions_populated(self):
        regions = {p.region for p in PROFILES.values()}
        assert regions == {1, 2, 3, 4}

    def test_mixes_sum_to_one(self):
        for profile in PROFILES.values():
            assert sum(profile.mix_vector()) == pytest.approx(1.0)

    def test_get_profile_unknown(self):
        with pytest.raises(ConfigurationError):
            get_profile("doom3")

    def test_suite_names_ordered_by_region(self):
        names = suite_names()
        regions = [PROFILES[n].region for n in names]
        assert regions == sorted(regions)

    def test_write_fractions_span_paper_range(self):
        """The paper quotes near-0% to ~63% writes across the suite."""
        fractions = [p.write_fraction for p in PROFILES.values()]
        assert min(fractions) < 0.10
        assert max(fractions) > 0.40


class TestGenerator:
    def test_deterministic(self):
        a = build_workload("bfs", num_accesses=2000, seed=7)
        b = build_workload("bfs", num_accesses=2000, seed=7)
        assert np.array_equal(a.trace.address, b.trace.address)
        assert np.array_equal(a.trace.flags, b.trace.flags)

    def test_seed_changes_trace(self):
        a = build_workload("bfs", num_accesses=2000, seed=1)
        b = build_workload("bfs", num_accesses=2000, seed=2)
        assert not np.array_equal(a.trace.address, b.trace.address)

    def test_addresses_line_aligned(self):
        wl = build_workload("kmeans", num_accesses=2000, seed=0)
        assert (wl.trace.address % ACCESS_GRANULARITY == 0).all()

    def test_sm_ids_in_range(self):
        wl = build_workload("kmeans", num_accesses=2000, num_sms=15, seed=0)
        assert wl.trace.sm.min() >= 0 and wl.trace.sm.max() < 15

    def test_write_fraction_close_to_profile(self):
        profile = get_profile("bfs")
        wl = build_workload("bfs", num_accesses=20000, seed=0)
        assert wl.trace.write_fraction == pytest.approx(
            profile.write_fraction, abs=0.06
        )

    def test_local_accesses_flagged(self):
        wl = build_workload("mri-gridding", num_accesses=20000, seed=0)
        assert wl.trace.local_fraction > 0.05

    def test_kernel_descriptor_matches_profile(self):
        profile = get_profile("tpacf")
        wl = build_workload("tpacf", num_accesses=100, seed=0)
        assert wl.kernel.regs_per_thread == profile.regs_per_thread
        assert wl.kernel.compute_intensity == profile.compute_intensity

    def test_generator_rejects_bad_args(self):
        gen = TraceGenerator(get_profile("bfs"))
        with pytest.raises(ConfigurationError):
            gen.generate(0)
        with pytest.raises(ConfigurationError):
            gen.generate(100, num_sms=0)

    def test_build_suite_subset(self):
        suite = build_suite(["bfs", "kmeans"], num_accesses=500)
        assert set(suite) == {"bfs", "kmeans"}

    def test_build_suite_full(self):
        suite = build_suite(num_accesses=200)
        assert len(suite) == 16

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(sorted(PROFILES)), st.integers(min_value=100, max_value=3000))
    def test_any_profile_generates_valid_trace(self, name, length):
        wl = build_workload(name, num_accesses=length, seed=0)
        assert len(wl.trace) == length
        assert wl.trace.address.min() >= 0
