#!/usr/bin/env python3
"""Replay-throughput benchmark CLI (see ``repro.benchmarks`` for the harness).

Times the trace-replay hot path on pinned scenarios, writes a
schema-validated JSON document, and optionally gates against a committed
baseline:

    python scripts/bench_replay.py --out BENCH_replay.json
    python scripts/bench_replay.py --quick \
        --baseline BENCH_replay.json --threshold 0.2

Exit status: 0 on success; 1 when the comparison found a throughput
regression beyond the threshold *or* a result-digest mismatch (pinned
inputs must produce byte-identical simulation results); 2 on bad usage.
``docs/performance.md`` documents the schema and the regression-gate
policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchmarks import (  # noqa: E402  (path setup must precede import)
    DEFAULT_REGRESSION_THRESHOLD,
    SCALE_SCENARIOS,
    BenchmarkError,
    compare_bench,
    run_bench,
    validate_bench,
    write_bench,
)
from repro.io import load_json  # noqa: E402


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short scenarios / fewer repeats (CI smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override repeat count (default: 3, quick: 2)")
    parser.add_argument("--engines", nargs="+", default=["object"],
                        choices=["object", "soa", "sharded"], metavar="ENGINE",
                        help="replay engines to time, each scenario once "
                             "per engine (default: object only; the "
                             "committed baseline records all three)")
    parser.add_argument("--shards", type=int, default=4, metavar="N",
                        help="shard count for the sharded engine "
                             "(default 4; recorded per scenario)")
    parser.add_argument("--scale", action="store_true",
                        help="time the million-access SCALE_SCENARIOS "
                             "instead of the default pinned set")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the bench document to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="compare against a baseline bench document")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_REGRESSION_THRESHOLD,
                        help="regression threshold as a fraction "
                             "(default 0.2 = fail below 80%% of baseline)")
    parser.add_argument("--experiments", nargs="*", default=None,
                        metavar="NAME",
                        help="also wall-time these experiments "
                             "(serial, no cache; slow)")
    parser.add_argument("--experiments-trace-length", type=int, default=15000)
    args = parser.parse_args(argv)

    try:
        document = run_bench(
            quick=args.quick,
            repeats=args.repeats,
            scenarios=SCALE_SCENARIOS if args.scale else None,
            experiments=args.experiments,
            engines=args.engines,
            shards=args.shards,
        )
        validate_bench(document)
    except BenchmarkError as error:
        print(f"bench error: {error}", file=sys.stderr)
        return 2

    for record in document["scenarios"]:
        engine = record.get("engine", "object")
        if "shards" in record:
            engine += f"({record['shards']} shards)"
        print(
            f"{record['workload']}/{record['config']} "
            f"len={record['trace_length']} seed={record['seed']} "
            f"engine={engine}: "
            f"{record['requests_per_s']:.0f} req/s "
            f"(best {record['best_wall_s']:.3f}s over {record['repeats']} runs) "
            f"digest={record['result_sha256'][:12]}"
        )
    for record in document.get("experiments", []):
        print(f"experiment {record['experiment']}: {record['wall_s']:.1f}s "
              f"(trace length {record['trace_length']})")

    if args.out:
        write_bench(document, args.out)
        print(f"wrote {args.out}")

    if args.baseline:
        try:
            baseline = load_json(args.baseline)
            report = compare_bench(document, baseline, threshold=args.threshold)
        except BenchmarkError as error:
            print(f"comparison error: {error}", file=sys.stderr)
            return 2
        for key, entry in sorted(report["matched"].items()):
            flag = "ok" if entry["ratio"] >= 1.0 - args.threshold else "REGRESSED"
            digest = "" if entry["digest_match"] else "  RESULTS CHANGED"
            print(f"vs baseline {key}: {entry['ratio']:.2f}x ({flag}){digest}")
        if not report["matched"]:
            print("comparison error: no scenarios matched the baseline",
                  file=sys.stderr)
            return 2
        if not report["ok"]:
            print(
                "FAIL: " + json.dumps(
                    {k: report[k] for k in ("regressed", "results_changed")}
                ),
                file=sys.stderr,
            )
            return 1
        print("comparison ok: no regression, results byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
