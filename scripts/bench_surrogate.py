#!/usr/bin/env python3
"""Surrogate validation gate CLI (see ``repro.surrogate.validate``).

Characterizes the suite, fits the surrogate, ground-truths the
>= 200-point validation grid against the trace-driven engine, load-checks
prediction throughput, writes the schema-validated ``BENCH_surrogate.json``
document, and optionally gates against a committed baseline:

    python scripts/bench_surrogate.py --out BENCH_surrogate.json
    python scripts/bench_surrogate.py --baseline BENCH_surrogate.json

Exit status: 0 on success; 1 when the comparison failed — the model or
grid-results digest changed (**always** a failure: re-pin consciously), a
median error bound exceeded the policy, or throughput fell below the
floor; 2 on bad usage.  ``docs/surrogate.md`` documents the schema and
the gate policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import SurrogateError  # noqa: E402  (path setup first)
from repro.io import load_json  # noqa: E402
from repro.surrogate import (  # noqa: E402
    compare_surrogate_bench,
    run_surrogate_bench,
    validate_surrogate_bench,
    write_surrogate_bench,
)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-keyed cache for anchor/ground-truth "
                             "simulations and feature vectors (makes re-runs "
                             "over an unchanged grid pure disk reads)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the bench document to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="gate against a committed bench document")
    args = parser.parse_args(argv)

    try:
        document = run_surrogate_bench(cache_dir=args.cache_dir)
        validate_surrogate_bench(document)
    except SurrogateError as error:
        print(f"surrogate bench error: {error}", file=sys.stderr)
        return 2

    print(
        f"grid: {document['params']['grid_points']} points over "
        f"{len(document['params']['configs'])} configs x "
        f"{len(document['params']['benchmarks'])} benchmarks "
        f"(anchors {document['params']['anchor_lengths']})"
    )
    for metric, bounds in sorted(document["errors"].items()):
        print(
            f"{metric}: median {bounds['median_abs_rel_err']:.2%} "
            f"p90 {bounds['p90_abs_rel_err']:.2%} "
            f"max {bounds['max_abs_rel_err']:.2%}"
        )
    throughput = document["throughput"]
    print(
        f"throughput: {throughput['predictions_per_s']:.0f} predictions/s "
        f"({throughput['predictions']} predictions in "
        f"{throughput['wall_s']:.2f}s)"
    )
    print(f"model digest : {document['model_digest'][:12]}")
    print(f"points digest: {document['points_digest'][:12]}")

    if args.out:
        write_surrogate_bench(document, args.out)
        print(f"wrote {args.out}")

    if args.baseline:
        try:
            baseline = load_json(args.baseline)
            report = compare_surrogate_bench(document, baseline)
        except (SurrogateError, OSError) as error:
            print(f"comparison error: {error}", file=sys.stderr)
            return 2
        print(
            f"vs baseline: model digest "
            f"{'match' if report['model_digest_match'] else 'CHANGED'}, "
            f"points digest "
            f"{'match' if report['points_digest_match'] else 'CHANGED'}, "
            f"throughput {'ok' if report['throughput_ok'] else 'BELOW FLOOR'}"
        )
        if not report["ok"]:
            print("FAIL: " + json.dumps({
                k: report[k] for k in (
                    "model_digest_match", "points_digest_match",
                    "error_violations", "throughput_ok",
                )
            }), file=sys.stderr)
            return 1
        print("comparison ok: digests pinned, error bounds and "
              "throughput within policy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
