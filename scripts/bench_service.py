#!/usr/bin/env python3
"""Service load-test CLI (see ``repro.service.bench`` for the harness).

Fires a storm of mixed cached/uncached requests at an in-process
simulation server over real TCP, writes a schema-validated JSON
document, and optionally gates against a committed baseline:

    python scripts/bench_service.py --out BENCH_service.json
    python scripts/bench_service.py --quick \
        --baseline BENCH_service.json

Exit status: 0 on success; 1 when the comparison found a digest change
(pinned inputs must produce byte-identical payloads at any load) or a
performance regression beyond the generous thresholds; 2 on bad usage.
``docs/service.md`` documents the schema and the gate policy.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ServiceError  # noqa: E402  (path setup first)
from repro.io import load_json  # noqa: E402
from repro.service.bench import (  # noqa: E402
    DEFAULT_LATENCY_THRESHOLD,
    DEFAULT_THROUGHPUT_THRESHOLD,
    compare_service_bench,
    run_load_test,
    validate_service_bench,
    write_service_bench,
)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="300-request storm instead of 3000 (CI smoke)")
    parser.add_argument("--requests", type=int, default=None,
                        help="override the storm size")
    parser.add_argument("--connections", type=int, default=8,
                        help="concurrent client connections (default 8)")
    parser.add_argument("--trace-length", type=int, default=4000,
                        help="accesses per simulation (default 4000)")
    parser.add_argument("--seed", type=int, default=0,
                        help="storm plan + workload seed (default 0)")
    parser.add_argument("--pool-shards", type=int, default=2,
                        help="server worker-pool shards (default 2)")
    parser.add_argument("--pool-kind", choices=["thread", "process"],
                        default="thread",
                        help="server worker kind (default thread)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the bench document to FILE")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="compare against a baseline bench document")
    parser.add_argument("--throughput-threshold", type=float,
                        default=DEFAULT_THROUGHPUT_THRESHOLD,
                        help="fail below (1-T) of baseline throughput "
                             f"(default {DEFAULT_THROUGHPUT_THRESHOLD})")
    parser.add_argument("--latency-threshold", type=float,
                        default=DEFAULT_LATENCY_THRESHOLD,
                        help="fail above baseline p50 * (1+T) "
                             f"(default {DEFAULT_LATENCY_THRESHOLD})")
    args = parser.parse_args(argv)

    try:
        document = run_load_test(
            quick=args.quick,
            requests=args.requests,
            connections=args.connections,
            trace_length=args.trace_length,
            seed=args.seed,
            pool_shards=args.pool_shards,
            pool_kind=args.pool_kind,
        )
        validate_service_bench(document)
    except ServiceError as error:
        print(f"bench error: {error}", file=sys.stderr)
        return 2

    metrics = document["metrics"]
    print(
        f"storm: {document['params']['requests']} requests over "
        f"{document['params']['connections']} connections in "
        f"{metrics['wall_s']:.2f}s "
        f"({metrics['requests_per_s']:.0f} req/s)"
    )
    print(
        f"latency: p50 {metrics['p50_ms']:.1f}ms "
        f"p99 {metrics['p99_ms']:.1f}ms mean {metrics['mean_ms']:.1f}ms"
    )
    print(
        f"cache: hit rate {metrics['cache_hit_rate']:.3f}, "
        f"{metrics['coalesced']} coalesced, "
        f"{metrics['simulations_run']} simulations run for "
        f"{document['params']['unique_scenarios']} unique scenarios"
    )
    for record in document["scenarios"]:
        print(
            f"{record['benchmark']}/{record['config']} "
            f"len={record['trace_length']} seed={record['seed']} "
            f"engine={record['engine']}: "
            f"digest={record['payload_sha256'][:12]}"
        )

    if args.out:
        write_service_bench(document, args.out)
        print(f"wrote {args.out}")

    if args.baseline:
        try:
            baseline = load_json(args.baseline)
            report = compare_service_bench(
                document,
                baseline,
                throughput_threshold=args.throughput_threshold,
                latency_threshold=args.latency_threshold,
            )
        except (ServiceError, OSError) as error:
            print(f"comparison error: {error}", file=sys.stderr)
            return 2
        print(
            f"vs baseline: throughput {report['throughput_ratio']:.2f}x, "
            f"p50 latency {report['latency_ratio']:.2f}x, "
            f"{len(report['matched'])} scenario(s) matched"
        )
        if not report["ok"]:
            print(
                "FAIL: " + json.dumps(
                    {
                        k: report[k]
                        for k in (
                            "digests_changed",
                            "throughput_regressed",
                            "latency_regressed",
                        )
                    }
                ),
                file=sys.stderr,
            )
            return 1
        print("comparison ok: digests identical, no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
