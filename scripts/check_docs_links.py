#!/usr/bin/env python3
"""Docs link checker: every relative markdown link must resolve.

Scans markdown files (by default ``README.md`` and everything under
``docs/``) for ``[text](target)`` links and verifies that each relative
target exists on disk.  External links (``http(s)://``, ``mailto:``) and
pure in-page anchors (``#section``) are skipped; a trailing ``#anchor`` on
a file target is stripped before the existence check.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link on stderr).  Used by CI and ``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(path: Path) -> List[Tuple[str, str]]:
    """All (target, reason) pairs for unresolvable links in ``path``."""
    failures: List[Tuple[str, str]] = []
    for target in LINK_RE.findall(path.read_text()):
        if target.startswith(SKIP_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            failures.append((target, f"missing {resolved}"))
    return failures


def default_files(root: Path) -> List[Path]:
    """The default scan set: top-level guides plus everything in docs/."""
    files = [
        root / "README.md",
        root / "EXPERIMENTS.md",
        root / "DESIGN.md",
    ]
    files.extend(sorted((root / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def check(files: Iterable[Path]) -> List[str]:
    """Check every file; returns human-readable failure lines."""
    lines = []
    for path in files:
        for target, reason in broken_links(path):
            lines.append(f"{path}: broken link {target!r} ({reason})")
    return lines


def main(argv: List[str]) -> int:
    """CLI entry point: ``check_docs_links.py [FILE ...]``."""
    root = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in argv] if argv else default_files(root)
    failures = check(files)
    for line in failures:
        print(line, file=sys.stderr)
    if not failures:
        print(f"ok: {len(files)} file(s), all relative links resolve")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
