#!/usr/bin/env python3
"""Explore the STT-RAM device model: the retention/write-cost tradeoff.

Sweeps the retention target from seconds down to microseconds and prints how
thermal stability, write pulse, write energy and the required refresh
interval move — the device-level tradeoff (the paper's Table 1 and refs
[12]/[14]) that the whole architecture is built on.

Run:  python examples/device_exploration.py
"""

from repro.sttram import (
    RetentionLevel,
    block_failure_probability,
    max_refresh_interval,
)
from repro.units import MS, SECOND, US, YEAR, format_energy, format_time

LINE_BITS = 256 * 8


def retention_sweep() -> None:
    print(f"{'retention':>10} {'delta':>6} {'pulse':>8} {'E/line':>8} "
          f"{'refresh@1e-9':>14}")
    print("-" * 52)
    for retention in (10 * YEAR, 1 * SECOND, 40 * MS, 4 * MS, 200 * US, 40 * US):
        level = RetentionLevel.from_retention_time("sweep", retention)
        refresh = max_refresh_interval(retention, LINE_BITS, 1e-9)
        print(
            f"{format_time(retention):>10} "
            f"{level.delta:>6.1f} "
            f"{format_time(level.write_latency):>8} "
            f"{format_energy(level.write_energy_per_line(256)):>8} "
            f"{format_time(refresh):>14}"
        )


def expiry_cliff() -> None:
    """Show why expired blocks cannot be ECC-recovered (the paper's point).

    Under the mean-lifetime convention (Delta = ln(t/tau0)), a 2048-bit
    block accumulates failures long before the mean lifetime — which is why
    quoted retention figures carry margin and why the architecture treats
    its retention window deterministically and refreshes *inside* it.
    """
    print("\nblock failure probability vs age (mean lifetime 40us, 256B line):")
    retention = 40 * US
    for fraction in (1e-9, 1e-7, 1e-5, 1e-3, 0.1):
        age = fraction * retention
        p = block_failure_probability(age, retention, LINE_BITS)
        print(f"  age {format_time(age):>8} ({fraction:.0e} of lifetime): "
              f"P(any bit lost) = {p:.3e}")
    print("-> the failure floor rises steeply: ECC cannot ride out expiry, "
          "so the retention counters refresh well inside the safe window")


def main() -> None:
    retention_sweep()
    expiry_cliff()


if __name__ == "__main__":
    main()
