#!/usr/bin/env python3
"""Quickstart: compare the SRAM baseline with the paper's C1 architecture.

Runs one cache-friendly benchmark (bfs) on the SRAM baseline and on C1 (the
two-part STT-RAM L2 at 4x capacity in the same area) and prints the
comparison the paper's abstract headlines: higher IPC, lower total L2 power.

Run:  python examples/quickstart.py
"""

from repro import baseline_sram, build_workload, config_c1, simulate


def main() -> None:
    workload = build_workload("bfs", num_accesses=20_000, seed=0)
    print(f"workload: {workload.name} "
          f"({workload.num_accesses} accesses, "
          f"{workload.trace.write_fraction:.0%} writes)")

    base = simulate(baseline_sram(), workload)
    c1 = simulate(config_c1(), workload)

    print(f"\n{'metric':<24}{'SRAM baseline':>16}{'C1 (two-part STT)':>20}")
    print("-" * 60)
    print(f"{'IPC':<24}{base.ipc:>16.1f}{c1.ipc:>20.1f}")
    print(f"{'L2 hit rate':<24}{base.l2_hit_rate:>16.3f}{c1.l2_hit_rate:>20.3f}")
    print(f"{'L2 dynamic power (W)':<24}{base.l2_dynamic_power_w:>16.3f}"
          f"{c1.l2_dynamic_power_w:>20.3f}")
    print(f"{'L2 leakage power (W)':<24}{base.l2_leakage_power_w:>16.3f}"
          f"{c1.l2_leakage_power_w:>20.3f}")
    print(f"{'L2 total power (W)':<24}{base.l2_total_power_w:>16.3f}"
          f"{c1.l2_total_power_w:>20.3f}")

    print(f"\nC1 speedup over baseline : {c1.speedup_over(base):.2f}x")
    print(f"C1 total L2 power ratio  : {c1.total_power_ratio(base):.2f}x")
    assert c1.lr_write_share is not None
    print(f"writes absorbed by LR    : {c1.lr_write_share:.0%}")
    print(f"HR->LR migrations        : {c1.migrations_to_lr}")


if __name__ == "__main__":
    main()
