#!/usr/bin/env python3
"""The NVM engineer's toolbox: partitioning, EWT, endurance, wear leveling.

Walks the device/physical-design side of the library that sits underneath
the paper's architecture:

1. subarray-organization exploration (the CACTI-style search) for the
   baseline L2 bank;
2. Early Write Termination savings across flip-rate assumptions;
3. endurance analysis of the LR part under a write-hammering workload,
   with and without rotating wear leveling.

Run:  python examples/nvm_engineering.py
"""

from repro.analysis.lifetime import lifetime_report, relative_lifetime
from repro.areapower.partitioned import explore, optimal_organization
from repro.cache.array import SetAssociativeCache
from repro.cache.wearlevel import WearLevelingCache
from repro.experiments.common import replay_through_l1
from repro.sttram.ewt import EWTModel
from repro.units import KB
from repro.workloads import build_workload


def partitioning() -> None:
    print("-- subarray organization search (384 KB bank, 40 nm) --")
    print(f"{'subarrays':>10}{'rows':>7}{'cols':>7}{'delay(ns)':>11}"
          f"{'energy(pJ)':>12}{'leak(mW)':>10}")
    for org in explore(384 * KB):
        print(f"{org.num_subarrays:>10}{org.rows:>7}{org.cols:>7}"
              f"{org.access_delay_s * 1e9:>11.2f}"
              f"{org.access_energy_j * 1e12:>12.1f}"
              f"{org.leakage_w * 1e3:>10.0f}")
    best = optimal_organization(384 * KB)
    area_aware = optimal_organization(384 * KB, objective="edap")
    print(f"EDP-optimal : {best.num_subarrays} subarrays")
    print(f"EDAP-optimal: {area_aware.num_subarrays} subarrays "
          "(area-aware picks coarser partitioning)")


def early_write_termination() -> None:
    print("\n-- early write termination: energy factor vs flip rate --")
    for flip in (0.1, 0.25, 0.35, 0.5, 0.75):
        fine = EWTModel(flip_fraction=flip, granularity_bits=1)
        coarse = EWTModel(flip_fraction=flip, granularity_bits=8)
        print(f"  flip={flip:4.2f}  per-bit EWT saves {fine.savings():5.1%}, "
              f"8-bit groups save {coarse.savings():5.1%}")


def endurance() -> None:
    print("\n-- LR-part endurance under bfs's write stream --")
    elapsed = 1e-4
    plain = SetAssociativeCache(192 * KB, 2, 256)
    workload = build_workload("bfs", num_accesses=12_000, seed=0)
    replay_through_l1(
        workload, lambda a, w, n: plain.access(a, w, n) if w else None
    )
    leveled = WearLevelingCache(
        SetAssociativeCache(192 * KB, 2, 256), rotation_period_writes=100
    )
    workload = build_workload("bfs", num_accesses=12_000, seed=0)
    replay_through_l1(
        workload, lambda a, w, n: leveled.access(a, w, n) if w else None
    )
    base = lifetime_report(plain, elapsed)
    rotated = lifetime_report(leveled.array, elapsed)
    print(f"  hottest-frame wear      : {base.max_frame_writes} writes "
          f"(imbalance {base.imbalance:.1f}x)")
    print(f"  with rotation           : {rotated.max_frame_writes} writes "
          f"(imbalance {rotated.imbalance:.1f}x, "
          f"{leveled.rotations} rotations)")
    print(f"  lifetime gain           : "
          f"{relative_lifetime(rotated, base):.2f}x")


def main() -> None:
    partitioning()
    early_write_termination()
    endurance()


if __name__ == "__main__":
    main()
