#!/usr/bin/env python3
"""Characterize a *custom* workload, the way the paper's section 4 does.

Defines a new benchmark profile (a synthetic graph-analytics kernel), then
runs the paper's three characterization analyses on it:

1. inter/intra-set write COV (Fig. 3 methodology),
2. write-working-set size over time windows,
3. LR rewrite-interval distribution on the C1 two-part cache (Fig. 6
   methodology),

and finally checks which Table 2 system serves it best.

Run:  python examples/custom_workload.py
"""

from repro import all_configs, simulate
from repro.analysis import (
    rewrite_interval_distribution,
    write_variation,
    write_working_set,
)
from repro.cache.array import SetAssociativeCache
from repro.config import config_c1
from repro.core import build_l2
from repro.experiments.common import replay_through_l1
from repro.units import KB
from repro.workloads import BenchmarkProfile, TraceGenerator, Workload


def make_profile() -> BenchmarkProfile:
    """A pagerank-style kernel: big read-shared graph, tiny skewed WWS."""
    return BenchmarkProfile(
        name="pagerank",
        region=4,
        description="synthetic graph analytics: 1 MB adjacency, hot ranks",
        regs_per_thread=32,
        threads_per_block=256,
        compute_intensity=6.0,
        p_stream_read=0.18,
        p_stream_write=0.02,
        p_hot_read=0.50,
        p_wws_write=0.20,
        p_wws_read=0.04,
        p_local_read=0.04,
        p_local_write=0.02,
        hot_lines=8000,
        hot_alpha=0.7,
        wws_lines=192,
        wws_alpha=1.3,
    )


def main() -> None:
    profile = make_profile()
    trace = TraceGenerator(profile).generate(num_accesses=20_000, seed=1)
    workload = Workload(
        name=profile.name, kernel=profile.kernel_descriptor(), trace=trace
    )
    print(f"generated {workload.name}: {len(trace)} accesses, "
          f"{trace.write_fraction:.0%} writes")

    # 1. write variation on a baseline-geometry L2 (Fig. 3 methodology)
    l2_plain = SetAssociativeCache(384 * KB, 8, 256)
    replay_through_l1(workload, l2_plain.access)
    variation = write_variation(l2_plain).as_percentages()
    print(f"\ninter-set write COV : {variation['inter_set_pct']:.0f}%")
    print(f"intra-set write COV : {variation['intra_set_pct']:.0f}%")

    # 2. write working set per window
    windows = write_working_set(workload.trace, window=5000, line_size=256)
    sizes = [w.distinct_written_lines for w in windows]
    print(f"WWS per 5k-access window (lines): {sizes}")
    print("-> small and stable: a small LR part suffices")

    # 3. rewrite intervals on the two-part C1 cache (Fig. 6 methodology)
    twopart = build_l2(config_c1().l2, track_intervals=True)
    replay_through_l1(workload, twopart.access)
    distribution = rewrite_interval_distribution(twopart.rewrite_intervals)
    print("\nLR rewrite-interval distribution:")
    for label, fraction in distribution.fractions().items():
        print(f"  {label:<8} {fraction:6.1%}")
    print(f"share <= 10us: {distribution.fraction_under(10e-6):.1%} "
          "(microsecond-scale LR retention is enough)")

    # 4. which Table 2 system serves this workload best?
    print("\nsystem comparison:")
    base = None
    for name, config in all_configs().items():
        result = simulate(config, workload)
        if base is None:
            base = result
        print(f"  {name:<13} speedup={result.speedup_over(base):5.2f}  "
              f"total-L2-power={result.total_power_ratio(base):5.2f}x")


if __name__ == "__main__":
    main()
