#!/usr/bin/env python3
"""Multi-kernel application: grids running back-to-back on a warm L2.

The paper notes that GPGPU applications are "divided into grids which run
sequentially; each grid uses the results of the previous grid".  This
example builds a three-kernel pipeline (produce -> transform -> reduce
flavoured profiles) and runs it as one application on the SRAM baseline and
on C1: the L2 stays warm across kernel boundaries, so later kernels hit
more and spend less energy — and the bigger C1 keeps more of the
inter-kernel working set alive.

Run:  python examples/multi_kernel_app.py
"""

from repro.config import baseline_sram, config_c1
from repro.gpu import run_application
from repro.workloads import build_workload


def main() -> None:
    # the same data-heavy kernel repeated models a convergence loop
    # (kmeans-style: every iteration rereads the same points)
    kernels = [
        build_workload("kmeans", num_accesses=6000, seed=0)
        for _ in range(3)
    ]
    print(f"application: 3x kmeans iterations, "
          f"{sum(k.num_accesses for k in kernels)} accesses total\n")

    for config in (baseline_sram(), config_c1()):
        app = run_application(config, kernels)
        print(f"== {config.name} ==")
        for i, kernel in enumerate(app.kernels):
            print(f"  kernel {i}: L2 hit {kernel.l2_hit_rate:.3f}  "
                  f"IPC {kernel.ipc:7.1f}  "
                  f"L2 dyn energy {kernel.l2_dynamic_energy_j * 1e6:6.2f} uJ")
        print(f"  aggregate IPC     : {app.aggregate_ipc:.1f}")
        print(f"  total time        : {app.total_time_s * 1e6:.1f} us")
        print(f"  avg L2 power      : {app.l2_total_power_w:.3f} W\n")

    base = run_application(baseline_sram(), kernels)
    c1 = run_application(config_c1(), kernels)
    print(f"application speedup C1 vs baseline: {c1.speedup_over(base):.2f}x")
    warm_gain = c1.kernels[-1].l2_hit_rate - c1.kernels[0].l2_hit_rate
    print(f"C1 warm-cache hit-rate gain across iterations: +{warm_gain:.3f}")


if __name__ == "__main__":
    main()
