#!/usr/bin/env python3
"""Regenerate the paper's headline numbers in one run.

Runs the full 16-benchmark suite on all five Table 2 systems and prints the
abstract's claims next to what this reproduction measures:

* "improve IPC ... (16% on average)"  -> C1 gmean speedup
* "reducing the average consumed power by 20%" -> C1 total-L2-power ratio
* the naive STT baseline's +5% IPC / +19% energy
* C2/C3 total-power reductions (63.5% / 42% in the paper)

Takes a minute or two.  Run:  python examples/paper_headline.py
"""

from repro.experiments import fig8


def main() -> None:
    print("running the full suite on all five systems (80 simulations)...")
    result = fig8.run(trace_length=15_000)
    print()
    print(result.render())
    extras = result.extras

    print("\npaper claim vs reproduction (shape comparison):")
    rows = [
        ("C1 average IPC gain", "+16%",
         f"{(extras['gmean_speedup_c1'] - 1) * 100:+.0f}%"),
        ("C1 peak IPC gain", ">100%",
         f"{(extras['max_speedup_c1'] - 1) * 100:+.0f}%"),
        ("STT-baseline average IPC gain", "+5%",
         f"{(extras['gmean_speedup_stt'] - 1) * 100:+.0f}%"),
        ("C1 total L2 power", "-20%",
         f"{(extras['gmean_total_c1'] - 1) * 100:+.0f}%"),
        ("C2 total L2 power", "-63.5%",
         f"{(extras['gmean_total_c2'] - 1) * 100:+.0f}%"),
        ("C3 total L2 power", "-42%",
         f"{(extras['gmean_total_c3'] - 1) * 100:+.0f}%"),
        ("STT-baseline total L2 power", "+19%",
         f"{(extras['gmean_total_stt'] - 1) * 100:+.0f}%"),
    ]
    print(f"{'claim':<32}{'paper':>10}{'measured':>10}")
    print("-" * 52)
    for claim, paper, measured in rows:
        print(f"{claim:<32}{paper:>10}{measured:>10}")


if __name__ == "__main__":
    main()
