#!/usr/bin/env python3
"""Design-space exploration with the two-part L2 as a component.

Sweeps the two architectural knobs the paper fixes — LR capacity share and
the migration write threshold — on one write-skewed benchmark and prints how
LR write absorption, migration traffic and L2 dynamic energy move.  This is
the workflow a downstream architect would use to re-tune the design for a
different GPU.

Run:  python examples/design_space.py
"""

from repro.analysis.tables import format_table
from repro.core import TwoPartSTTL2
from repro.experiments.common import replay_through_l1
from repro.units import KB
from repro.workloads import build_workload

TOTAL_CAPACITY = 1536 * KB
LINE = 256


def lr_share_sweep(workload_name: str = "bfs") -> None:
    """How much of the 1536 KB budget should be low-retention?"""
    print(f"-- LR capacity share sweep ({workload_name}, total 1536 KB) --")
    rows = []
    for lr_kb in (48, 96, 192, 384):
        hr_kb = TOTAL_CAPACITY // KB - lr_kb
        # keep HR 7-way-compatible by rounding to the line*way granularity
        workload = build_workload(workload_name, num_accesses=12_000, seed=0)
        l2 = TwoPartSTTL2(
            hr_capacity_bytes=hr_kb * KB - (hr_kb * KB) % (7 * LINE),
            hr_associativity=7,
            lr_capacity_bytes=lr_kb * KB,
            lr_associativity=2,
        )
        replay_through_l1(workload, l2.access)
        rows.append([
            f"{lr_kb}KB",
            round(l2.lr_write_share, 3),
            l2.migrations_to_lr,
            round(l2.stats.hit_rate, 3),
            round(l2.energy.total_j * 1e6, 2),
        ])
    print(format_table(
        ["LR size", "lr_write_share", "migrations", "l2_hit_rate", "dyn_uJ"],
        rows,
    ))


def threshold_sweep(workload_name: str = "bfs") -> None:
    """Reproduce the paper's TH=1 argument interactively."""
    print(f"\n-- migration threshold sweep ({workload_name}, C1 geometry) --")
    rows = []
    for threshold in (1, 2, 3, 7, 15):
        workload = build_workload(workload_name, num_accesses=12_000, seed=0)
        l2 = TwoPartSTTL2(
            hr_capacity_bytes=1344 * KB,
            hr_associativity=7,
            lr_capacity_bytes=192 * KB,
            lr_associativity=2,
            write_threshold=threshold,
        )
        replay_through_l1(workload, l2.access)
        rows.append([
            threshold,
            round(l2.lr_write_share, 3),
            l2.migrations_to_lr,
            l2.total_data_writes,
            round(l2.energy.total_j * 1e6, 2),
        ])
    print(format_table(
        ["threshold", "lr_write_share", "migrations", "data_writes", "dyn_uJ"],
        rows,
    ))
    print("\nTH=1 maximizes LR write absorption at negligible extra write "
          "traffic — the paper's justification for using the dirty bit as "
          "the whole WWS monitor.")


def main() -> None:
    lr_share_sweep()
    threshold_sweep()


if __name__ == "__main__":
    main()
