"""SRAM array model (data or tag).

Per-line read/write energies scale with the number of bits moved plus the
H-tree cost of reaching the mats; leakage scales with capacity; area is cell
area divided by an array efficiency factor (periphery overhead).  Calibrated
against CACTI 6.5 outputs for multi-hundred-KB 40 nm arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.areapower.technology import TechnologyNode, TECH_40NM
from repro.areapower.wire import WireModel
from repro.errors import ConfigurationError
from repro.units import NS

#: Fraction of the array footprint occupied by storage cells (the rest is
#: decoders, sense amps, drivers and routing).
DEFAULT_ARRAY_EFFICIENCY = 0.7


@dataclass(frozen=True)
class SRAMArrayModel:
    """Analytical model of one SRAM array.

    Attributes
    ----------
    capacity_bytes:
        Total storage.
    access_bits:
        Bits moved per access (a full line for data arrays, a tag record for
        tag arrays).
    tech:
        Technology node.
    wire:
        Global wire model.
    array_efficiency:
        Cell-area fraction of the total footprint.
    base_latency:
        Decoder + sense latency floor (s), before wire delay.
    """

    capacity_bytes: int
    access_bits: int
    tech: TechnologyNode = TECH_40NM
    wire: WireModel = field(default_factory=WireModel)
    array_efficiency: float = DEFAULT_ARRAY_EFFICIENCY
    base_latency: float = 0.5 * NS

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.access_bits <= 0:
            raise ConfigurationError("access bits must be positive")
        if not 0 < self.array_efficiency <= 1:
            raise ConfigurationError("array efficiency must be in (0, 1]")
        if self.base_latency < 0:
            raise ConfigurationError("base latency must be non-negative")

    # --- geometry -----------------------------------------------------------

    @cached_property
    def area(self) -> float:
        """Array footprint (m^2) including periphery."""
        cells = self.capacity_bytes * 8
        return cells * self.tech.sram_cell_area / self.array_efficiency

    # --- energy --------------------------------------------------------------

    @cached_property
    def read_energy(self) -> float:
        """Dynamic energy (J) per read access."""
        bit_energy = self.tech.sram_bit_read_energy * self.access_bits
        return bit_energy + self.wire.energy(self.area, self.access_bits)

    @cached_property
    def write_energy(self) -> float:
        """Dynamic energy (J) per write access."""
        bit_energy = self.tech.sram_bit_write_energy * self.access_bits
        return bit_energy + self.wire.energy(self.area, self.access_bits)

    # --- leakage ---------------------------------------------------------------

    @cached_property
    def leakage_power(self) -> float:
        """Static power (W) of the whole array (cells + periphery margin)."""
        cell_leak = self.capacity_bytes * self.tech.sram_leakage_per_byte()
        periphery_factor = 1.0 / self.array_efficiency
        return cell_leak * periphery_factor

    # --- latency --------------------------------------------------------------

    @cached_property
    def access_latency(self) -> float:
        """Access latency (s): decoder/sense floor + one H-tree traversal."""
        return self.base_latency + self.wire.delay(self.area)

    @cached_property
    def read_latency(self) -> float:
        """Alias: SRAM reads and writes are symmetric."""
        return self.access_latency

    @cached_property
    def write_latency(self) -> float:
        """Alias: SRAM reads and writes are symmetric."""
        return self.access_latency
