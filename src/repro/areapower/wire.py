"""Global-wire (H-tree) delay and energy model.

CACTI routes requests from the cache port to mats over an H-tree of global
wires; for large arrays the wire delay and energy are a significant fraction
of the access cost and grow with the square root of array area.  We model a
repeated global wire with per-millimetre delay and energy constants typical
of 40 nm metal stacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import NS, PJ


@dataclass(frozen=True)
class WireModel:
    """Repeated global wire characteristics.

    Attributes
    ----------
    delay_per_mm:
        Signal propagation delay (s) per millimetre of repeated wire.
    energy_per_mm_per_bit:
        Switching energy (J) per bit per millimetre.
    """

    delay_per_mm: float = 0.10 * NS
    energy_per_mm_per_bit: float = 0.06 * PJ

    def __post_init__(self) -> None:
        if self.delay_per_mm <= 0:
            raise ConfigurationError("wire delay must be positive")
        if self.energy_per_mm_per_bit < 0:
            raise ConfigurationError("wire energy must be non-negative")

    @staticmethod
    def htree_length_mm(area_m2: float) -> float:
        """Approximate H-tree route length (mm) for an array of given area.

        Half the perimeter of the bounding square is the classical CACTI
        approximation: ``2 * sqrt(area)``... we use ``sqrt(area)`` each way,
        i.e. one traversal of the array diagonal dimension.
        """
        if area_m2 < 0:
            raise ConfigurationError("area must be non-negative")
        return math.sqrt(area_m2) * 1e3

    def delay(self, area_m2: float) -> float:
        """One-way H-tree delay (s) across an array of ``area_m2``."""
        return self.delay_per_mm * self.htree_length_mm(area_m2)

    def energy(self, area_m2: float, bits: int) -> float:
        """H-tree switching energy (J) moving ``bits`` across the array."""
        if bits < 0:
            raise ConfigurationError("bit count must be non-negative")
        return self.energy_per_mm_per_bit * self.htree_length_mm(area_m2) * bits
