"""Subarray-partitioning explorer (CACTI's core organization search).

The flat models in :mod:`repro.areapower.sram`/:mod:`sttram_array` charge
wire costs with a sqrt(area) H-tree approximation.  Real CACTI instead
*searches* the array organization — how many subarrays to split a bank
into — trading shorter wordlines/bitlines (faster, lower dynamic energy)
against replicated periphery (more area, more leakage).  This module
implements that search in its essential form:

* the bank is split into ``2^k`` identical subarrays arranged in a near-
  square grid; each subarray is ``rows x cols`` cells;
* wordline/bitline delays follow distributed-RC (Elmore) scaling with
  length squared; the H-tree to the selected subarray scales with the
  grid's physical extent;
* each access activates one subarray (fine-grained partitioning also cuts
  dynamic energy);
* the explorer returns the organization minimizing energy-delay product.

It is used for *validation and exploration* (tests assert the classical
trends; downstream users can study organizations) — the calibrated
reproduction path keeps the flat model so the paper-shape calibration in
EXPERIMENTS.md stays exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.errors import ConfigurationError
from repro.units import FJ, NS, is_power_of_two

#: Elmore-delay coefficient for a distributed RC wordline/bitline
#: (seconds per cell-count squared) — calibrated so a 512-cell 40 nm
#: bitline swings in ~0.5 ns.
_RC_PER_CELL2 = 0.5e-9 / 512**2

#: Periphery (decoder + sense amps + drivers) area per subarray, in units
#: of SRAM-cell areas.
_PERIPHERY_CELLS_PER_SUBARRAY = 6000.0

#: Energy to activate one subarray's periphery per access.
_PERIPHERY_ENERGY = 12.0 * FJ * 256


@dataclass(frozen=True)
class Organization:
    """One candidate bank organization.

    Attributes
    ----------
    num_subarrays:
        Power-of-two subarray count.
    rows / cols:
        Cells per subarray.
    access_delay_s / access_energy_j / area_m2 / leakage_w:
        Derived figures for a full line access.
    """

    num_subarrays: int
    rows: int
    cols: int
    access_delay_s: float
    access_energy_j: float
    area_m2: float
    leakage_w: float

    @property
    def edp(self) -> float:
        """Energy-delay product — the default objective."""
        return self.access_delay_s * self.access_energy_j


def _evaluate(
    capacity_bytes: int,
    line_bytes: int,
    num_subarrays: int,
    tech: TechnologyNode,
) -> Organization:
    total_bits = capacity_bytes * 8
    bits_per_subarray = total_bits // num_subarrays
    # near-square subarrays; a line is striped across the activated
    # subarray's columns (column muxing handles narrower lines)
    cols = 2 ** int(math.ceil(math.log2(math.sqrt(bits_per_subarray))))
    cols = min(cols, bits_per_subarray)
    rows = max(1, bits_per_subarray // cols)

    cell_edge = math.sqrt(tech.sram_cell_area)
    # distributed-RC delays grow with length^2 (cells traversed)
    wordline_delay = _RC_PER_CELL2 * cols**2 * (tech.feature_size / 40e-9)
    bitline_delay = _RC_PER_CELL2 * rows**2 * (tech.feature_size / 40e-9)
    # H-tree to the selected subarray: half the grid perimeter
    grid_dim = math.ceil(math.sqrt(num_subarrays))
    subarray_edge = math.sqrt(rows * cols) * cell_edge
    htree_mm = grid_dim * subarray_edge * 1e3
    htree_delay = 0.10 * NS * htree_mm
    decoder_delay = tech.fo4_delay * math.log2(max(2, rows * num_subarrays))
    delay = wordline_delay + bitline_delay + htree_delay + decoder_delay

    # energy: one subarray's bitlines swing + line transfer over the H-tree
    bitline_energy = tech.sram_bit_read_energy * cols * (rows / 512.0)
    htree_energy = 0.06e-12 * htree_mm * line_bytes * 8
    energy = bitline_energy + htree_energy + _PERIPHERY_ENERGY

    # area/leakage: cells + per-subarray periphery replication
    cell_area = total_bits * tech.sram_cell_area
    periphery_area = (
        num_subarrays * _PERIPHERY_CELLS_PER_SUBARRAY * tech.sram_cell_area
    )
    leakage = (
        total_bits * tech.sram_cell_leakage
        + num_subarrays * _PERIPHERY_CELLS_PER_SUBARRAY * tech.sram_cell_leakage
    )
    return Organization(
        num_subarrays=num_subarrays,
        rows=rows,
        cols=cols,
        access_delay_s=delay,
        access_energy_j=energy,
        area_m2=cell_area + periphery_area,
        leakage_w=leakage,
    )


def explore(
    capacity_bytes: int,
    line_bytes: int = 256,
    tech: TechnologyNode = TECH_40NM,
    max_subarrays: int = 256,
) -> List[Organization]:
    """Evaluate every power-of-two subarray count up to ``max_subarrays``."""
    if capacity_bytes <= 0 or line_bytes <= 0:
        raise ConfigurationError("capacity and line size must be positive")
    if not is_power_of_two(max_subarrays):
        raise ConfigurationError("max subarrays must be a power of two")
    organizations: List[Organization] = []
    count = 1
    min_bits = line_bytes * 8
    while count <= max_subarrays and capacity_bytes * 8 // count >= min_bits:  # noqa: E501 - guard keeps one line per subarray
        organizations.append(_evaluate(capacity_bytes, line_bytes, count, tech))
        count *= 2
    if not organizations:
        raise ConfigurationError(
            f"{capacity_bytes}B cannot hold even one {line_bytes}B line"
        )
    return organizations


def optimal_organization(
    capacity_bytes: int,
    line_bytes: int = 256,
    tech: TechnologyNode = TECH_40NM,
    max_subarrays: int = 256,
    objective: str = "edp",
) -> Organization:
    """The optimal organization for a bank of ``capacity_bytes``.

    ``objective`` is ``"edp"`` (energy-delay, CACTI's default flavour) or
    ``"edap"`` (energy-delay-area, which penalizes periphery replication
    and favours coarser partitioning).
    """
    organizations = explore(capacity_bytes, line_bytes, tech, max_subarrays)
    if objective == "edp":
        return min(organizations, key=lambda org: org.edp)
    if objective == "edap":
        return min(organizations, key=lambda org: org.edp * org.area_m2)
    raise ConfigurationError(f"unknown objective {objective!r} (edp or edap)")
