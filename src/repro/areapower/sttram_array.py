"""STT-RAM data array model.

Wraps :class:`repro.sttram.array.STTRAMArrayModel` (device-level energies at a
given retention level) with geometry at a technology node and the H-tree wire
overheads, exposing the same interface as :class:`SRAMArrayModel` so the cache
roll-up can mix the two.

Leakage: MTJ cells do not leak; only the CMOS periphery does.  We charge a
fixed fraction of what an equally sized SRAM array would leak, which matches
the paper's observation that STT leakage is "negligible" but non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from repro.areapower.technology import TechnologyNode, TECH_40NM
from repro.areapower.wire import WireModel
from repro.errors import ConfigurationError
from repro.sttram.cell import STT_CELL_AREA_F2
from repro.sttram.ewt import EWTModel
from repro.sttram.retention import RetentionLevel
from repro.units import NS

#: Periphery leakage as a fraction of same-capacity SRAM leakage.  Chosen so
#: the leakage gap between SRAM and STT matches the paper's total-power
#: results (see EXPERIMENTS.md calibration notes).
PERIPHERY_LEAKAGE_FRACTION = 0.16


@dataclass(frozen=True)
class STTDataArrayModel:
    """Analytical model of one STT-RAM data array.

    Attributes
    ----------
    capacity_bytes:
        Total storage.
    line_size_bytes:
        Bits moved per access = ``line_size_bytes * 8``.
    level:
        Retention operating point (device write/read energy & latency).
    tech:
        Technology node (periphery + cell footprint scale).
    wire:
        Global wire model.
    array_efficiency:
        Cell-area fraction of the total footprint.
    base_latency:
        Decoder + sense latency floor (s).
    """

    capacity_bytes: int
    line_size_bytes: int
    level: RetentionLevel
    tech: TechnologyNode = TECH_40NM
    wire: WireModel = field(default_factory=WireModel)
    array_efficiency: float = 0.7
    base_latency: float = 0.5 * NS
    #: optional early-write-termination circuitry (scales device write energy)
    ewt: Optional[EWTModel] = None

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.line_size_bytes <= 0:
            raise ConfigurationError("line size must be positive")
        if not 0 < self.array_efficiency <= 1:
            raise ConfigurationError("array efficiency must be in (0, 1]")
        if self.base_latency < 0:
            raise ConfigurationError("base latency must be non-negative")

    # --- geometry --------------------------------------------------------

    @cached_property
    def area(self) -> float:
        """Array footprint (m^2); the 1T1J cell is ~4x denser than 6T SRAM."""
        cells = self.capacity_bytes * 8
        cell_area = STT_CELL_AREA_F2 * self.tech.feature_size**2
        return cells * cell_area / self.array_efficiency

    @cached_property
    def access_bits(self) -> int:
        """Bits moved per line access."""
        return self.line_size_bytes * 8

    # --- energy --------------------------------------------------------------

    @cached_property
    def read_energy(self) -> float:
        """Dynamic energy (J) per line read, device + wires."""
        device = self.level.read_energy_per_line(self.line_size_bytes)
        sense_overhead = self.tech.sram_bit_read_energy * self.access_bits * 0.5
        return device + sense_overhead + self.wire.energy(self.area, self.access_bits)

    @cached_property
    def write_energy(self) -> float:
        """Dynamic energy (J) per line write, dominated by the MTJ pulses.

        With EWT, only the flipped-bit groups pay the MTJ pulse energy.
        """
        device = self.level.write_energy_per_line(self.line_size_bytes)
        if self.ewt is not None:
            device *= self.ewt.write_energy_factor
        driver_overhead = self.tech.sram_bit_write_energy * self.access_bits * 0.5
        return device + driver_overhead + self.wire.energy(self.area, self.access_bits)

    # --- leakage --------------------------------------------------------------

    @cached_property
    def leakage_power(self) -> float:
        """Periphery-only leakage (W); MTJ cells themselves do not leak."""
        sram_equivalent = self.capacity_bytes * self.tech.sram_leakage_per_byte()
        return sram_equivalent * PERIPHERY_LEAKAGE_FRACTION

    # --- latency --------------------------------------------------------------

    @cached_property
    def read_latency(self) -> float:
        """Line read latency (s)."""
        return self.base_latency + self.level.read_latency + self.wire.delay(self.area)

    @cached_property
    def write_latency(self) -> float:
        """Line write latency (s), dominated by the MTJ write pulse."""
        return self.base_latency + self.level.write_latency + self.wire.delay(self.area)
