"""Technology-node parameters.

Each :class:`TechnologyNode` carries the handful of process parameters the
analytical cache model needs.  The 40 nm node matches the paper's Table 2
("Technology node: 40nm"); 45 nm and 32 nm neighbours are provided for
scaling studies.  Values are representative of published ITRS/CACTI data at
those nodes, not foundry-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import FJ, NS


@dataclass(frozen=True)
class TechnologyNode:
    """Process parameters for the analytical cache model.

    Attributes
    ----------
    name:
        Display name, e.g. ``"40nm"``.
    feature_size:
        Feature size F (metres).
    vdd:
        Nominal supply voltage (volts).
    sram_cell_area_f2:
        6T SRAM cell area in F^2.
    sram_bit_read_energy:
        Dynamic energy to read one SRAM bit including local bitline swing (J).
    sram_bit_write_energy:
        Dynamic energy to write one SRAM bit (J).
    sram_cell_leakage:
        Leakage power of one 6T cell (W).
    fo4_delay:
        Fanout-of-4 inverter delay (s) — the unit of logic latency.
    """

    name: str
    feature_size: float
    vdd: float
    sram_cell_area_f2: float = 125.0
    sram_bit_read_energy: float = 24.0 * FJ
    sram_bit_write_energy: float = 30.0 * FJ
    sram_cell_leakage: float = 95e-9
    fo4_delay: float = 0.015 * NS

    def __post_init__(self) -> None:
        if self.feature_size <= 0:
            raise ConfigurationError("feature size must be positive")
        if self.vdd <= 0:
            raise ConfigurationError("vdd must be positive")
        if self.sram_cell_area_f2 <= 0:
            raise ConfigurationError("SRAM cell area must be positive")
        if min(self.sram_bit_read_energy, self.sram_bit_write_energy) < 0:
            raise ConfigurationError("bit energies must be non-negative")
        if self.sram_cell_leakage < 0:
            raise ConfigurationError("cell leakage must be non-negative")
        if self.fo4_delay <= 0:
            raise ConfigurationError("FO4 delay must be positive")

    @property
    def sram_cell_area(self) -> float:
        """6T SRAM cell area (m^2)."""
        return self.sram_cell_area_f2 * self.feature_size**2

    def sram_leakage_per_byte(self) -> float:
        """SRAM leakage (W) per byte of storage."""
        return self.sram_cell_leakage * 8

    def scaled(self, name: str, feature_size: float) -> "TechnologyNode":
        """Derive a neighbouring node by classical scaling rules.

        Area scales with F^2, dynamic energy roughly with F (voltage barely
        scales at these nodes), leakage per cell grows ~1.6x per shrink step
        (the paper's motivation: "leakage current increases by 10x per
        technology node" across a couple of generations).
        """
        if feature_size <= 0:
            raise ConfigurationError("feature size must be positive")
        ratio = feature_size / self.feature_size
        leak_ratio = (1.0 / ratio) ** 1.7 if ratio < 1 else ratio**1.7
        leak = self.sram_cell_leakage * (leak_ratio if ratio < 1 else 1.0 / leak_ratio)
        return TechnologyNode(
            name=name,
            feature_size=feature_size,
            vdd=self.vdd,
            sram_cell_area_f2=self.sram_cell_area_f2,
            sram_bit_read_energy=self.sram_bit_read_energy * ratio,
            sram_bit_write_energy=self.sram_bit_write_energy * ratio,
            sram_cell_leakage=leak,
            fo4_delay=self.fo4_delay * ratio,
        )


#: The paper's node.
TECH_40NM = TechnologyNode(name="40nm", feature_size=40e-9, vdd=1.1)

#: Neighbours for scaling studies.
TECH_45NM = TECH_40NM.scaled("45nm", 45e-9)
TECH_32NM = TECH_40NM.scaled("32nm", 32e-9)
