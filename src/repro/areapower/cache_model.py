"""Whole-cache physical roll-up: SRAM tags + SRAM or STT-RAM data.

The paper keeps tag arrays in SRAM even for STT-RAM caches ("we keep tag
array SRAM so it is fast and its area overhead remains insignificant"); this
module mirrors that split.  It produces the per-operation energies, leakage,
area and latency figures the simulator charges per event:

======================  ====================================================
operation               energy charged
======================  ====================================================
tag probe               read of one set's worth of tag records
read hit                tag probe + data line read
write hit               tag probe + data line write
miss (probe only)       tag probe
fill                    tag record write + data line write
======================  ====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Union

from repro.areapower.sram import SRAMArrayModel
from repro.areapower.sttram_array import STTDataArrayModel
from repro.areapower.technology import TechnologyNode, TECH_40NM
from repro.areapower.wire import WireModel
from repro.errors import GeometryError
from repro.sttram.ewt import EWTModel
from repro.sttram.retention import RetentionLevel
from repro.units import format_capacity, format_energy, format_time, is_power_of_two

#: Physical address width assumed for tag sizing.
PHYSICAL_ADDRESS_BITS = 40

#: Valid + dirty + replacement state per tag record, before any retention or
#: write counters the architecture adds.
BASE_STATUS_BITS = 4

DataArray = Union[SRAMArrayModel, STTDataArrayModel]


def _tag_bits(capacity_bytes: int, associativity: int, line_size_bytes: int) -> int:
    """Address tag width for the given geometry."""
    if capacity_bytes % (associativity * line_size_bytes) != 0:
        raise GeometryError(
            f"capacity {capacity_bytes} does not factor into "
            f"{associativity} ways of {line_size_bytes}B lines"
        )
    sets = capacity_bytes // (associativity * line_size_bytes)
    if not is_power_of_two(line_size_bytes):
        raise GeometryError(f"line size must be a power of two, got {line_size_bytes}")
    index_bits = max(0, int(math.log2(sets))) if sets > 1 else 0
    offset_bits = int(math.log2(line_size_bytes))
    return PHYSICAL_ADDRESS_BITS - index_bits - offset_bits


@dataclass(frozen=True)
class CacheEnergyModel:
    """Physical model of one cache array (tags + data).

    Attributes
    ----------
    capacity_bytes, associativity, line_size_bytes:
        Cache geometry.
    sram_data:
        True for an SRAM data array; False selects STT-RAM, in which case
        ``retention_level`` must be given.
    retention_level:
        Device operating point for STT-RAM data arrays.
    extra_status_bits:
        Per-line counters the architecture adds (retention counters, write
        counters); charged to the tag array.
    tech, wire:
        Process and wire models.
    """

    capacity_bytes: int
    associativity: int
    line_size_bytes: int
    sram_data: bool = True
    retention_level: Optional[RetentionLevel] = None
    extra_status_bits: int = 0
    tech: TechnologyNode = TECH_40NM
    wire: WireModel = field(default_factory=WireModel)
    #: optional early-write-termination model for STT-RAM data arrays
    ewt: Optional[EWTModel] = None

    def __post_init__(self) -> None:
        if self.associativity <= 0:
            raise GeometryError("associativity must be positive")
        if self.extra_status_bits < 0:
            raise GeometryError("extra status bits must be non-negative")
        if not self.sram_data and self.retention_level is None:
            raise GeometryError("STT-RAM data arrays need a retention level")
        # Validate geometry eagerly so bad configs fail at construction.
        _tag_bits(self.capacity_bytes, self.associativity, self.line_size_bytes)

    # --- constituent arrays ------------------------------------------------

    @cached_property
    def tag_record_bits(self) -> int:
        """Bits per tag record (tag + status + architectural counters)."""
        return (
            _tag_bits(self.capacity_bytes, self.associativity, self.line_size_bytes)
            + BASE_STATUS_BITS
            + self.extra_status_bits
        )

    @cached_property
    def num_lines(self) -> int:
        """Total line count."""
        return self.capacity_bytes // self.line_size_bytes

    @cached_property
    def tag_array(self) -> SRAMArrayModel:
        """The SRAM tag array; a probe reads one set's tag records."""
        tag_capacity = max(1, (self.num_lines * self.tag_record_bits + 7) // 8)
        return SRAMArrayModel(
            capacity_bytes=tag_capacity,
            access_bits=self.tag_record_bits * self.associativity,
            tech=self.tech,
            wire=self.wire,
        )

    @cached_property
    def data_array(self) -> DataArray:
        """The data array (SRAM or STT-RAM)."""
        if self.sram_data:
            return SRAMArrayModel(
                capacity_bytes=self.capacity_bytes,
                access_bits=self.line_size_bytes * 8,
                tech=self.tech,
                wire=self.wire,
            )
        assert self.retention_level is not None
        return STTDataArrayModel(
            capacity_bytes=self.capacity_bytes,
            line_size_bytes=self.line_size_bytes,
            level=self.retention_level,
            tech=self.tech,
            wire=self.wire,
            ewt=self.ewt,
        )

    # --- per-operation energies --------------------------------------------

    @cached_property
    def tag_probe_energy(self) -> float:
        """Energy (J) of checking one set's tags."""
        return self.tag_array.read_energy

    @cached_property
    def read_hit_energy(self) -> float:
        """Energy (J) of a read hit: tag probe + line read."""
        return self.tag_probe_energy + self.data_array.read_energy

    @cached_property
    def write_hit_energy(self) -> float:
        """Energy (J) of a write hit: tag probe + line write."""
        return self.tag_probe_energy + self.data_array.write_energy

    @cached_property
    def fill_energy(self) -> float:
        """Energy (J) of installing a line: tag write + line write."""
        return self.tag_array.write_energy + self.data_array.write_energy

    @cached_property
    def data_read_energy(self) -> float:
        """Energy (J) of a data-array-only line read (migration source)."""
        return self.data_array.read_energy

    @cached_property
    def data_write_energy(self) -> float:
        """Energy (J) of a data-array-only line write (migration target)."""
        return self.data_array.write_energy

    # --- leakage / area / latency --------------------------------------------

    @cached_property
    def leakage_power(self) -> float:
        """Static power (W): tags + data."""
        return self.tag_array.leakage_power + self.data_array.leakage_power

    @cached_property
    def area(self) -> float:
        """Total footprint (m^2)."""
        return self.tag_array.area + self.data_array.area

    @cached_property
    def read_latency(self) -> float:
        """Read hit latency (s): tags and data probed in series (tag-first)."""
        if self.sram_data:
            data_latency = self.data_array.access_latency
        else:
            data_latency = self.data_array.read_latency
        return self.tag_array.access_latency + data_latency

    @cached_property
    def write_latency(self) -> float:
        """Write hit latency (s)."""
        if self.sram_data:
            data_latency = self.data_array.access_latency
        else:
            data_latency = self.data_array.write_latency
        return self.tag_array.access_latency + data_latency

    def report(self) -> "CachePhysicalReport":
        """Snapshot all derived figures for printing/serialization."""
        return CachePhysicalReport(
            capacity_bytes=self.capacity_bytes,
            associativity=self.associativity,
            line_size_bytes=self.line_size_bytes,
            technology=self.tech.name,
            data_technology="SRAM" if self.sram_data else (
                f"STT-RAM[{self.retention_level.name}]"
                if self.retention_level else "STT-RAM"
            ),
            area_m2=self.area,
            leakage_w=self.leakage_power,
            read_hit_energy_j=self.read_hit_energy,
            write_hit_energy_j=self.write_hit_energy,
            read_latency_s=self.read_latency,
            write_latency_s=self.write_latency,
        )


@dataclass(frozen=True)
class CachePhysicalReport:
    """Printable physical summary of one cache array."""

    capacity_bytes: int
    associativity: int
    line_size_bytes: int
    technology: str
    data_technology: str
    area_m2: float
    leakage_w: float
    read_hit_energy_j: float
    write_hit_energy_j: float
    read_latency_s: float
    write_latency_s: float

    def __str__(self) -> str:
        return (
            f"{format_capacity(self.capacity_bytes)} {self.associativity}-way "
            f"{self.line_size_bytes}B-line {self.data_technology} @ {self.technology}: "
            f"area={self.area_m2 * 1e6:.3f}mm2 leak={self.leakage_w * 1e3:.1f}mW "
            f"Erd={format_energy(self.read_hit_energy_j)} "
            f"Ewr={format_energy(self.write_hit_energy_j)} "
            f"trd={format_time(self.read_latency_s)} "
            f"twr={format_time(self.write_latency_s)}"
        )
