"""CACTI-6.5-like analytical area/energy/latency model.

The paper used "CACTI 6.5 slightly modified for STT-RAM" to obtain per-access
energies, leakage and area for its cache configurations.  This subpackage
provides a deliberately simplified analytical stand-in: mat-based geometry,
technology scaling, H-tree wire overheads, and separate SRAM / STT-RAM data
array models sharing an SRAM tag array (the paper keeps tags in SRAM).

Only *relative* quantities enter the paper's results (the 4x density ratio,
dynamic-energy ratios between SRAM and the two STT retention levels, and the
leakage gap), so the model is calibrated to published CACTI outputs rather
than derived from layout.
"""

from repro.areapower.technology import TechnologyNode, TECH_40NM, TECH_32NM, TECH_45NM
from repro.areapower.wire import WireModel
from repro.areapower.sram import SRAMArrayModel
from repro.areapower.sttram_array import STTDataArrayModel
from repro.areapower.cache_model import CacheEnergyModel, CachePhysicalReport
from repro.areapower.partitioned import (
    Organization,
    explore,
    optimal_organization,
)

__all__ = [
    "TechnologyNode",
    "TECH_40NM",
    "TECH_32NM",
    "TECH_45NM",
    "WireModel",
    "SRAMArrayModel",
    "STTDataArrayModel",
    "CacheEnergyModel",
    "CachePhysicalReport",
    "Organization",
    "explore",
    "optimal_organization",
]
