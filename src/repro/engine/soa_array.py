"""Flat structure-of-arrays cache array for the ``soa`` replay engine.

:class:`SoaCacheArray` is a drop-in replacement for
:class:`repro.cache.array.SetAssociativeCache` that stores all per-line
state in flat parallel Python lists instead of one ``CacheBlock`` object
per line (docs/engine.md documents each vector).  Every method reproduces
the object array's semantics *exactly* — same counters bumped in the same
order, same LRU recency updates, same shared-outcome caching — so the two
engines stay access-for-access equivalent.  Steady-state demand accesses
allocate nothing: hit/miss outcomes are cached and all state updates are
list-element writes.

Cold paths (analysis, snapshots, fault audits) still expect
``CacheBlock``-shaped objects and ``CacheSet``-shaped sets; the
:class:`SoaBlockView` and :class:`SoaSetView` proxies provide write-through
views over the flat vectors so inherited object-model code (refresh
sweeps, state snapshots, per-set analyses) runs unmodified on SoA state.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.address import AddressMapper
from repro.cache.array import AccessOutcome
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError, GeometryError
from repro.tracing import NULL_TRACER, TraceCollector


class SoaBlockView:
    """Write-through ``CacheBlock`` facade over one flat-array slot.

    Mirrors every :class:`repro.cache.block.CacheBlock` attribute as a
    property pair reading/writing the owning array's vectors, so cold-path
    code that mutates blocks in place (e.g. a refresh rewriting
    ``insert_time``) works identically on either engine.
    """

    __slots__ = ("_array", "_slot")

    def __init__(self, array: "SoaCacheArray", slot: int) -> None:
        self._array = array
        self._slot = slot

    @property
    def tag(self) -> int:
        """Line tag (-1 when invalid)."""
        return self._array.tag_vec[self._slot]

    @tag.setter
    def tag(self, value: int) -> None:
        self._array.tag_vec[self._slot] = value

    @property
    def valid(self) -> bool:
        """Whether the slot holds a live line."""
        return self._array.valid_vec[self._slot]

    @valid.setter
    def valid(self, value: bool) -> None:
        self._array.valid_vec[self._slot] = value

    @property
    def dirty(self) -> bool:
        """Whether the line carries unwritten-back data."""
        return self._array.dirty_vec[self._slot]

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._array.dirty_vec[self._slot] = value

    @property
    def write_count(self) -> int:
        """Saturating per-residency write counter (WWS input)."""
        return self._array.write_count_vec[self._slot]

    @write_count.setter
    def write_count(self, value: int) -> None:
        self._array.write_count_vec[self._slot] = value

    @property
    def total_writes(self) -> int:
        """Writes to the current resident (resets on fill)."""
        return self._array.total_writes_vec[self._slot]

    @total_writes.setter
    def total_writes(self, value: int) -> None:
        self._array.total_writes_vec[self._slot] = value

    @property
    def total_reads(self) -> int:
        """Reads of the current resident (resets on fill)."""
        return self._array.total_reads_vec[self._slot]

    @total_reads.setter
    def total_reads(self, value: int) -> None:
        self._array.total_reads_vec[self._slot] = value

    @property
    def last_write_time(self) -> float:
        """Timestamp of the last dirty write (0.0 if never written)."""
        return self._array.last_write_time_vec[self._slot]

    @last_write_time.setter
    def last_write_time(self, value: float) -> None:
        self._array.last_write_time_vec[self._slot] = value

    @property
    def last_access_time(self) -> float:
        """Timestamp of the last demand access."""
        return self._array.last_access_time_vec[self._slot]

    @last_access_time.setter
    def last_access_time(self, value: float) -> None:
        self._array.last_access_time_vec[self._slot] = value

    @property
    def insert_time(self) -> float:
        """Fill (or last refresh) timestamp — the retention clock anchor."""
        return self._array.insert_time_vec[self._slot]

    @insert_time.setter
    def insert_time(self, value: float) -> None:
        self._array.insert_time_vec[self._slot] = value


class SoaSetView:
    """Read-mostly ``CacheSet`` facade over one set's slice of the vectors.

    Provides the subset of the :class:`repro.cache.cacheset.CacheSet` API
    that analysis and maintenance code consumes (``lookup``, ``blocks``,
    ``set_writes``, ``frame_writes``, ``occupancy``, ``valid_blocks``).
    """

    __slots__ = ("_array", "_index")

    def __init__(self, array: "SoaCacheArray", index: int) -> None:
        self._array = array
        self._index = index

    @property
    def associativity(self) -> int:
        """Number of ways."""
        return self._array.associativity

    @property
    def blocks(self) -> List[SoaBlockView]:
        """Write-through block views for every way of this set."""
        array = self._array
        base = self._index * array.associativity
        return array.block_views[base:base + array.associativity]

    @property
    def set_writes(self) -> int:
        """Total writes observed by this set (inter-set COV input)."""
        return self._array.set_writes_vec[self._index]

    @property
    def frame_writes(self) -> List[int]:
        """Cumulative cell-wear writes per physical way (never reset)."""
        array = self._array
        base = self._index * array.associativity
        return array.frame_writes_vec[base:base + array.associativity]

    def lookup(self, tag: int) -> Optional[int]:
        """Return the way holding ``tag``, or None (no side effects)."""
        return self._array.tag_to_way[self._index].get(tag)

    def valid_blocks(self) -> List[SoaBlockView]:
        """All currently valid lines (analysis helper)."""
        return [b for b in self.blocks if b.valid]

    def occupancy(self) -> int:
        """Number of valid ways."""
        array = self._array
        base = self._index * array.associativity
        return sum(
            1 for slot in range(base, base + array.associativity)
            if array.valid_vec[slot]
        )


class SoaCacheArray:
    """Structure-of-arrays set-associative cache (LRU only).

    Same constructor signature and behavioural contract as
    :class:`repro.cache.array.SetAssociativeCache`; see the module
    docstring and docs/engine.md for the layout.  Only the ``lru``
    replacement policy is supported — the engine registry falls back to
    the object engine for anything else.
    """

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        line_size: int,
        policy: str = "lru",
        name: str = "cache",
        write_allocate: bool = True,
        write_counter_saturation: int = 0,
        seed: int = 0,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        if capacity_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise GeometryError("capacity, associativity and line size must be positive")
        if capacity_bytes % (associativity * line_size) != 0:
            raise GeometryError(
                f"{capacity_bytes}B does not factor into {associativity} ways "
                f"of {line_size}B lines"
            )
        if policy != "lru":
            raise ConfigurationError(
                f"SoaCacheArray supports only the 'lru' policy, got {policy!r}"
            )
        num_sets = capacity_bytes // (associativity * line_size)
        num_lines = num_sets * associativity
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.write_allocate = write_allocate
        self.write_counter_saturation = write_counter_saturation
        self.mapper = AddressMapper(line_size=line_size, num_sets=num_sets)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = CacheStats()

        # --- the flat state vectors (one element per physical line) -------
        #: line tags; -1 marks an invalid slot
        self.tag_vec: List[int] = [-1] * num_lines
        #: validity bits
        self.valid_vec: List[bool] = [False] * num_lines
        #: dirty bits
        self.dirty_vec: List[bool] = [False] * num_lines
        #: saturating per-residency write counters (WWS / retention inputs)
        self.write_count_vec: List[int] = [0] * num_lines
        #: per-residency write totals (intra-set variation input)
        self.total_writes_vec: List[int] = [0] * num_lines
        #: per-residency read totals
        self.total_reads_vec: List[int] = [0] * num_lines
        #: last dirty-write timestamps (retention-clock input)
        self.last_write_time_vec: List[float] = [0.0] * num_lines
        #: last demand-access timestamps
        self.last_access_time_vec: List[float] = [0.0] * num_lines
        #: fill/refresh timestamps (retention-clock anchor)
        self.insert_time_vec: List[float] = [0.0] * num_lines
        #: cumulative cell-wear writes per frame (never reset by fills)
        self.frame_writes_vec: List[int] = [0] * num_lines
        #: per-set write totals
        self.set_writes_vec: List[int] = [0] * num_sets
        #: replacement-victim count per set (eviction-pressure profile)
        self.set_evictions: List[int] = [0] * num_sets
        #: per-set tag -> way maps (the associative lookup)
        self.tag_to_way: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        #: per-set LRU recency lists, LRU at the front / MRU at the back
        self.lru: List[List[int]] = [
            list(range(associativity)) for _ in range(num_sets)
        ]

        #: write-through cold-path views (one per line / per set)
        self.block_views: List[SoaBlockView] = [
            SoaBlockView(self, slot) for slot in range(num_lines)
        ]
        self.sets: List[SoaSetView] = [
            SoaSetView(self, index) for index in range(num_sets)
        ]

        # shared-outcome caches, exactly like the object array's
        self._hit_outcomes: dict = {}
        self._miss_outcomes: dict = {}

        # hoisted geometry scalars for the inlined split
        self._offset_bits = self.mapper.offset_bits
        self._pow2 = self.mapper.pow2_sets
        self._set_bits = self.mapper._set_bits
        self._set_mask = self.mapper._set_mask
        self._num_sets = num_sets

    # --- geometry ---------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self._num_sets

    @property
    def num_lines(self) -> int:
        """Total number of lines."""
        return self._num_sets * self.associativity

    # --- demand path ------------------------------------------------------

    def _split_fast(self, address: int) -> Tuple[int, int]:
        """Inlined :meth:`AddressMapper.split` (same checks, same results)."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        line = address >> self._offset_bits
        if self._pow2:
            return line >> self._set_bits, line & self._set_mask
        return divmod(line, self._num_sets)[0], line % self._num_sets

    def probe(self, address: int) -> bool:
        """Presence check without side effects (no stats, no LRU update)."""
        tag, index = self._split_fast(address)
        return tag in self.tag_to_way[index]

    def _hit_outcome(self, index: int, way: int) -> AccessOutcome:
        """The shared plain-hit outcome for ``(index, way)``."""
        key = index * self.associativity + way
        outcome = self._hit_outcomes.get(key)
        if outcome is None:
            outcome = AccessOutcome(hit=True, set_index=index, way=way)
            self._hit_outcomes[key] = outcome
        return outcome

    def access(
        self, address: int, is_write: bool, now: float = 0.0, allocate: bool = True
    ) -> AccessOutcome:
        """Perform a demand access with allocation on miss.

        Semantics identical to
        :meth:`repro.cache.array.SetAssociativeCache.access`.
        """
        tag, index = self._split_fast(address)
        way = self.tag_to_way[index].get(tag)
        stats = self.stats

        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        if way is not None:
            slot = index * self.associativity + way
            if is_write:
                stats.write_hits += 1
                # CacheBlock.record_write + CacheSet write accounting
                self.dirty_vec[slot] = True
                self.total_writes_vec[slot] += 1
                saturate_at = self.write_counter_saturation
                if saturate_at <= 0 or self.write_count_vec[slot] < saturate_at:
                    self.write_count_vec[slot] += 1
                self.last_write_time_vec[slot] = now
                self.last_access_time_vec[slot] = now
                self.set_writes_vec[index] += 1
                self.frame_writes_vec[slot] += 1
            else:
                stats.read_hits += 1
                self.total_reads_vec[slot] += 1
                self.last_access_time_vec[slot] = now
            order = self.lru[index]
            order.remove(way)
            order.append(way)
            return self._hit_outcome(index, way)

        # miss
        if not allocate or (is_write and not self.write_allocate):
            outcome = self._miss_outcomes.get(index)
            if outcome is None:
                outcome = AccessOutcome(hit=False, set_index=index, way=-1)
                self._miss_outcomes[index] = outcome
            return outcome
        return self._fill(index, tag, now, dirty=is_write)

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> AccessOutcome:
        """Install a line without a demand access (e.g. migration target)."""
        tag, index = self._split_fast(address)
        way = self.tag_to_way[index].get(tag)
        if way is not None:
            if dirty:
                slot = index * self.associativity + way
                self.dirty_vec[slot] = True
                self.total_writes_vec[slot] += 1
                saturate_at = self.write_counter_saturation
                if saturate_at <= 0 or self.write_count_vec[slot] < saturate_at:
                    self.write_count_vec[slot] += 1
                self.last_write_time_vec[slot] = now
                self.last_access_time_vec[slot] = now
                self.set_writes_vec[index] += 1
                self.frame_writes_vec[slot] += 1
            order = self.lru[index]
            order.remove(way)
            order.append(way)
            return self._hit_outcome(index, way)
        return self._fill(index, tag, now, dirty=dirty)

    def _fill(self, index: int, tag: int, now: float, dirty: bool) -> AccessOutcome:
        """Install into the victim way (invalid ways first, else LRU)."""
        assoc = self.associativity
        base = index * assoc
        valid = self.valid_vec
        way = -1
        for candidate in range(assoc):
            if not valid[base + candidate]:
                way = candidate
                break
        if way < 0:
            way = self.lru[index][0]
        slot = base + way
        evicted_address: Optional[int] = None
        evicted_dirty = False
        tag_map = self.tag_to_way[index]
        if valid[slot]:
            victim_tag = self.tag_vec[slot]
            if self._pow2:
                victim_line = (victim_tag << self._set_bits) | index
            else:
                victim_line = victim_tag * self._num_sets + index
            evicted_address = victim_line << self._offset_bits
            evicted_dirty = self.dirty_vec[slot]
            self.set_evictions[index] += 1
            if evicted_dirty:
                self.stats.evictions_dirty += 1
            else:
                self.stats.evictions_clean += 1
            if self.tracer.enabled:
                self.tracer.count(
                    f"cache.{self.name}.evictions_dirty" if evicted_dirty
                    else f"cache.{self.name}.evictions_clean"
                )
            del tag_map[victim_tag]
        # CacheBlock.fill + CacheSet.install
        self.tag_vec[slot] = tag
        valid[slot] = True
        self.dirty_vec[slot] = dirty
        initial = 1 if dirty else 0
        self.write_count_vec[slot] = initial
        self.total_writes_vec[slot] = initial
        self.total_reads_vec[slot] = 0
        self.last_write_time_vec[slot] = now if dirty else 0.0
        self.last_access_time_vec[slot] = now
        self.insert_time_vec[slot] = now
        tag_map[tag] = way
        order = self.lru[index]
        order.remove(way)
        order.append(way)
        self.frame_writes_vec[slot] += 1
        if dirty:
            self.set_writes_vec[index] += 1
        self.stats.fills += 1
        return AccessOutcome(
            hit=False,
            set_index=index,
            way=way,
            filled=True,
            evicted_address=evicted_address,
            evicted_dirty=evicted_dirty,
        )

    # --- maintenance ------------------------------------------------------

    def _reset_slot(self, index: int, way: int) -> None:
        """CacheSet.invalidate_way: drop the tag mapping and zero the slot."""
        slot = index * self.associativity + way
        if self.valid_vec[slot]:
            self.tag_to_way[index].pop(self.tag_vec[slot], None)
        self.tag_vec[slot] = -1
        self.valid_vec[slot] = False
        self.dirty_vec[slot] = False
        self.write_count_vec[slot] = 0
        self.total_writes_vec[slot] = 0
        self.total_reads_vec[slot] = 0
        self.last_write_time_vec[slot] = 0.0
        self.last_access_time_vec[slot] = 0.0
        self.insert_time_vec[slot] = 0.0

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns True when something was dropped."""
        tag, index = self._split_fast(address)
        way = self.tag_to_way[index].get(tag)
        if way is None:
            return False
        self._reset_slot(index, way)
        self.stats.invalidations += 1
        return True

    def evict(self, address: int) -> Optional[Tuple[int, bool]]:
        """Remove a line, returning ``(line_address, was_dirty)`` if present."""
        tag, index = self._split_fast(address)
        way = self.tag_to_way[index].get(tag)
        if way is None:
            return None
        dirty = self.dirty_vec[index * self.associativity + way]
        self._reset_slot(index, way)
        if dirty:
            self.stats.evictions_dirty += 1
        else:
            self.stats.evictions_clean += 1
        return self.mapper.rebuild(tag, index), dirty

    def extract(self, address: int) -> Optional[Tuple[int, bool]]:
        """Remove a line for migration, without eviction/invalidation stats."""
        tag, index = self._split_fast(address)
        way = self.tag_to_way[index].get(tag)
        if way is None:
            return None
        dirty = self.dirty_vec[index * self.associativity + way]
        self._reset_slot(index, way)
        return self.mapper.rebuild(tag, index), dirty

    def block_at(self, address: int) -> Optional[SoaBlockView]:
        """The block view holding ``address``, or None (analysis helper)."""
        tag, index = self._split_fast(address)
        way = self.tag_to_way[index].get(tag)
        if way is None:
            return None
        return self.block_views[index * self.associativity + way]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for index in range(self._num_sets):
            base = index * self.associativity
            for way in range(self.associativity):
                if self.valid_vec[base + way]:
                    if self.dirty_vec[base + way]:
                        dirty += 1
                    self._reset_slot(index, way)
        return dirty

    # --- analysis views ---------------------------------------------------

    def iter_blocks(self) -> Iterator[Tuple[int, int, SoaBlockView]]:
        """Yield ``(set_index, way, block_view)`` for every way."""
        assoc = self.associativity
        views = self.block_views
        for index in range(self._num_sets):
            base = index * assoc
            for way in range(assoc):
                yield index, way, views[base + way]

    def per_set_eviction_counts(self) -> List[int]:
        """Cumulative replacement victims per set (eviction-pressure map)."""
        return list(self.set_evictions)

    def per_set_write_counts(self) -> List[int]:
        """Cumulative writes per set (inter-set variation input)."""
        return list(self.set_writes_vec)

    def per_way_write_counts(self) -> List[List[int]]:
        """Current residents' write counts per set (intra-set variation)."""
        assoc = self.associativity
        return [
            self.total_writes_vec[index * assoc:(index + 1) * assoc]
            for index in range(self._num_sets)
        ]

    def per_frame_write_counts(self) -> List[List[int]]:
        """Cumulative cell-wear writes per physical frame (endurance input)."""
        assoc = self.associativity
        return [
            self.frame_writes_vec[index * assoc:(index + 1) * assoc]
            for index in range(self._num_sets)
        ]

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        return sum(self.valid_vec) / self.num_lines
