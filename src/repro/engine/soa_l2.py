"""SoA-backed L2 models: monolithic hot paths over flat state vectors.

:class:`SoaTwoPartL2` and :class:`SoaUniformL2` subclass the object-model
L2 classes, swapping the behavioural array for
:class:`~repro.engine.soa_array.SoaCacheArray` through the
``ARRAY_FACTORY`` seam and overriding only the demand hot path with a
monolithic, allocation-free transcription of the object code.  Everything
rare — misses, migrations, refresh sweeps, snapshots — is *inherited
unchanged* and runs against the SoA arrays through their drop-in API and
write-through block views, which keeps the equivalence surface small
(docs/engine.md explains the proof protocol).

Each inlined path preserves the object model's exact operation order,
including float accumulation order, so results are byte-identical, not
just statistically equivalent.

Unsupported features raise at construction instead of silently diverging:
enabled tracers (per-access trace hooks would have to be replicated in
every inlined path) and fault injectors (per-access fault hooks likewise).
The engine registry (:mod:`repro.engine`) falls back to the object engine
for those configurations.
"""

from __future__ import annotations

from repro.core.interface import L2AccessResult
from repro.core.refresh import RefreshActions, RefreshEngine
from repro.core.twopart import TwoPartSTTL2
from repro.core.uniform import UniformL2
from repro.engine.soa_array import SoaCacheArray
from repro.errors import ConfigurationError, GeometryError


class SoaRefreshEngine(RefreshEngine):
    """Retention sweeps over the flat vectors instead of per-block views.

    A sweep walks every frame of an array; on the SoA arrays the inherited
    sweeps would build one :class:`~repro.engine.soa_array.SoaBlockView`
    per frame and pay a property call per field.  These overrides read the
    vectors directly.  Scan order is identical (sets in index order, ways
    in way order), so the action lists — and therefore the refresh
    decisions the oracle diffs — match the object engine exactly.
    """

    def _sweep_lr(self, now: float, actions: RefreshActions) -> None:
        self.stats.scans += 1
        spec = self.lr_spec
        assert spec is not None  # caller guards
        retention = spec.retention_s
        refresh_age = spec.refresh_age_s
        array = self.lr_array
        rebuild = array.mapper.rebuild
        valid = array.valid_vec
        tags = array.tag_vec
        ins = array.insert_time_vec
        lwt = array.last_write_time_vec
        assoc = array.associativity
        lost = actions.lr_lost
        refresh = actions.lr_refresh
        expiries = refreshes = 0
        slot = 0
        for index in range(array.num_sets):
            for _ in range(assoc):
                if valid[slot]:
                    last = ins[slot]
                    written = lwt[slot]
                    if written > last:
                        last = written
                    age = now - last
                    if age >= retention:
                        lost.append(rebuild(tags[slot], index))
                        expiries += 1
                    elif age >= refresh_age:
                        refresh.append(rebuild(tags[slot], index))
                        refreshes += 1
                slot += 1
        self.stats.lr_expiries += expiries
        self.stats.lr_refreshes += refreshes

    def _sweep_hr(self, now: float, actions: RefreshActions) -> None:
        spec = self.hr_spec
        refresh_age = spec.refresh_age_s
        array = self.hr_array
        rebuild = array.mapper.rebuild
        valid = array.valid_vec
        tags = array.tag_vec
        dirty = array.dirty_vec
        ins = array.insert_time_vec
        lwt = array.last_write_time_vec
        assoc = array.associativity
        drop_dirty = actions.hr_drop_dirty
        drop_clean = actions.hr_drop_clean
        dirty_drops = clean_drops = 0
        slot = 0
        for index in range(array.num_sets):
            for _ in range(assoc):
                if valid[slot]:
                    last = ins[slot]
                    written = lwt[slot]
                    if written > last:
                        last = written
                    if now - last >= refresh_age:
                        address = rebuild(tags[slot], index)
                        if dirty[slot]:
                            drop_dirty.append(address)
                            dirty_drops += 1
                        else:
                            drop_clean.append(address)
                            clean_drops += 1
                slot += 1
        self.stats.hr_expirations_dirty += dirty_drops
        self.stats.hr_expirations_clean += clean_drops


class SoaUniformL2(UniformL2):
    """Uniform (SRAM / naive STT) L2 with a monolithic SoA demand path."""

    ARRAY_FACTORY = SoaCacheArray

    def __init__(self, *args, **kwargs) -> None:
        """Same signature as :class:`UniformL2`; rejects enabled tracers."""
        tracer = kwargs.get("tracer")
        if tracer is not None and tracer.enabled:
            raise ConfigurationError(
                "the soa engine does not support per-access tracing; "
                "use the object engine"
            )
        super().__init__(*args, **kwargs)
        array = self.array
        self._soa_offset_bits = array.mapper.offset_bits
        self._soa_pow2 = array.mapper.pow2_sets
        self._soa_set_bits = array.mapper._set_bits
        self._soa_set_mask = array.mapper._set_mask
        self._soa_num_sets = array.num_sets
        self._soa_assoc = array.associativity

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        """Inlined transcription of :meth:`UniformL2.access` over vectors."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        line = address >> self._soa_offset_bits
        if self._soa_pow2:
            tag = line >> self._soa_set_bits
            index = line & self._soa_set_mask
        else:
            tag, index = divmod(line, self._soa_num_sets)
        array = self.array
        way = array.tag_to_way[index].get(tag)
        stats = array.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if way is not None:
            slot = index * self._soa_assoc + way
            if is_write:
                stats.write_hits += 1
                array.dirty_vec[slot] = True
                array.total_writes_vec[slot] += 1
                array.write_count_vec[slot] += 1  # saturation is 0 here
                array.last_write_time_vec[slot] = now
                array.last_access_time_vec[slot] = now
                array.set_writes_vec[index] += 1
                array.frame_writes_vec[slot] += 1
                energy = self._write_hit_energy
                latency = self._write_latency
                self.data_writes += 1
            else:
                stats.read_hits += 1
                array.total_reads_vec[slot] += 1
                array.last_access_time_vec[slot] = now
                energy = self._read_hit_energy
                latency = self._read_latency
            order = array.lru[index]
            order.remove(way)
            order.append(way)
            self._energy.demand_j += energy
            return L2AccessResult(
                hit=True,
                part="uniform",
                latency_s=latency,
                energy_j=energy,
                dram_writebacks=0,
            )
        # miss: the uniform L2 always allocates (write-allocate array)
        outcome = array._fill(index, tag, now, dirty=is_write)
        writebacks = 1 if outcome.evicted_dirty else 0
        probe = self._tag_probe_energy
        fill = self._fill_energy
        self.data_writes += 1
        self._energy.demand_j += probe
        self._energy.fill_j += fill
        return L2AccessResult(
            hit=False,
            part="miss",
            latency_s=self._read_latency,
            energy_j=probe + fill,
            dram_fetch=True,
            dram_writebacks=writebacks,
        )


class SoaTwoPartL2(TwoPartSTTL2):
    """The paper's two-part L2 with a monolithic SoA demand path.

    ``access`` fuses maintenance gating, the HR/LR locate (with retention
    expiry), the search-selector accounting and the three hit serve paths
    into one function over the flat vectors.  Misses, migrations and due
    refresh sweeps delegate to the inherited object-model methods, which
    operate on the SoA arrays through their compatible API.
    """

    ARRAY_FACTORY = SoaCacheArray

    def __init__(self, *args, **kwargs) -> None:
        """Same signature as :class:`TwoPartSTTL2`; rejects tracers/faults."""
        tracer = kwargs.get("tracer")
        if tracer is not None and tracer.enabled:
            raise ConfigurationError(
                "the soa engine does not support per-access tracing; "
                "use the object engine"
            )
        if kwargs.get("faults") is not None:
            raise ConfigurationError(
                "the soa engine does not support fault injection; "
                "use the object engine"
            )
        super().__init__(*args, **kwargs)

        lr, hr = self.lr_array, self.hr_array
        # geometry scalars (both parts share the line size / offset bits)
        self._soa_offset_bits = hr.mapper.offset_bits
        self._lr_pow2 = lr.mapper.pow2_sets
        self._lr_bits = lr.mapper._set_bits
        self._lr_mask = lr.mapper._set_mask
        self._lr_nsets = lr.num_sets
        self._lr_assoc = lr.associativity
        self._hr_pow2 = hr.mapper.pow2_sets
        self._hr_bits = hr.mapper._set_bits
        self._hr_mask = hr.mapper._set_mask
        self._hr_nsets = hr.num_sets
        self._hr_assoc = hr.associativity
        self._line_low_mask = ~(self.line_size - 1)
        # physics scalars (fixed at construction, hoisted from the models)
        self._lr_w_en = self.lr_model.data_write_energy
        self._lr_r_en = self.lr_model.data_read_energy
        self._lr_w_lat = self.lr_model.data_array.write_latency
        self._lr_r_lat = self.lr_model.data_array.read_latency
        self._hr_w_en = self.hr_model.data_write_energy
        self._hr_r_en = self.hr_model.data_read_energy
        self._hr_w_lat = self.hr_model.data_array.write_latency
        self._hr_r_lat = self.hr_model.data_array.read_latency
        # retention thresholds (None disables LR expiry: SRAM LR part)
        self._lr_ret = None if self.lr_spec is None else self.lr_spec.retention_s
        self._hr_ret = self.hr_spec.retention_s
        # selector / monitor state
        self._sel_stats = self.selector.stats
        self._sequential = self.selector.sequential
        self._mon_stats = self.monitor.stats
        self._threshold = self.monitor.threshold
        self._hr_sat = hr.write_counter_saturation
        # re-home the refresh engine on the flat vectors; freshly built, so
        # its counters and schedule match the one super().__init__ made
        previous = self.refresh_engine
        self.refresh_engine = SoaRefreshEngine(
            lr, hr, self.lr_spec, self.hr_spec,
            tracer=previous.tracer, faults=previous.faults,
        )

    def _migrate_and_write(
        self, line: int, now: float, energy: float, tag_latency: float
    ) -> L2AccessResult:
        """HR write hit above threshold: move the line to LR, write there."""
        latency, writebacks = self._migrate_fast(line, now, energy, tag_latency)
        return L2AccessResult(
            hit=True, part="lr",
            latency_s=latency,
            energy_j=energy + self._hr_r_en + self._lr_w_en,
            dram_writebacks=writebacks,
            migrated=True,
        )

    def _migrate_fast(
        self, line: int, now: float, energy: float, tag_latency: float
    ) -> tuple:
        """:meth:`TwoPartSTTL2._migrate_and_write` minus the result object.

        Returns ``(latency_s, dram_writebacks)`` for the fused replay loop.
        The HR demand write-hit accounting and the extract are inlined over
        the vectors (the caller already located the line in HR); the buffer
        push, LR fill and any LR-eviction return ride the shared methods —
        they are rare and already SoA-backed.
        """
        writebacks = 0
        migration_energy = self._hr_r_en  # read out of HR
        hr = self.hr_array
        lineno = line >> self._soa_offset_bits
        if self._hr_pow2:
            tag = lineno >> self._hr_bits
            index = lineno & self._hr_mask
        else:
            tag, index = divmod(lineno, self._hr_nsets)
        way = hr.tag_to_way[index][tag]
        slot = index * self._hr_assoc + way
        # the HR demand write-hit is accounted before the line leaves
        # (keeps the merged hit/miss statistics exact)
        stats = hr.stats
        stats.writes += 1
        stats.write_hits += 1
        hr.dirty_vec[slot] = True
        hr.total_writes_vec[slot] += 1
        saturate_at = self._hr_sat
        if saturate_at <= 0 or hr.write_count_vec[slot] < saturate_at:
            hr.write_count_vec[slot] += 1
        hr.last_write_time_vec[slot] = now
        hr.last_access_time_vec[slot] = now
        hr.set_writes_vec[index] += 1
        hr.frame_writes_vec[slot] += 1
        order = hr.lru[index]
        order.remove(way)
        order.append(way)
        hr._reset_slot(index, way)  # extract: no eviction/invalidation stats
        writebacks += self._buffer_push(self.hr_to_lr, line, True, now)
        self.migrations_to_lr += 1
        fill = self.lr_array.fill(line, now, dirty=True)
        migration_energy += self._lr_w_en
        self.lr_data_writes += 1
        if fill.evicted_address is not None:
            writebacks += self._return_to_hr(
                fill.evicted_address, fill.evicted_dirty, now
            )
        self._energy.demand_j += energy
        self._energy.migration_j += migration_energy
        return tag_latency + self._lr_w_lat, writebacks

    def maintenance(self, now: float) -> int:
        """Drain buffers and run due retention sweeps; returns write-backs.

        Hot path: both buffer drains are inlined deque pops and the
        due-check is two float compares.  When a sweep *is* due (rare —
        once per retention tick), the inherited object-model maintenance
        runs unchanged over the SoA arrays' block views.
        """
        engine = self.refresh_engine
        if now >= engine._next_lr_scan or now >= engine._next_hr_scan:
            return TwoPartSTTL2.maintenance(self, now)
        buffer = self.hr_to_lr
        entries = buffer._entries
        if entries:
            stats = buffer.stats
            while entries and entries[0][2] <= now:
                entries.popleft()
                stats.drains += 1
        buffer = self.lr_to_hr
        entries = buffer._entries
        if entries:
            stats = buffer.stats
            while entries and entries[0][2] <= now:
                entries.popleft()
                stats.drains += 1
        return 0

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        """Monolithic transcription of :meth:`TwoPartSTTL2.access`."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        line = address & self._line_low_mask
        writebacks = self.maintenance(now)
        lineno = line >> self._soa_offset_bits

        # --- locate (with access-path retention expiry) -------------------
        part = None
        lr = self.lr_array
        if self._lr_pow2:
            tag = lineno >> self._lr_bits
            index = lineno & self._lr_mask
        else:
            tag, index = divmod(lineno, self._lr_nsets)
        way = lr.tag_to_way[index].get(tag)
        if way is not None:
            slot = index * self._lr_assoc + way
            retention = self._lr_ret
            if retention is not None:
                last = lr.insert_time_vec[slot]
                written = lr.last_write_time_vec[slot]
                if written > last:
                    last = written
                if now - last >= retention:
                    if lr.dirty_vec[slot]:
                        self.data_losses += 1
                    lr.invalidate(line)
                    way = None
            if way is not None:
                part = "lr"
        if part is None:
            hr = self.hr_array
            if self._hr_pow2:
                hr_tag = lineno >> self._hr_bits
                hr_index = lineno & self._hr_mask
            else:
                hr_tag, hr_index = divmod(lineno, self._hr_nsets)
            hr_way = hr.tag_to_way[hr_index].get(hr_tag)
            if hr_way is not None:
                hr_slot = hr_index * self._hr_assoc + hr_way
                last = hr.insert_time_vec[hr_slot]
                written = hr.last_write_time_vec[hr_slot]
                if written > last:
                    last = written
                if now - last >= self._hr_ret:
                    if hr.dirty_vec[hr_slot]:
                        self.data_losses += 1
                    hr.invalidate(line)
                else:
                    part = "hr"

        # --- search-selector accounting (sequential or parallel) ----------
        selector = self._sel_stats
        selector.accesses += 1
        first_hit = part == ("lr" if is_write else "hr")
        if not self._sequential:
            if first_hit:
                selector.first_probe_hits += 1
            selector.second_probes += 1
            probes = 2
            tag_latency = self._hr_tag_access_latency
        elif first_hit:
            selector.first_probe_hits += 1
            probes = 1
            tag_latency = self._hr_tag_access_latency
        else:
            selector.second_probes += 1
            probes = 2
            tag_latency = 2 * self._hr_tag_access_latency
        energy = self._probe_energy_table[is_write][1 if probes < 2 else 2]

        # --- serve --------------------------------------------------------
        if part == "lr":
            stats = lr.stats
            if is_write:
                if self.track_intervals:
                    written = lr.last_write_time_vec[slot]
                    if written > 0:
                        self.rewrite_intervals.append(now - written)
                stats.writes += 1
                stats.write_hits += 1
                lr.dirty_vec[slot] = True
                lr.total_writes_vec[slot] += 1
                lr.write_count_vec[slot] += 1  # LR array never saturates
                lr.last_write_time_vec[slot] = now
                lr.last_access_time_vec[slot] = now
                lr.set_writes_vec[index] += 1
                lr.frame_writes_vec[slot] += 1
                order = lr.lru[index]
                order.remove(way)
                order.append(way)
                energy += self._lr_w_en
                latency = tag_latency + self._lr_w_lat
                self.lr_data_writes += 1
            else:
                stats.reads += 1
                stats.read_hits += 1
                lr.total_reads_vec[slot] += 1
                lr.last_access_time_vec[slot] = now
                order = lr.lru[index]
                order.remove(way)
                order.append(way)
                energy += self._lr_r_en
                latency = tag_latency + self._lr_r_lat
            self._energy.demand_j += energy
            result = L2AccessResult(
                hit=True, part="lr", latency_s=latency, energy_j=energy
            )
        elif part == "hr":
            stats = hr.stats
            if not is_write:
                stats.reads += 1
                stats.read_hits += 1
                hr.total_reads_vec[hr_slot] += 1
                hr.last_access_time_vec[hr_slot] = now
                order = hr.lru[hr_index]
                order.remove(hr_way)
                order.append(hr_way)
                energy += self._hr_r_en
                self._energy.demand_j += energy
                result = L2AccessResult(
                    hit=True, part="hr",
                    latency_s=tag_latency + self._hr_r_lat,
                    energy_j=energy,
                )
            else:
                monitor = self._mon_stats
                monitor.writes_observed += 1
                if hr.write_count_vec[hr_slot] >= self._threshold:
                    monitor.migrations_triggered += 1
                    result = self._migrate_and_write(line, now, energy, tag_latency)
                else:
                    stats.writes += 1
                    stats.write_hits += 1
                    hr.dirty_vec[hr_slot] = True
                    hr.total_writes_vec[hr_slot] += 1
                    saturate_at = self._hr_sat
                    if saturate_at <= 0 or hr.write_count_vec[hr_slot] < saturate_at:
                        hr.write_count_vec[hr_slot] += 1
                    hr.last_write_time_vec[hr_slot] = now
                    hr.last_access_time_vec[hr_slot] = now
                    hr.set_writes_vec[hr_index] += 1
                    hr.frame_writes_vec[hr_slot] += 1
                    order = hr.lru[hr_index]
                    order.remove(hr_way)
                    order.append(hr_way)
                    energy += self._hr_w_en
                    latency = tag_latency + self._hr_w_lat
                    self.hr_data_writes += 1
                    self._energy.demand_j += energy
                    result = L2AccessResult(
                        hit=True, part="hr", latency_s=latency, energy_j=energy
                    )
        else:
            result = self._serve_miss(line, is_write, now, energy, tag_latency)
        result.dram_writebacks += writebacks
        result.probes = probes
        return result
