"""Replay engine registry: the ``object``, ``soa`` and ``sharded`` backends.

The repository ships three interchangeable simulation engines (selected
with ``--engine`` on the CLI, see docs/engine.md):

``object``
    The reference model — one Python object per cache block/set, plain
    method dispatch everywhere.  Supports every feature: tracing, fault
    injection, invariant checkers, immediate L1 fills, the ``stt-relaxed``
    L2 and externally-built L2 instances.

``soa``
    The batched structure-of-arrays model — flat vectors for tags,
    valid/dirty bits, write counters and retention timestamps, plus a
    fused replay loop with zero per-access allocation in steady state.
    Byte-identical results to ``object`` on every supported
    configuration, roughly an order of magnitude faster.  Unsupported
    features fall back (see :func:`resolve_engine`).

``sharded``
    The multi-process model (:mod:`repro.shard`, docs/sharding.md): the
    bank hash partitions the trace into per-shard sub-streams, each
    replayed by an independent per-shard simulator (SoA when supported)
    on a process pool, with a deterministic shard-order merge.
    ``--shards 1`` is byte-identical to ``soa``; it is **opt-in only** —
    ``engine=None`` never auto-selects it, because its ``--shards N``
    mode is a documented modeling approximation and its process-pool
    overhead only pays off on multi-core hosts at ~1M+ accesses.

:func:`make_simulator` is the one entry point callers need: it resolves
the requested engine against the feature set actually in use and returns
a ready-to-run simulator.
"""

from __future__ import annotations

from typing import Optional

from repro.config import GPUConfig
from repro.errors import ConfigurationError
from repro.workloads.trace import Workload

#: Engine used when the caller does not ask for one explicitly.
DEFAULT_ENGINE = "soa"

#: Every selectable engine name, reference model first.
ENGINES = ("object", "soa", "sharded")


def _soa_blockers(
    config: GPUConfig,
    l2: Optional[object],
    deferred_l1_fills: bool,
    tracer: Optional[object],
    invariant_checker: Optional[object],
) -> list:
    """Feature names in play that the ``soa`` engine does not implement."""
    blockers = []
    if config.l2.kind == "stt-relaxed":
        blockers.append("stt-relaxed L2")
    if l2 is not None:
        blockers.append("externally-built L2")
    if not deferred_l1_fills:
        blockers.append("immediate L1 fills")
    if tracer is not None and getattr(tracer, "enabled", True):
        blockers.append("tracing")
    if invariant_checker is not None:
        blockers.append("invariant checker")
    return blockers


def resolve_engine(
    config: GPUConfig,
    engine: Optional[str] = None,
    l2: Optional[object] = None,
    deferred_l1_fills: bool = True,
    tracer: Optional[object] = None,
    invariant_checker: Optional[object] = None,
) -> str:
    """Pick the engine to run: the caller's choice, validated, or the default.

    ``engine=None`` means "no preference": the default (``soa``) is used
    when the run's feature set supports it, with a silent fallback to
    ``object`` otherwise — so tracing or fault-injection callers keep
    working unchanged.  An explicit ``engine="soa"`` on an unsupported
    feature set raises :class:`~repro.errors.ConfigurationError` instead
    of silently degrading, and an unknown name always raises.
    """
    if engine is not None and engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    blockers = _soa_blockers(
        config, l2, deferred_l1_fills, tracer, invariant_checker
    )
    # sharded workers resolve engines themselves, but the sharded front
    # end shares the soa blocker list: every blocked feature needs a
    # single in-process L2 object, which a process-pool run cannot offer
    if engine in ("soa", "sharded") and blockers:
        raise ConfigurationError(
            f"the {engine} engine does not support: " + ", ".join(blockers)
            + "; use engine='object'"
        )
    if engine is None:
        # never auto-select sharded: opt-in only (see the module docstring)
        return "object" if blockers else DEFAULT_ENGINE
    return engine


def build_engine_l2(engine, config, track_intervals=False, tech=None,
                    tracer=None):
    """Build the L2 model for ``engine`` from an :class:`L2Config`.

    Thin indirection over :func:`repro.core.factory.build_l2` so callers
    holding only an engine name need not know the class mapping.
    """
    from repro.areapower.technology import TECH_40NM
    from repro.core.factory import build_l2

    return build_l2(
        config,
        track_intervals=track_intervals,
        tech=tech if tech is not None else TECH_40NM,
        tracer=tracer,
        engine=engine,
    )


def make_simulator(
    config: GPUConfig,
    workload: Workload,
    engine: Optional[str] = None,
    **kwargs,
):
    """Construct the simulator for ``engine`` (resolved per the run's features).

    Accepts the same keyword arguments as
    :class:`repro.gpu.simulator.GPUSimulator`; the ones the ``soa`` engine
    cannot honour (a pre-built ``l2``, ``deferred_l1_fills=False``, an
    enabled ``tracer``, an ``invariant_checker``) force or validate the
    engine choice via :func:`resolve_engine`.  ``shards``/``workers`` are
    accepted only with ``engine="sharded"``.
    """
    resolved = resolve_engine(
        config,
        engine=engine,
        l2=kwargs.get("l2"),
        deferred_l1_fills=kwargs.get("deferred_l1_fills", True),
        tracer=kwargs.get("tracer"),
        invariant_checker=kwargs.get("invariant_checker"),
    )
    if resolved != "sharded" and (
        "shards" in kwargs or "workers" in kwargs
    ):
        raise ConfigurationError(
            "shards/workers are sharded-engine options; pass "
            "engine='sharded' to use them"
        )
    if resolved == "sharded":
        from repro.shard import ShardedGPUSimulator

        shard_kwargs = {
            key: value for key, value in kwargs.items()
            if key in ("track_intervals", "time_dilation", "start_time_s",
                       "shards", "workers")
        }
        return ShardedGPUSimulator(config, workload, **shard_kwargs)
    if resolved == "soa":
        from repro.engine.soa_sim import SoaGPUSimulator

        soa_kwargs = {
            key: value for key, value in kwargs.items()
            if key in ("track_intervals", "time_dilation", "start_time_s")
        }
        return SoaGPUSimulator(config, workload, **soa_kwargs)
    from repro.gpu.simulator import GPUSimulator

    return GPUSimulator(config, workload, **kwargs)
