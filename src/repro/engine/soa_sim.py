"""Fused structure-of-arrays replay loop (the ``soa`` engine's simulator).

:class:`SoaGPUSimulator` subclasses :class:`repro.gpu.simulator.GPUSimulator`
and overrides only :meth:`run`: the trace is pre-decoded with NumPy (flags,
routes, L1 tag/set/line splits) and the per-record work — L1 write policies,
MSHR coalescing, deferred fills, read-only caches, the L2 serve paths, bank
scheduling and DRAM — is fused into one interpreter loop over flat per-SM
state vectors with zero per-access object allocation.  The L2 state lives
in the SoA model built by :func:`repro.core.factory.build_l2`
(``engine="soa"``); its demand paths are transcribed *inline* into a
per-L2-kind ``process`` closure here, so the hot path makes no Python
calls at all — only the rare cold paths (writes that migrate, refresh
sweeps, buffer force-pops) delegate to the SoA L2's methods, which operate
on the same flat vectors.

Equivalence contract (docs/engine.md): every counter update, float
accumulation and state transition happens in the object engine's order, so
the :class:`~repro.gpu.metrics.SimulationResult` is byte-identical.  Two
bookkeeping liberties keep that true while staying fast:

* Scalar *integer* counters (cache stats, selector/monitor tallies, DRAM
  request counts) accumulate in loop locals and fold into the component
  objects after the loop — integer addition commutes with the cold paths'
  direct mutations of the same fields.
* *Float* accumulators (L2 demand/fill energy, DRAM total wait) are
  order-sensitive, so they live in locals that are written back to the
  owning object before every cold-path call and re-read after — the
  accumulation order is exactly the object engine's.

The one intentional divergence: per-line L1/read-only *wear* counters
(``set_writes``/``frame_writes``/``set_evictions`` and per-block
timestamps) are not maintained — nothing downstream reads them for L1 or
the read-only caches — while aggregate ``CacheStats``, ``L1Stats``,
``MSHRStats``, bank and DRAM counters are flushed back into the real
component objects at the end of the run.  L2 vectors, LRU orders and
buffers are mutated in place and need no flush.

Not supported (the registry falls back to the object engine): tracing,
invariant checkers, fault injection, immediate (non-deferred) L1 fills
and the ``stt-relaxed`` L2 kind.
"""

from __future__ import annotations

from math import inf

import numpy as np

from repro.config import GPUConfig
from repro.core.factory import build_l2
from repro.engine.soa_l2 import SoaTwoPartL2
from repro.errors import SimulationError
from repro.gpu.metrics import SimulationResult
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.simulator import (
    BANK_WAIT_CAP_FACTOR,
    L1_HIT_CYCLES,
    TIME_DILATION,
    GPUSimulator,
)
from repro.workloads.trace import (
    FLAG_CONST,
    FLAG_LOCAL,
    FLAG_TEXTURE,
    FLAG_WRITE,
    Workload,
)


class SoaGPUSimulator(GPUSimulator):
    """One (workload, configuration) simulation on the fused SoA hot loop."""

    def __init__(
        self,
        config: GPUConfig,
        workload: Workload,
        track_intervals: bool = False,
        time_dilation: float = TIME_DILATION,
        start_time_s: float = 0.0,
    ) -> None:
        """Build the SoA L2 and the standard component set around it.

        Narrower signature than :class:`GPUSimulator` on purpose: the
        features the extra parameters enable (tracers, checkers, pre-built
        L2s, immediate fills) are object-engine-only, and
        :func:`repro.engine.make_simulator` routes them there.
        """
        l2 = build_l2(
            config.l2, track_intervals=track_intervals, tech=config.tech,
            engine="soa",
        )
        super().__init__(
            config,
            workload,
            l2=l2,
            track_intervals=track_intervals,
            time_dilation=time_dilation,
            deferred_l1_fills=True,
            start_time_s=start_time_s,
        )

    def run(self) -> SimulationResult:  # noqa: C901 - deliberately monolithic
        """Replay the trace on the fused loop and roll up IPC and L2 power."""
        config = self.config
        kernel = self.workload.kernel
        occupancy = compute_occupancy(kernel, config)
        cycle_s = 1.0 / config.core_clock_hz
        dt = kernel.compute_intensity * cycle_s / config.num_sms
        noc_rt_cycles = self.noc.round_trip_cycles(
            request_bytes=8, response_bytes=config.l2.line_size
        )
        l1_hit_s = L1_HIT_CYCLES * cycle_s
        noc_rt_s = noc_rt_cycles * cycle_s
        wait_cap_factor = BANK_WAIT_CAP_FACTOR
        time_dilation = self.time_dilation
        max_sm = config.num_sms

        trace = self.workload.trace
        sm_np = trace.sm
        addr_np = trace.address
        flags_np = trace.flags
        n = len(sm_np)
        if n and int(sm_np.max()) >= max_sm:
            bad = int(sm_np[int(np.argmax(sm_np >= max_sm))])
            raise SimulationError(
                f"trace SM id {bad} exceeds configured {max_sm} SMs"
            )

        # --- vectorized decode -------------------------------------------
        sm_list = sm_np.tolist()
        write_list = ((flags_np & FLAG_WRITE) != 0).tolist()
        local_list = ((flags_np & FLAG_LOCAL) != 0).tolist()
        const_np = (flags_np & FLAG_CONST) != 0
        texture_np = (flags_np & FLAG_TEXTURE) != 0
        # route 0 = L1 data, 1 = const cache, 2 = texture cache; a record
        # with both read-only flags goes to const (the object loop tests
        # FLAG_CONST first)
        route_np = np.zeros(n, dtype=np.int8)
        route_np[texture_np] = 2
        route_np[const_np] = 1
        route_list = route_np.tolist()

        def _decode(off_bits: int, pow2: bool, set_bits: int, set_mask: int,
                    nsets: int):
            """Line-address / tag / set-index columns for one geometry."""
            line_no = addr_np >> off_bits
            if pow2:
                tags = line_no >> set_bits
                sets_ = line_no & set_mask
            else:
                tags = line_no // nsets
                sets_ = line_no % nsets
            return (line_no << off_bits).tolist(), tags.tolist(), sets_.tolist()

        l1_geom = self.l1s[0].array.mapper
        l1_off = l1_geom.offset_bits
        l1_pow2 = l1_geom.pow2_sets
        l1_bits = l1_geom._set_bits
        l1_mask = l1_geom._set_mask
        l1_nsets = self.l1s[0].array.num_sets
        l1_assoc = self.l1s[0].array.associativity
        l1_line_list, l1_tag_list, l1_set_list = _decode(
            l1_off, l1_pow2, l1_bits, l1_mask, l1_nsets
        )
        have_const = bool(const_np.any())
        have_texture = bool(texture_np.any())
        if have_const:
            cg = self.const_caches[0].array.mapper
            c_nsets = self.const_caches[0].array.num_sets
            c_line_list, c_tag_list, c_set_list = _decode(
                cg.offset_bits, cg.pow2_sets, cg._set_bits, cg._set_mask,
                c_nsets,
            )
        if have_texture:
            tg = self.texture_caches[0].array.mapper
            t_nsets = self.texture_caches[0].array.num_sets
            t_line_list, t_tag_list, t_set_list = _decode(
                tg.offset_bits, tg.pow2_sets, tg._set_bits, tg._set_mask,
                t_nsets,
            )

        # --- flat per-SM state -------------------------------------------
        S = max_sm
        n_l1_slots = S * l1_nsets * l1_assoc
        l1_tags = [-1] * n_l1_slots
        l1_valid = [False] * n_l1_slots
        l1_dirty = [False] * n_l1_slots
        l1_t2w = [dict() for _ in range(S * l1_nsets)]
        l1_lru = [list(range(l1_assoc)) for _ in range(S * l1_nsets)]
        pend = [dict() for _ in range(S)]      # line -> [ready, fill_dirty]
        min_ready = [inf] * S
        mshr_map = [dict() for _ in range(S)]  # line -> merged count
        mshr_entries = self.l1s[0].mshr.num_entries
        mshr_max_merged = self.l1s[0].mshr.max_merged

        # per-SM counters, flushed into the component objects at the end
        ar_reads = [0] * S; ar_writes = [0] * S
        ar_rh = [0] * S; ar_wh = [0] * S
        ar_fills = [0] * S; ar_evc = [0] * S; ar_evd = [0] * S
        ar_inv = [0] * S
        g_gr = [0] * S; g_gw = [0] * S; g_lr = [0] * S; g_lw = [0] * S
        g_wev = [0] * S; g_lwb = [0] * S; g_coal = [0] * S; g_stall = [0] * S
        m_alloc = [0] * S; m_coal = [0] * S; m_stall = [0] * S; m_comp = [0] * S

        c_assoc = self.const_caches[0].array.associativity
        t_assoc = self.texture_caches[0].array.associativity
        if have_const:
            c_tags = [-1] * (S * c_nsets * c_assoc)
            c_valid = [False] * (S * c_nsets * c_assoc)
            c_t2w = [dict() for _ in range(S * c_nsets)]
            c_lru = [list(range(c_assoc)) for _ in range(S * c_nsets)]
        if have_texture:
            t_tags = [-1] * (S * t_nsets * t_assoc)
            t_valid = [False] * (S * t_nsets * t_assoc)
            t_t2w = [dict() for _ in range(S * t_nsets)]
            t_lru = [list(range(t_assoc)) for _ in range(S * t_nsets)]
        c_reads = [0] * S; c_rh = [0] * S; c_fills = [0] * S; c_evc = [0] * S
        t_reads = [0] * S; t_rh = [0] * S; t_fills = [0] * S; t_evc = [0] * S

        # --- shared-component locals -------------------------------------
        bank_busy = self.banks._busy_until
        bank_shift = self.banks._line_shift
        bank_mask = self.banks._bank_mask
        bank_req = 0
        bank_conf = 0
        bank_wait_sum = 0.0
        # per-bank accumulators (lists mutate in place, no nonlocal needed);
        # the scalar aggregates above are kept separate so the aggregate
        # float fold order matches the object engine exactly
        n_banks = self.banks.num_banks
        bankv_req = [0] * n_banks
        bankv_conf = [0] * n_banks
        bankv_wait = [0.0] * n_banks

        dram = self.dram
        dram_stats = dram.stats
        dram_busy = dram._busy_until
        dram_busy_s = dram._busy_s
        dram_open = dram._open_row
        dram_line_shift = dram._line_shift
        dram_channels = dram.num_channels
        dram_row_size = dram.row_size
        dram_service = dram.service_time_s
        dram_base_lat = dram.base_latency_s
        dram_rowhit_lat = dram.row_hit_latency_s
        dram_max_wait = dram.max_wait_s
        # the inline DRAM read path assumes line-interleaved channels and
        # no tracer; both always hold for SoA-built simulators
        dram_inline = dram_line_shift is not None and not dram.tracer.enabled
        dram_access = dram.access
        n_dram_r = n_dram_rh = n_dram_w = 0
        dram_wait_s = dram_stats.total_wait_s

        now = self.start_time_s
        reads = 0
        stall_sum_s = 0.0
        read_latency_sum_s = 0.0
        l2_requests = 0
        l2_service_sum_s = 0.0
        dram_writebacks = 0
        sm = 0  # current record's SM, read by the closure below

        l2 = self.l2
        led = l2._energy

        if isinstance(l2, SoaTwoPartL2):
            # ---- fused two-part L2 + bank + DRAM request handler --------
            lr = l2.lr_array
            hr = l2.hr_array
            lr_t2w = lr.tag_to_way; lr_lru_v = lr.lru; lr_stats = lr.stats
            lr_dirty_v = lr.dirty_vec; lr_wc = lr.write_count_vec
            lr_tw = lr.total_writes_vec; lr_tr = lr.total_reads_vec
            lr_lwt = lr.last_write_time_vec; lr_lat_v = lr.last_access_time_vec
            lr_ins = lr.insert_time_vec
            lr_setw = lr.set_writes_vec; lr_frw = lr.frame_writes_vec
            lr_invalidate = lr.invalidate
            hr_t2w = hr.tag_to_way; hr_lru_v = hr.lru; hr_stats = hr.stats
            hr_tags_v = hr.tag_vec; hr_valid_v = hr.valid_vec
            hr_dirty_v = hr.dirty_vec; hr_wc = hr.write_count_vec
            hr_tw = hr.total_writes_vec; hr_tr = hr.total_reads_vec
            hr_lwt = hr.last_write_time_vec; hr_lat_v = hr.last_access_time_vec
            hr_ins = hr.insert_time_vec
            hr_setw = hr.set_writes_vec; hr_frw = hr.frame_writes_vec
            hr_setev = hr.set_evictions
            hr_invalidate = hr.invalidate
            off2 = l2._soa_offset_bits
            line_low_mask = l2._line_low_mask
            lr_pow2 = l2._lr_pow2; lr_bits = l2._lr_bits
            lr_smask = l2._lr_mask; lr_nsets = l2._lr_nsets
            lr_assoc = l2._lr_assoc
            hr_pow2 = l2._hr_pow2; hr_bits = l2._hr_bits
            hr_smask = l2._hr_mask; hr_nsets = l2._hr_nsets
            hr_assoc = l2._hr_assoc
            lr_w_en = l2._lr_w_en; lr_r_en = l2._lr_r_en
            lr_w_lat = l2._lr_w_lat; lr_r_lat = l2._lr_r_lat
            hr_w_en = l2._hr_w_en; hr_r_en = l2._hr_r_en
            hr_w_lat = l2._hr_w_lat; hr_r_lat = l2._hr_r_lat
            hr_fill_en = l2.hr_model.fill_energy
            tag_lat1 = l2._hr_tag_access_latency
            tag_lat2 = 2 * l2._hr_tag_access_latency
            probe_tbl = l2._probe_energy_table
            pe_r1 = probe_tbl[False][1]; pe_r2 = probe_tbl[False][2]
            pe_w1 = probe_tbl[True][1]; pe_w2 = probe_tbl[True][2]
            lr_ret = l2._lr_ret; hr_ret = l2._hr_ret
            sel = l2._sel_stats; sequential = l2._sequential
            mon = l2._mon_stats; threshold = l2._threshold
            hr_sat = l2._hr_sat
            track_ints = l2.track_intervals
            rewrite_intervals = l2.rewrite_intervals
            migrate = l2._migrate_fast
            eng = l2.refresh_engine
            l2_maint = l2.maintenance
            next_lr = eng._next_lr_scan
            next_hr = eng._next_hr_scan
            next_scan = next_lr if next_lr < next_hr else next_hr
            h2l_entries = l2.hr_to_lr._entries
            h2l_stats = l2.hr_to_lr.stats
            h2l_pop = h2l_entries.popleft
            l2h_entries = l2.lr_to_hr._entries
            l2h_stats = l2.lr_to_hr.stats
            l2h_pop = l2h_entries.popleft
            # scalar counter accumulators (see the module docstring)
            n_sel_acc = n_sel_first = n_sel_second = 0
            n_lr_w = n_lr_wh = n_lr_r = n_lr_rh = 0
            n_hr_r = n_hr_rh = n_hr_w = n_hr_wh = 0
            n_hr_evd = n_hr_evc = n_hr_fill = 0
            n_mon_w = n_mon_mig = 0
            n_lr_dw = n_hr_dw = n_wb_tot = 0
            demand_j = led.demand_j
            fill_j = led.fill_j

            def process(kind: int, raddr: int) -> None:
                """Serve one L2 request end-to-end (0 fetch/1 write/2 wb).

                Inline transcription of :meth:`SoaTwoPartL2.access` (with
                :meth:`TwoPartSTTL2._serve_miss` unrolled into it) plus the
                object replay loop's bank/DRAM/stall block; reads ``now``
                and ``sm`` from the enclosing loop iteration.
                """
                nonlocal l2_requests, l2_service_sum_s, dram_writebacks
                nonlocal stall_sum_s, read_latency_sum_s
                nonlocal bank_req, bank_conf, bank_wait_sum
                nonlocal n_dram_r, n_dram_rh, n_dram_w, dram_wait_s
                nonlocal next_scan
                nonlocal n_sel_acc, n_sel_first, n_sel_second
                nonlocal n_lr_w, n_lr_wh, n_lr_r, n_lr_rh
                nonlocal n_hr_r, n_hr_rh, n_hr_w, n_hr_wh
                nonlocal n_hr_evd, n_hr_evc, n_hr_fill
                nonlocal n_mon_w, n_mon_mig
                nonlocal n_lr_dw, n_hr_dw, n_wb_tot
                nonlocal demand_j, fill_j
                is_write = kind != 0
                now2 = now * time_dilation
                line = raddr & line_low_mask
                # maintenance: inline buffer drains; delegate due sweeps
                wb_total = 0
                if now2 >= next_scan:
                    led.demand_j = demand_j
                    led.fill_j = fill_j
                    wb_total = l2_maint(now2)
                    demand_j = led.demand_j
                    fill_j = led.fill_j
                    nls = eng._next_lr_scan
                    nhs = eng._next_hr_scan
                    next_scan = nls if nls < nhs else nhs
                else:
                    if h2l_entries and h2l_entries[0][2] <= now2:
                        while h2l_entries and h2l_entries[0][2] <= now2:
                            h2l_pop()
                            h2l_stats.drains += 1
                    if l2h_entries and l2h_entries[0][2] <= now2:
                        while l2h_entries and l2h_entries[0][2] <= now2:
                            l2h_pop()
                            l2h_stats.drains += 1
                lineno = line >> off2
                # locate (with access-path retention expiry)
                part = 0  # 0 miss, 1 lr, 2 hr
                if lr_pow2:
                    tag = lineno >> lr_bits
                    index = lineno & lr_smask
                else:
                    tag, index = divmod(lineno, lr_nsets)
                way = lr_t2w[index].get(tag)
                if way is not None:
                    slot = index * lr_assoc + way
                    if lr_ret is not None:
                        last = lr_ins[slot]
                        written = lr_lwt[slot]
                        if written > last:
                            last = written
                        if now2 - last >= lr_ret:
                            if lr_dirty_v[slot]:
                                l2.data_losses += 1
                            lr_invalidate(line)
                            way = None
                    if way is not None:
                        part = 1
                if not part:
                    if hr_pow2:
                        hr_tag = lineno >> hr_bits
                        hr_index = lineno & hr_smask
                    else:
                        hr_tag, hr_index = divmod(lineno, hr_nsets)
                    hr_way = hr_t2w[hr_index].get(hr_tag)
                    if hr_way is not None:
                        hr_slot = hr_index * hr_assoc + hr_way
                        last = hr_ins[hr_slot]
                        written = hr_lwt[hr_slot]
                        if written > last:
                            last = written
                        if now2 - last >= hr_ret:
                            if hr_dirty_v[hr_slot]:
                                l2.data_losses += 1
                            hr_invalidate(line)
                        else:
                            part = 2
                # search-selector accounting (sequential or parallel)
                n_sel_acc += 1
                first_hit = part == (1 if is_write else 2)
                if not sequential:
                    if first_hit:
                        n_sel_first += 1
                    n_sel_second += 1
                    tag_latency = tag_lat1
                    energy = pe_w2 if is_write else pe_r2
                elif first_hit:
                    n_sel_first += 1
                    tag_latency = tag_lat1
                    energy = pe_w1 if is_write else pe_r1
                else:
                    n_sel_second += 1
                    tag_latency = tag_lat2
                    energy = pe_w2 if is_write else pe_r2
                # serve
                dram_fetch = False
                if part == 1:
                    if is_write:
                        if track_ints:
                            written = lr_lwt[slot]
                            if written > 0:
                                rewrite_intervals.append(now2 - written)
                        n_lr_w += 1
                        n_lr_wh += 1
                        lr_dirty_v[slot] = True
                        lr_tw[slot] += 1
                        lr_wc[slot] += 1  # LR array never saturates
                        lr_lwt[slot] = now2
                        lr_lat_v[slot] = now2
                        lr_setw[index] += 1
                        lr_frw[slot] += 1
                        order = lr_lru_v[index]
                        order.remove(way)
                        order.append(way)
                        energy += lr_w_en
                        latency = tag_latency + lr_w_lat
                        n_lr_dw += 1
                    else:
                        n_lr_r += 1
                        n_lr_rh += 1
                        lr_tr[slot] += 1
                        lr_lat_v[slot] = now2
                        order = lr_lru_v[index]
                        order.remove(way)
                        order.append(way)
                        energy += lr_r_en
                        latency = tag_latency + lr_r_lat
                    demand_j += energy
                elif part == 2:
                    if not is_write:
                        n_hr_r += 1
                        n_hr_rh += 1
                        hr_tr[hr_slot] += 1
                        hr_lat_v[hr_slot] = now2
                        order = hr_lru_v[hr_index]
                        order.remove(hr_way)
                        order.append(hr_way)
                        energy += hr_r_en
                        latency = tag_latency + hr_r_lat
                        demand_j += energy
                    else:
                        n_mon_w += 1
                        if hr_wc[hr_slot] >= threshold:
                            n_mon_mig += 1
                            led.demand_j = demand_j
                            led.fill_j = fill_j
                            latency, mig_wb = migrate(
                                line, now2, energy, tag_latency
                            )
                            demand_j = led.demand_j
                            fill_j = led.fill_j
                            wb_total += mig_wb
                        else:
                            n_hr_w += 1
                            n_hr_wh += 1
                            hr_dirty_v[hr_slot] = True
                            hr_tw[hr_slot] += 1
                            if hr_sat <= 0 or hr_wc[hr_slot] < hr_sat:
                                hr_wc[hr_slot] += 1
                            hr_lwt[hr_slot] = now2
                            hr_lat_v[hr_slot] = now2
                            hr_setw[hr_index] += 1
                            hr_frw[hr_slot] += 1
                            order = hr_lru_v[hr_index]
                            order.remove(hr_way)
                            order.append(hr_way)
                            energy += hr_w_en
                            latency = tag_latency + hr_w_lat
                            n_hr_dw += 1
                            demand_j += energy
                else:
                    # miss: TwoPartSTTL2._serve_miss with the HR array's
                    # demand access and victim fill unrolled (the line is
                    # absent from both parts, so this is always a fill)
                    if is_write:
                        n_hr_w += 1
                    else:
                        n_hr_r += 1
                    base = hr_index * hr_assoc
                    fway = -1
                    for candidate in range(hr_assoc):
                        if not hr_valid_v[base + candidate]:
                            fway = candidate
                            break
                    if fway < 0:
                        fway = hr_lru_v[hr_index][0]
                    fslot = base + fway
                    tag_map = hr_t2w[hr_index]
                    evicted_dirty = False
                    if hr_valid_v[fslot]:
                        evicted_dirty = hr_dirty_v[fslot]
                        hr_setev[hr_index] += 1
                        if evicted_dirty:
                            n_hr_evd += 1
                        else:
                            n_hr_evc += 1
                        del tag_map[hr_tags_v[fslot]]
                    hr_tags_v[fslot] = hr_tag
                    hr_valid_v[fslot] = True
                    hr_dirty_v[fslot] = is_write
                    initial = 1 if is_write else 0
                    hr_wc[fslot] = initial
                    hr_tw[fslot] = initial
                    hr_tr[fslot] = 0
                    hr_lwt[fslot] = now2 if is_write else 0.0
                    hr_lat_v[fslot] = now2
                    hr_ins[fslot] = now2
                    tag_map[hr_tag] = fway
                    order = hr_lru_v[hr_index]
                    order.remove(fway)
                    order.append(fway)
                    hr_frw[fslot] += 1
                    if is_write:
                        hr_setw[hr_index] += 1
                    n_hr_fill += 1
                    n_hr_dw += 1
                    if evicted_dirty:
                        wb_total += 1
                        n_wb_tot += 1
                    demand_j += energy
                    fill_j += hr_fill_en
                    latency = tag_latency + hr_r_lat
                    dram_fetch = True
                # bank + DRAM + stall accounting (the object replay loop's
                # per-request block)
                l2_requests += 1
                l2_service_sum_s += latency
                bank = (raddr >> bank_shift) & bank_mask
                busy = bank_busy[bank]
                start = busy if busy > now else now
                wait = start - now
                bank_busy[bank] = start + latency
                bank_req += 1
                bankv_req[bank] += 1
                if wait > 0:
                    bank_conf += 1
                    bank_wait_sum += wait
                    bankv_conf[bank] += 1
                    bankv_wait[bank] += wait
                wait_cap = wait_cap_factor * (
                    latency if latency >= cycle_s else cycle_s
                )
                if wait > wait_cap:
                    wait = wait_cap
                total = wait + latency
                if dram_fetch:
                    if dram_inline:
                        t_req = now + total
                        channel = (raddr >> dram_line_shift) % dram_channels
                        row = raddr // dram_row_size
                        n_dram_r += 1
                        if dram_open[channel] == row:
                            n_dram_rh += 1
                            d_lat = dram_rowhit_lat
                        else:
                            d_lat = dram_base_lat
                            dram_open[channel] = row
                        busy = dram_busy[channel]
                        d_start = busy if busy > t_req else t_req
                        d_wait = d_start - t_req
                        if d_wait > dram_max_wait:
                            d_wait = dram_max_wait
                        dram_busy[channel] = d_start + dram_service
                        dram_busy_s[channel] += dram_service
                        dram_wait_s += d_wait
                        total += d_wait + d_lat
                    else:
                        total += dram_access(raddr, False, now + total)
                if wb_total:
                    n_dram_w += wb_total
                    dram_writebacks += wb_total
                if kind == 0:
                    total += noc_rt_s
                    stall_sum_s += total
                    read_latency_sum_s += total
                    entry = pend[sm].get(raddr)
                    if entry is not None and entry[0] is None:
                        ready = now + total
                        entry[0] = ready
                        if ready < min_ready[sm]:
                            min_ready[sm] = ready
                elif kind == 1:
                    stall_sum_s += wait + latency

            def flush_l2() -> None:
                """Fold the closure's counter accumulators into the L2."""
                sel.accesses += n_sel_acc
                sel.first_probe_hits += n_sel_first
                sel.second_probes += n_sel_second
                lr_stats.writes += n_lr_w
                lr_stats.write_hits += n_lr_wh
                lr_stats.reads += n_lr_r
                lr_stats.read_hits += n_lr_rh
                hr_stats.reads += n_hr_r
                hr_stats.read_hits += n_hr_rh
                hr_stats.writes += n_hr_w
                hr_stats.write_hits += n_hr_wh
                hr_stats.evictions_dirty += n_hr_evd
                hr_stats.evictions_clean += n_hr_evc
                hr_stats.fills += n_hr_fill
                mon.writes_observed += n_mon_w
                mon.migrations_triggered += n_mon_mig
                l2.lr_data_writes += n_lr_dw
                l2.hr_data_writes += n_hr_dw
                l2.dram_writebacks_total += n_wb_tot
                led.demand_j = demand_j
                led.fill_j = fill_j
        else:
            # ---- fused uniform L2 + bank + DRAM request handler ---------
            arr = l2.array
            u_t2w = arr.tag_to_way; u_lru = arr.lru; u_stats = arr.stats
            u_tags_v = arr.tag_vec; u_valid_v = arr.valid_vec
            u_dirty_v = arr.dirty_vec; u_wc = arr.write_count_vec
            u_tw = arr.total_writes_vec; u_tr = arr.total_reads_vec
            u_lwt = arr.last_write_time_vec; u_lat_v = arr.last_access_time_vec
            u_ins = arr.insert_time_vec
            u_setw = arr.set_writes_vec; u_frw = arr.frame_writes_vec
            u_setev = arr.set_evictions
            u_off = l2._soa_offset_bits
            u_pow2 = l2._soa_pow2; u_bits = l2._soa_set_bits
            u_smask = l2._soa_set_mask; u_nsets = l2._soa_num_sets
            u_assoc = l2._soa_assoc
            w_hit_en = l2._write_hit_energy; r_hit_en = l2._read_hit_energy
            w_lat = l2._write_latency; r_lat = l2._read_latency
            probe_en = l2._tag_probe_energy; fill_en = l2._fill_energy
            # scalar counter accumulators (see the module docstring); the
            # uniform closure has no cold-path calls, so the energy locals
            # never need mid-run syncing
            n_u_w = n_u_r = n_u_wh = n_u_rh = 0
            n_u_evd = n_u_evc = n_u_fill = 0
            n_data_writes = 0
            demand_j = led.demand_j
            fill_j = led.fill_j

            def process(kind: int, raddr: int) -> None:
                """Serve one L2 request end-to-end (0 fetch/1 write/2 wb).

                Inline transcription of :meth:`SoaUniformL2.access` (with
                the array's victim fill unrolled) plus the object replay
                loop's bank/DRAM/stall block.
                """
                nonlocal l2_requests, l2_service_sum_s, dram_writebacks
                nonlocal stall_sum_s, read_latency_sum_s
                nonlocal bank_req, bank_conf, bank_wait_sum
                nonlocal n_dram_r, n_dram_rh, n_dram_w, dram_wait_s
                nonlocal n_u_w, n_u_r, n_u_wh, n_u_rh
                nonlocal n_u_evd, n_u_evc, n_u_fill, n_data_writes
                nonlocal demand_j, fill_j
                is_write = kind != 0
                now2 = now * time_dilation
                lineno = raddr >> u_off
                if u_pow2:
                    tag = lineno >> u_bits
                    index = lineno & u_smask
                else:
                    tag, index = divmod(lineno, u_nsets)
                way = u_t2w[index].get(tag)
                if is_write:
                    n_u_w += 1
                else:
                    n_u_r += 1
                dram_fetch = False
                wb_total = 0
                if way is not None:
                    slot = index * u_assoc + way
                    if is_write:
                        n_u_wh += 1
                        u_dirty_v[slot] = True
                        u_tw[slot] += 1
                        u_wc[slot] += 1  # saturation is 0 here
                        u_lwt[slot] = now2
                        u_lat_v[slot] = now2
                        u_setw[index] += 1
                        u_frw[slot] += 1
                        energy = w_hit_en
                        latency = w_lat
                        n_data_writes += 1
                    else:
                        n_u_rh += 1
                        u_tr[slot] += 1
                        u_lat_v[slot] = now2
                        energy = r_hit_en
                        latency = r_lat
                    order = u_lru[index]
                    order.remove(way)
                    order.append(way)
                    demand_j += energy
                else:
                    # miss: the uniform L2 always allocates; victim fill
                    # unrolled from SoaCacheArray._fill
                    base = index * u_assoc
                    fway = -1
                    for candidate in range(u_assoc):
                        if not u_valid_v[base + candidate]:
                            fway = candidate
                            break
                    if fway < 0:
                        fway = u_lru[index][0]
                    fslot = base + fway
                    tag_map = u_t2w[index]
                    if u_valid_v[fslot]:
                        u_setev[index] += 1
                        if u_dirty_v[fslot]:
                            n_u_evd += 1
                            wb_total = 1
                        else:
                            n_u_evc += 1
                        del tag_map[u_tags_v[fslot]]
                    u_tags_v[fslot] = tag
                    u_valid_v[fslot] = True
                    u_dirty_v[fslot] = is_write
                    initial = 1 if is_write else 0
                    u_wc[fslot] = initial
                    u_tw[fslot] = initial
                    u_tr[fslot] = 0
                    u_lwt[fslot] = now2 if is_write else 0.0
                    u_lat_v[fslot] = now2
                    u_ins[fslot] = now2
                    tag_map[tag] = fway
                    order = u_lru[index]
                    order.remove(fway)
                    order.append(fway)
                    u_frw[fslot] += 1
                    if is_write:
                        u_setw[index] += 1
                    n_u_fill += 1
                    n_data_writes += 1
                    demand_j += probe_en
                    fill_j += fill_en
                    latency = r_lat
                    dram_fetch = True
                # bank + DRAM + stall accounting
                l2_requests += 1
                l2_service_sum_s += latency
                bank = (raddr >> bank_shift) & bank_mask
                busy = bank_busy[bank]
                start = busy if busy > now else now
                wait = start - now
                bank_busy[bank] = start + latency
                bank_req += 1
                bankv_req[bank] += 1
                if wait > 0:
                    bank_conf += 1
                    bank_wait_sum += wait
                    bankv_conf[bank] += 1
                    bankv_wait[bank] += wait
                wait_cap = wait_cap_factor * (
                    latency if latency >= cycle_s else cycle_s
                )
                if wait > wait_cap:
                    wait = wait_cap
                total = wait + latency
                if dram_fetch:
                    if dram_inline:
                        t_req = now + total
                        channel = (raddr >> dram_line_shift) % dram_channels
                        row = raddr // dram_row_size
                        n_dram_r += 1
                        if dram_open[channel] == row:
                            n_dram_rh += 1
                            d_lat = dram_rowhit_lat
                        else:
                            d_lat = dram_base_lat
                            dram_open[channel] = row
                        busy = dram_busy[channel]
                        d_start = busy if busy > t_req else t_req
                        d_wait = d_start - t_req
                        if d_wait > dram_max_wait:
                            d_wait = dram_max_wait
                        dram_busy[channel] = d_start + dram_service
                        dram_busy_s[channel] += dram_service
                        dram_wait_s += d_wait
                        total += d_wait + d_lat
                    else:
                        total += dram_access(raddr, False, now + total)
                if wb_total:
                    n_dram_w += wb_total
                    dram_writebacks += wb_total
                if kind == 0:
                    total += noc_rt_s
                    stall_sum_s += total
                    read_latency_sum_s += total
                    entry = pend[sm].get(raddr)
                    if entry is not None and entry[0] is None:
                        ready = now + total
                        entry[0] = ready
                        if ready < min_ready[sm]:
                            min_ready[sm] = ready
                elif kind == 1:
                    stall_sum_s += wait + latency

            def flush_l2() -> None:
                """Fold the closure's counter accumulators into the L2."""
                u_stats.writes += n_u_w
                u_stats.reads += n_u_r
                u_stats.write_hits += n_u_wh
                u_stats.read_hits += n_u_rh
                u_stats.evictions_dirty += n_u_evd
                u_stats.evictions_clean += n_u_evc
                u_stats.fills += n_u_fill
                l2.data_writes += n_data_writes
                led.demand_j = demand_j
                led.fill_j = fill_j

        # --- the fused replay loop ---------------------------------------
        for i, (sm, is_write, is_local, route, line, tag, set_index) in enumerate(
            zip(sm_list, write_list, local_list, route_list,
                l1_line_list, l1_tag_list, l1_set_list)
        ):
            now += dt
            if not is_write:
                reads += 1
                stall_sum_s += l1_hit_s
                read_latency_sum_s += l1_hit_s

            if route:
                # ---- read-only (const/texture) cache --------------------
                if route == 1:
                    ro_tag = c_tag_list[i]
                    slot = sm * c_nsets + c_set_list[i]
                    t2w = c_t2w[slot]
                    c_reads[sm] += 1
                    way = t2w.get(ro_tag)
                    if way is not None:
                        c_rh[sm] += 1
                        order = c_lru[slot]
                        order.remove(way)
                        order.append(way)
                        continue
                    base = slot * c_assoc
                    way = -1
                    for candidate in range(c_assoc):
                        if not c_valid[base + candidate]:
                            way = candidate
                            break
                    if way < 0:
                        way = c_lru[slot][0]
                    slot_index = base + way
                    if c_valid[slot_index]:
                        c_evc[sm] += 1  # read-only lines are never dirty
                        del t2w[c_tags[slot_index]]
                    c_tags[slot_index] = ro_tag
                    c_valid[slot_index] = True
                    t2w[ro_tag] = way
                    order = c_lru[slot]
                    order.remove(way)
                    order.append(way)
                    c_fills[sm] += 1
                    process(0, c_line_list[i])
                else:
                    ro_tag = t_tag_list[i]
                    slot = sm * t_nsets + t_set_list[i]
                    t2w = t_t2w[slot]
                    t_reads[sm] += 1
                    way = t2w.get(ro_tag)
                    if way is not None:
                        t_rh[sm] += 1
                        order = t_lru[slot]
                        order.remove(way)
                        order.append(way)
                        continue
                    base = slot * t_assoc
                    way = -1
                    for candidate in range(t_assoc):
                        if not t_valid[base + candidate]:
                            way = candidate
                            break
                    if way < 0:
                        way = t_lru[slot][0]
                    slot_index = base + way
                    if t_valid[slot_index]:
                        t_evc[sm] += 1
                        del t2w[t_tags[slot_index]]
                    t_tags[slot_index] = ro_tag
                    t_valid[slot_index] = True
                    t2w[ro_tag] = way
                    order = t_lru[slot]
                    order.remove(way)
                    order.append(way)
                    t_fills[sm] += 1
                    process(0, t_line_list[i])
                continue

            # ---- L1 data cache ------------------------------------------
            pend_sm = pend[sm]
            # deferred fills whose fetch landed install first; their dirty
            # evictions go to the L2 as writebacks, in landed order
            if pend_sm and now >= min_ready[sm]:
                landed = []
                new_min = inf
                for pending_line, entry in pend_sm.items():
                    ready = entry[0]
                    if ready is None:
                        continue
                    if ready <= now:
                        landed.append(pending_line)
                    elif ready < new_min:
                        new_min = ready
                min_ready[sm] = new_min
                mshr_sm = mshr_map[sm]
                for pending_line in landed:
                    fill_dirty = pend_sm.pop(pending_line)[1]
                    fill_no = pending_line >> l1_off
                    if l1_pow2:
                        fill_tag = fill_no >> l1_bits
                        fill_set = fill_no & l1_mask
                    else:
                        fill_tag, fill_set = divmod(fill_no, l1_nsets)
                    slot = sm * l1_nsets + fill_set
                    t2w = l1_t2w[slot]
                    fill_way = t2w.get(fill_tag)
                    evicted_line = -1
                    if fill_way is not None:
                        # already present: OR in the dirty intent, touch
                        if fill_dirty:
                            l1_dirty[slot * l1_assoc + fill_way] = True
                        order = l1_lru[slot]
                        order.remove(fill_way)
                        order.append(fill_way)
                    else:
                        base = slot * l1_assoc
                        fill_way = -1
                        for candidate in range(l1_assoc):
                            if not l1_valid[base + candidate]:
                                fill_way = candidate
                                break
                        if fill_way < 0:
                            fill_way = l1_lru[slot][0]
                        slot_index = base + fill_way
                        if l1_valid[slot_index]:
                            victim_tag = l1_tags[slot_index]
                            if l1_dirty[slot_index]:
                                ar_evd[sm] += 1
                                if l1_pow2:
                                    victim_no = (victim_tag << l1_bits) | fill_set
                                else:
                                    victim_no = victim_tag * l1_nsets + fill_set
                                evicted_line = victim_no << l1_off
                            else:
                                ar_evc[sm] += 1
                            del t2w[victim_tag]
                        l1_tags[slot_index] = fill_tag
                        l1_valid[slot_index] = True
                        l1_dirty[slot_index] = fill_dirty
                        t2w[fill_tag] = fill_way
                        order = l1_lru[slot]
                        order.remove(fill_way)
                        order.append(fill_way)
                        ar_fills[sm] += 1
                    if mshr_sm.pop(pending_line, None) is None:
                        raise SimulationError(
                            "completing a fetch that was never registered: "
                            f"{pending_line:#x}"
                        )
                    m_comp[sm] += 1
                    if evicted_line >= 0:
                        g_lwb[sm] += 1
                        process(2, evicted_line)

            slot = sm * l1_nsets + set_index
            t2w = l1_t2w[slot]
            if is_local:
                # conventional write-back/write-allocate for local data
                if is_write:
                    g_lw[sm] += 1
                    ar_writes[sm] += 1
                else:
                    g_lr[sm] += 1
                    ar_reads[sm] += 1
                way = t2w.get(tag)
                if way is not None:
                    if is_write:
                        ar_wh[sm] += 1
                        l1_dirty[slot * l1_assoc + way] = True
                    else:
                        ar_rh[sm] += 1
                    order = l1_lru[slot]
                    order.remove(way)
                    order.append(way)
                    continue
                dirty_intent = is_write
            elif is_write:
                # global store: write-evict on hit, write-no-allocate miss
                g_gw[sm] += 1
                ar_writes[sm] += 1
                way = t2w.get(tag)
                if way is not None:
                    ar_wh[sm] += 1
                    slot_index = slot * l1_assoc + way
                    del t2w[tag]
                    l1_tags[slot_index] = -1
                    l1_valid[slot_index] = False
                    l1_dirty[slot_index] = False
                    ar_inv[sm] += 1
                    g_wev[sm] += 1
                elif line in pend_sm:
                    # the store supersedes an in-flight fetch: cancel it
                    del pend_sm[line]
                    if mshr_map[sm].pop(line, None) is None:
                        raise SimulationError(
                            "completing a fetch that was never registered: "
                            f"{line:#x}"
                        )
                    m_comp[sm] += 1
                process(1, line)
                continue
            else:
                # global read: allocate-on-miss through the MSHRs
                g_gr[sm] += 1
                ar_reads[sm] += 1
                way = t2w.get(tag)
                if way is not None:
                    ar_rh[sm] += 1
                    order = l1_lru[slot]
                    order.remove(way)
                    order.append(way)
                    continue
                dirty_intent = False

            # shared read/local miss path: register in the MSHR file
            entry = pend_sm.get(line)
            if entry is not None:
                # secondary miss to an in-flight line: coalesce
                mshr_sm = mshr_map[sm]
                merged = mshr_sm.get(line)
                if merged is not None:
                    if merged >= mshr_max_merged:
                        m_stall[sm] += 1
                    else:
                        mshr_sm[line] = merged + 1
                        m_coal[sm] += 1
                else:
                    # unreachable while pend/mshr stay coherent; mirrors
                    # MSHRFile.register_miss for safety
                    if len(mshr_sm) >= mshr_entries:
                        m_stall[sm] += 1
                    else:
                        mshr_sm[line] = 1
                        m_alloc[sm] += 1
                if not entry[1]:
                    entry[1] = entry[1] or dirty_intent
                g_coal[sm] += 1
            else:
                mshr_sm = mshr_map[sm]
                if len(mshr_sm) >= mshr_entries:
                    # MSHRs full: uncached non-allocating fetch
                    m_stall[sm] += 1
                    g_stall[sm] += 1
                else:
                    mshr_sm[line] = 1
                    m_alloc[sm] += 1
                    pend_sm[line] = [None, dirty_intent]
                process(0, line)

        # --- flush local state back into the component objects ------------
        self.end_time_s = now
        flush_l2()
        dram_stats.reads += n_dram_r
        dram_stats.row_hits += n_dram_rh
        dram_stats.writes += n_dram_w
        if dram_inline:
            dram_stats.total_wait_s = dram_wait_s
        bank_stats = self.banks.stats
        bank_stats.requests += bank_req
        bank_stats.conflicts += bank_conf
        bank_stats.total_wait += bank_wait_sum
        for b, per in enumerate(self.banks.per_bank):
            per.requests += bankv_req[b]
            per.conflicts += bankv_conf[b]
            per.total_wait += bankv_wait[b]
        for s in range(S):
            l1 = self.l1s[s]
            array_stats = l1.array.stats
            array_stats.reads += ar_reads[s]
            array_stats.writes += ar_writes[s]
            array_stats.read_hits += ar_rh[s]
            array_stats.write_hits += ar_wh[s]
            array_stats.fills += ar_fills[s]
            array_stats.evictions_clean += ar_evc[s]
            array_stats.evictions_dirty += ar_evd[s]
            array_stats.invalidations += ar_inv[s]
            gpu_stats = l1.gpu_stats
            gpu_stats.global_reads += g_gr[s]
            gpu_stats.global_writes += g_gw[s]
            gpu_stats.local_reads += g_lr[s]
            gpu_stats.local_writes += g_lw[s]
            gpu_stats.write_evictions += g_wev[s]
            gpu_stats.local_writebacks += g_lwb[s]
            gpu_stats.coalesced_misses += g_coal[s]
            gpu_stats.mshr_stalls += g_stall[s]
            mshr_stats = l1.mshr.stats
            mshr_stats.allocations += m_alloc[s]
            mshr_stats.coalesced += m_coal[s]
            mshr_stats.stalls += m_stall[s]
            mshr_stats.completions += m_comp[s]
            l1.mshr._entries.update(mshr_map[s])
            l1._pending.update(pend[s])
            if min_ready[s] < l1._min_ready:
                l1._min_ready = min_ready[s]
            const_stats = self.const_caches[s].array.stats
            const_stats.reads += c_reads[s]
            const_stats.read_hits += c_rh[s]
            const_stats.fills += c_fills[s]
            const_stats.evictions_clean += c_evc[s]
            texture_stats = self.texture_caches[s].array.stats
            texture_stats.reads += t_reads[s]
            texture_stats.read_hits += t_rh[s]
            texture_stats.fills += t_fills[s]
            texture_stats.evictions_clean += t_evc[s]

        return self._roll_up(
            occupancy=occupancy,
            cycle_s=cycle_s,
            reads=reads,
            stall_sum_s=stall_sum_s,
            read_latency_sum_s=read_latency_sum_s,
            l2_requests=l2_requests,
            l2_service_sum_s=l2_service_sum_s,
            dram_writebacks=dram_writebacks,
        )
