"""repro — a reproduction of "An Efficient STT-RAM Last Level Cache
Architecture for GPUs" (Samavatian et al., DAC 2014).

The package implements the paper's two-part (low-retention + high-retention)
STT-RAM L2 cache for GPUs together with every substrate its evaluation
needs: the MTJ device model, a CACTI-like area/power model, a behavioural
cache framework, a trace-driven GPU simulator with an analytical IPC model,
and calibrated synthetic GPGPU workloads.  ``repro.experiments`` regenerates
every table and figure of the paper.

Quick start::

    from repro import config_c1, baseline_sram, build_workload, simulate

    workload = build_workload("bfs", num_accesses=20_000)
    base = simulate(baseline_sram(), workload)
    c1 = simulate(config_c1(), workload)
    print(c1.speedup_over(base), c1.total_power_ratio(base))

See README.md for the architecture overview and DESIGN.md for the full
system inventory.
"""

from repro.config import (
    GPUConfig,
    L1Config,
    L2Config,
    L2PartConfig,
    all_configs,
    baseline_sram,
    baseline_stt,
    config_c1,
    config_c2,
    config_c3,
)
from repro.core import TwoPartSTTL2, UniformL2, build_l2
from repro.gpu import GPUSimulator, SimulationResult, simulate
from repro.sttram import RetentionLevel, retention_catalogue
from repro.workloads import Workload, build_suite, build_workload, suite_names

__version__ = "1.0.0"

__all__ = [
    "GPUConfig",
    "L1Config",
    "L2Config",
    "L2PartConfig",
    "all_configs",
    "baseline_sram",
    "baseline_stt",
    "config_c1",
    "config_c2",
    "config_c3",
    "TwoPartSTTL2",
    "UniformL2",
    "build_l2",
    "GPUSimulator",
    "SimulationResult",
    "simulate",
    "RetentionLevel",
    "retention_catalogue",
    "Workload",
    "build_suite",
    "build_workload",
    "suite_names",
    "__version__",
]
