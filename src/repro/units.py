"""Unit constants and small conversion helpers.

All internal quantities in :mod:`repro` use a single base unit per dimension:

========== ============ ==========================================
dimension  base unit    notes
========== ============ ==========================================
time       second       latencies are often carried in *cycles*;
                        convert with :func:`cycles_to_seconds`
energy     joule        per-access energies are tiny; use ``nJ``
                        and ``pJ`` constants for readability
power      watt
area       square metre ``MM2`` / ``UM2`` helpers for readability
capacity   byte
frequency  hertz
current    ampere
voltage    volt
========== ============ ==========================================

Keeping the base units fixed means no function needs a ``unit=`` argument and
cross-module arithmetic (energy = power x time) is always dimensionally safe.
"""

from __future__ import annotations

# --- time -----------------------------------------------------------------
SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
YEAR = 365.25 * DAY

# --- energy ---------------------------------------------------------------
JOULE = 1.0
MJ = 1e-3
UJ = 1e-6
NJ = 1e-9
PJ = 1e-12
FJ = 1e-15

# --- power ----------------------------------------------------------------
WATT = 1.0
MW = 1e-3
UW = 1e-6
NW = 1e-9

# --- area -----------------------------------------------------------------
M2 = 1.0
MM2 = 1e-6
UM2 = 1e-12
NM2 = 1e-18

# --- capacity -------------------------------------------------------------
BYTE = 1
KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024

# --- frequency ------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# --- electrical -----------------------------------------------------------
VOLT = 1.0
AMPERE = 1.0
UA = 1e-6
MA = 1e-3


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert a duration in seconds to (fractional) cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def format_time(seconds: float) -> str:
    """Render a duration with an auto-selected engineering unit."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    for unit, scale in (("s", SECOND), ("ms", MS), ("us", US), ("ns", NS)):
        if seconds >= scale:
            return f"{seconds / scale:.3g}{unit}"
    return f"{seconds / PS:.3g}ps"


def format_energy(joules: float) -> str:
    """Render an energy with an auto-selected engineering unit."""
    if joules < 0:
        return "-" + format_energy(-joules)
    for unit, scale in (("J", JOULE), ("mJ", MJ), ("uJ", UJ), ("nJ", NJ), ("pJ", PJ)):
        if joules >= scale:
            return f"{joules / scale:.3g}{unit}"
    return f"{joules / FJ:.3g}fJ"


def format_capacity(nbytes: int) -> str:
    """Render a byte count as B/KB/MB/GB (powers of 1024)."""
    if nbytes < 0:
        raise ValueError(f"capacity must be non-negative, got {nbytes}")
    for unit, scale in (("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes >= scale and nbytes % (scale // 64 or 1) == 0:
            value = nbytes / scale
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.2f}{unit}"
    return f"{nbytes}B"


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises for non powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
