"""In-process shard router: one L2 facade over per-shard L2 slices.

The process-pool engine (:mod:`repro.shard.simulator`) never holds all
shards in one process; the differential oracle does.  ``ShardedL2Router``
fronts a list of per-shard L2 instances with the engine's exact hash and
address remap, so the lockstep runner can drive a *sharded* DUT through
the plain :class:`~repro.core.interface.L2Interface` surface.

At ``shards=1`` the router is a transparent proxy: every attribute not
defined here delegates to the single underlying L2, which keeps the
oracle's counter/snapshot introspection working unchanged.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.units import is_power_of_two, log2_int


class ShardedL2Router:
    """Route L2 accesses to per-shard slices by the bank hash."""

    def __init__(self, banks: Sequence, line_size: int) -> None:
        banks = list(banks)
        if not banks or not is_power_of_two(len(banks)):
            raise ConfigurationError(
                f"router needs a positive power-of-two shard count, "
                f"got {len(banks)}"
            )
        # object.__setattr__-free: plain attributes, but set them before
        # any lookup can trigger __getattr__ recursion
        self.__dict__["_banks"] = banks
        self.__dict__["_shards"] = len(banks)
        self.__dict__["_shard_bits"] = log2_int(len(banks))
        self.__dict__["_line_shift"] = log2_int(line_size)
        self.__dict__["_offset_mask"] = line_size - 1

    @property
    def banks(self) -> List:
        """The per-shard L2 instances, shard order."""
        return list(self._banks)

    @property
    def shards(self) -> int:
        """Shard count (power of two)."""
        return self._shards

    def shard_of(self, address: int) -> int:
        """Owning shard: the engine's line-interleaved hash."""
        return (address >> self._line_shift) & (self._shards - 1)

    def remap(self, address: int) -> int:
        """Drop the shard-selector bits (the worker-side address space)."""
        lineno = address >> (self._line_shift + self._shard_bits)
        return (lineno << self._line_shift) | (address & self._offset_mask)

    def access(self, address: int, is_write: bool, now: float):
        """Serve one request on the owning shard's slice."""
        return self._banks[self.shard_of(address)].access(
            self.remap(address), is_write, now
        )

    def fill_from_dram(self, address: int, is_write: bool, now: float):
        """Fill the owning shard's slice from DRAM."""
        return self._banks[self.shard_of(address)].fill_from_dram(
            self.remap(address), is_write, now
        )

    def maintenance(self, now: float) -> int:
        """Run every shard's maintenance; total DRAM write-backs."""
        return sum(bank.maintenance(now) for bank in self._banks)

    def dirty_lines(self) -> int:
        """Dirty residents across all shards."""
        return sum(bank.dirty_lines() for bank in self._banks)

    def __getattr__(self, name: str):
        """Transparent single-shard proxying for oracle introspection.

        With more than one shard there is no single underlying object to
        impersonate, so only explicit methods are available.
        """
        if self.__dict__.get("_shards") == 1:
            return getattr(self.__dict__["_banks"][0], name)
        raise AttributeError(
            f"{type(self).__name__} with {self.__dict__.get('_shards')} "
            f"shards has no attribute {name!r} (single-shard routers proxy "
            "their bank; multi-shard ones expose only the router surface)"
        )
