"""Sharded replay engine: per-bank sub-streams on a process pool.

The paper's L2 is "a banked cache array shared by all SMs"; this package
models that decomposition literally (docs/sharding.md).  The
line-interleaved bank hash (the same ``cache.address.bank_index`` the
timing model uses) partitions a trace into per-shard sub-streams, each
shard owns an independent L2 slice — its own migration buffers, WWS
monitor and refresh engine — and the shards replay on a process pool.
A deterministic merge (fixed shard-order float folding, see
:mod:`repro.shard.merge`) folds the per-shard counters back into one
:class:`~repro.gpu.metrics.SimulationResult`.

``--engine sharded --shards 1`` is byte-identical to ``--engine soa`` on
every pinned scenario; ``--shards N`` is a documented modeling
approximation that buys near-linear wall-clock scaling on multi-core
hosts.
"""

from repro.shard.merge import merge_bank_payloads
from repro.shard.plan import (
    ShardPlan,
    partition_trace,
    plan_shards,
    shard_config,
    shard_l2_config,
)
from repro.shard.router import ShardedL2Router
from repro.shard.simulator import ShardedGPUSimulator
from repro.shard.worker import BankJob, idle_payload, run_bank_job

__all__ = [
    "BankJob",
    "ShardPlan",
    "ShardedGPUSimulator",
    "ShardedL2Router",
    "idle_payload",
    "merge_bank_payloads",
    "partition_trace",
    "plan_shards",
    "run_bank_job",
    "shard_config",
    "shard_l2_config",
]
