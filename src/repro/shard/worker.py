"""Per-shard worker: one picklable job in, one JSON-safe payload out.

This mirrors the experiment battery's JobSpec/compute contract
(:mod:`repro.experiments.parallel`): a :class:`BankJob` is plain frozen
data, :func:`run_bank_job` is a module-level function any process can
execute, and the payload is a dict of raw counters — *not* a rolled-up
:class:`~repro.gpu.metrics.SimulationResult` — because the merge
(:mod:`repro.shard.merge`) re-runs the roll-up algebra over the summed
inputs of every shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.config import GPUConfig
from repro.core.twopart import TwoPartSTTL2
from repro.gpu.simulator import TIME_DILATION
from repro.workloads.trace import Workload


@dataclass(frozen=True)
class BankJob:
    """One shard's replay: a scaled config plus its sub-stream workload."""

    shard: int
    shards: int
    #: per-shard config from :func:`repro.shard.plan.shard_config`
    config: GPUConfig
    #: sub-stream workload from :func:`repro.shard.plan.partition_trace`
    workload: Workload
    track_intervals: bool = False
    time_dilation: float = TIME_DILATION
    start_time_s: float = 0.0


def _payload_from_simulator(shard: int, shards: int, sim) -> Dict[str, Any]:
    """Extract the merge's raw-counter surface from a finished simulator."""
    l2 = sim.l2
    stats = l2.stats
    dram_stats = sim.dram.stats
    twopart = None
    if isinstance(l2, TwoPartSTTL2):
        twopart = {
            "lr_data_writes": l2.lr_data_writes,
            "hr_data_writes": l2.hr_data_writes,
            "migrations_to_lr": l2.migrations_to_lr,
            "refresh_writes": l2.refresh_writes,
            "data_losses": l2.data_losses,
            "h2l_pushes": l2.hr_to_lr.stats.pushes,
            "h2l_overflows": l2.hr_to_lr.stats.overflows,
            "l2h_pushes": l2.lr_to_hr.stats.pushes,
            "l2h_overflows": l2.lr_to_hr.stats.overflows,
        }
    return {
        "shard": shard,
        "shards": shards,
        "idle": False,
        "accesses": len(sim.workload.trace),
        "rollup": dict(sim.rollup_inputs),
        "l1_accesses": sum(l1.array.stats.accesses for l1 in sim.l1s),
        "l1_hits": sum(l1.array.stats.hits for l1 in sim.l1s),
        "l2": {
            "reads": stats.reads,
            "writes": stats.writes,
            "read_hits": stats.read_hits,
            "write_hits": stats.write_hits,
        },
        "dirty_lines": l2.dirty_lines(),
        "dram": {
            "reads": dram_stats.reads,
            "writes": dram_stats.writes,
            "row_hits": dram_stats.row_hits,
        },
        "energy": l2.energy.as_dict(),
        "leakage_power_w": l2.leakage_power,
        "area_m2": l2.area,
        "twopart": twopart,
        "bank_stats": [
            [b.requests, b.conflicts, b.total_wait]
            for b in sim.banks.per_bank
        ],
    }


def run_bank_job(job: BankJob) -> Dict[str, Any]:
    """Replay one shard's sub-stream and return its raw-counter payload.

    The engine resolves per shard exactly like a standalone run
    (``engine=None``): SoA when the scaled config supports it, the object
    engine otherwise — the blocker-based fallback the registry already
    implements.
    """
    from repro.engine import make_simulator

    sim = make_simulator(
        job.config,
        job.workload,
        engine=None,
        track_intervals=job.track_intervals,
        time_dilation=job.time_dilation,
        start_time_s=job.start_time_s,
    )
    sim.run()
    return _payload_from_simulator(job.shard, job.shards, sim)


def idle_payload(shard: int, shards: int, config: GPUConfig) -> Dict[str, Any]:
    """The payload of a shard that owns no accesses.

    Leakage power and area are *static* figures of the shard's L2 slice —
    an idle bank still leaks and still occupies die area, so they are
    computed from a freshly-built (never accessed) L2 rather than
    reported as zero.  Everything event-driven is zero.
    """
    from repro.core.factory import build_l2

    l2 = build_l2(config.l2, tech=config.tech)
    is_twopart = isinstance(l2, TwoPartSTTL2)
    twopart = None
    if is_twopart:
        twopart = {
            "lr_data_writes": 0, "hr_data_writes": 0,
            "migrations_to_lr": 0, "refresh_writes": 0, "data_losses": 0,
            "h2l_pushes": 0, "h2l_overflows": 0,
            "l2h_pushes": 0, "l2h_overflows": 0,
        }
    return {
        "shard": shard,
        "shards": shards,
        "idle": True,
        "accesses": 0,
        "rollup": {
            "reads": 0,
            "stall_sum_s": 0.0,
            "read_latency_sum_s": 0.0,
            "l2_requests": 0,
            "l2_service_sum_s": 0.0,
            "dram_writebacks": 0,
        },
        "l1_accesses": 0,
        "l1_hits": 0,
        "l2": {"reads": 0, "writes": 0, "read_hits": 0, "write_hits": 0},
        "dirty_lines": 0,
        "dram": {"reads": 0, "writes": 0, "row_hits": 0},
        "energy": {
            "demand_j": 0.0, "migration_j": 0.0, "refresh_j": 0.0,
            "fill_j": 0.0, "total_j": 0.0,
        },
        "leakage_power_w": l2.leakage_power,
        "area_m2": l2.area,
        "twopart": twopart,
        "bank_stats": [
            [0, 0, 0.0] for _ in range(config.l2.num_banks)
        ],
    }
