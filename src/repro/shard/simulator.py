"""The sharded replay engine's front end: partition, fan out, merge.

``ShardedGPUSimulator`` quacks like the other engines' simulators (same
constructor shape, a ``run()`` returning a
:class:`~repro.gpu.metrics.SimulationResult`) but owns no caches itself:
it plans the shard decomposition, partitions the trace, runs one
:class:`~repro.shard.worker.BankJob` per non-idle shard on the experiment
battery's process fan-out, and folds the payloads back deterministically.
See docs/sharding.md for the topology and the "when sharded beats soa"
guidance (short answer: >= 2 physical cores and >= ~1M accesses).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Optional

from repro.config import GPUConfig
from repro.errors import ConfigurationError
from repro.gpu.metrics import SimulationResult
from repro.gpu.simulator import TIME_DILATION
from repro.shard.merge import merge_bank_payloads
from repro.shard.plan import partition_trace, plan_shards
from repro.shard.worker import BankJob, idle_payload, run_bank_job
from repro.workloads.trace import Workload


class ShardedGPUSimulator:
    """One (workload, configuration) simulation, executed shard-parallel."""

    def __init__(
        self,
        config: GPUConfig,
        workload: Workload,
        shards: int = 4,
        workers: Optional[int] = None,
        track_intervals: bool = False,
        time_dilation: float = TIME_DILATION,
        start_time_s: float = 0.0,
    ) -> None:
        self.config = config
        self.workload = workload
        self.plan = plan_shards(config, shards)
        self.shards = shards
        if workers is None:
            workers = min(shards, os.cpu_count() or 1)
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        #: process-pool width; results are merge-order deterministic for
        #: any value, so this is purely a throughput knob
        self.workers = workers
        self.track_intervals = track_intervals
        self.time_dilation = time_dilation
        self.start_time_s = start_time_s
        #: per-shard payloads of the last run(), ascending shard order
        self.bank_payloads: list = []

    def run(self) -> SimulationResult:
        """Partition, replay every shard, and merge deterministically."""
        from repro.experiments.parallel import fan_out

        plan = self.plan
        subs = partition_trace(
            self.workload.trace, plan.line_size, plan.shards
        )
        jobs = []
        for shard, sub in enumerate(subs):
            if sub is None:
                continue
            jobs.append(BankJob(
                shard=shard,
                shards=plan.shards,
                config=plan.sub_config,
                workload=replace(self.workload, trace=sub),
                track_intervals=self.track_intervals,
                time_dilation=self.time_dilation,
                start_time_s=self.start_time_s,
            ))
        payloads = fan_out(run_bank_job, jobs, self.workers)
        for shard, sub in enumerate(subs):
            if sub is None:
                payloads.append(
                    idle_payload(shard, plan.shards, plan.sub_config)
                )
        self.bank_payloads = sorted(payloads, key=lambda p: p["shard"])
        return merge_bank_payloads(
            self.config, self.workload, self.bank_payloads
        )
