"""Deterministic merge: per-shard payloads -> one SimulationResult.

The merge is a transcription of :meth:`repro.gpu.simulator.GPUSimulator._roll_up`
run over *summed* per-shard inputs.  Determinism and parity rest on two
rules (docs/performance.md, docs/sharding.md):

* integer counters commute — they are summed in any order;
* float accumulators are folded **in ascending shard order starting at
  0.0**, regardless of which worker finished first.  For a single shard
  the fold is ``0.0 + x``, which is bitwise ``x`` for the non-negative
  sums involved — that is the ``sharded --shards 1`` == ``soa``
  byte-identity.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from repro.cache.banked import BankStats
from repro.config import GPUConfig
from repro.errors import SimulationError
from repro.gpu.dram import DRAMModel
from repro.gpu.metrics import SimulationResult
from repro.gpu.occupancy import compute_occupancy
from repro.gpu.simulator import L1_HIT_CYCLES
from repro.units import log2_int
from repro.workloads.trace import Workload

#: Float accumulators folded in shard order (everything else is an int).
_FLOAT_ROLLUP_KEYS = ("stall_sum_s", "read_latency_sum_s", "l2_service_sum_s")
_INT_ROLLUP_KEYS = ("reads", "l2_requests", "dram_writebacks")
_ENERGY_KEYS = ("demand_j", "migration_j", "refresh_j", "fill_j", "total_j")


def _fold(values: Sequence[float]) -> float:
    """Left fold from 0.0 in the given (shard) order."""
    total = 0.0
    for value in values:
        total += value
    return total


def merge_bank_payloads(
    config: GPUConfig,
    workload: Workload,
    payloads: Sequence[Mapping[str, Any]],
) -> SimulationResult:
    """Fold per-shard payloads into the run's single result.

    ``config``/``workload`` are the *full* (unscaled) ones; ``payloads``
    may arrive in any completion order — they are sorted by shard index
    before any float is touched.
    """
    if not payloads:
        raise SimulationError("cannot merge zero shard payloads")
    ordered = sorted(payloads, key=lambda p: p["shard"])
    shards = ordered[0]["shards"]
    if [p["shard"] for p in ordered] != list(range(shards)):
        raise SimulationError(
            f"expected one payload per shard 0..{shards - 1}, got shards "
            f"{[p['shard'] for p in ordered]}"
        )
    n_mem_insts = len(workload.trace)
    if sum(p["accesses"] for p in ordered) != n_mem_insts:
        raise SimulationError(
            "shard payloads do not cover the trace: "
            f"{sum(p['accesses'] for p in ordered)} accesses across shards "
            f"vs {n_mem_insts} in the workload"
        )

    kernel = workload.kernel
    occupancy = compute_occupancy(kernel, config)
    cycle_s = 1.0 / config.core_clock_hz
    total_warp_insts = n_mem_insts * kernel.compute_intensity

    rollup: Dict[str, Any] = {}
    for key in _INT_ROLLUP_KEYS:
        rollup[key] = sum(p["rollup"][key] for p in ordered)
    for key in _FLOAT_ROLLUP_KEYS:
        rollup[key] = _fold([p["rollup"][key] for p in ordered])
    reads = rollup["reads"]
    l2_requests = rollup["l2_requests"]

    # --- the _roll_up algebra over merged inputs -----------------------
    avg_read_latency_cycles = (
        rollup["read_latency_sum_s"] / max(1, reads) / cycle_s
        if reads else L1_HIT_CYCLES
    )
    avg_stall_cycles = rollup["stall_sum_s"] / max(1, n_mem_insts) / cycle_s

    c = kernel.compute_intensity
    w = occupancy.warps_per_sm
    utilization = min(1.0, w * c / (c + avg_stall_cycles))
    rate_latency = utilization * config.num_sms / cycle_s

    bound_by = "latency"
    rate = rate_latency
    dram_reads = sum(p["dram"]["reads"] for p in ordered)
    dram_writes = sum(p["dram"]["writes"] for p in ordered)
    dram_row_hits = sum(p["dram"]["row_hits"] for p in ordered)
    dirty_lines = sum(p["dirty_lines"] for p in ordered)
    dram_accesses = dram_reads + dram_writes + dirty_lines
    # a reference DRAM model of the *full* config supplies the identical
    # channel count / line service time every worker used
    dram = DRAMModel(
        num_channels=config.num_mem_controllers,
        line_size=config.l2.line_size,
        base_latency_s=config.dram_latency_s,
    )
    if dram_accesses:
        per_inst = dram_accesses / total_warp_insts
        line_rate = dram.num_channels / dram.service_time_s
        rate_dram = line_rate / per_inst
        if rate_dram < rate:
            rate, bound_by = rate_dram, "dram-bandwidth"
    if l2_requests:
        per_inst = l2_requests / total_warp_insts
        avg_service = rollup["l2_service_sum_s"] / l2_requests
        bank_rate = config.l2.num_banks / max(avg_service, 1e-12)
        rate_l2 = bank_rate / per_inst
        if rate_l2 < rate:
            rate, bound_by = rate_l2, "l2-banks"

    ipc = config.warp_size * rate * cycle_s
    sim_time_s = total_warp_insts / rate

    # --- L1 / L2 / energy roll-ups -------------------------------------
    l1_accesses = sum(p["l1_accesses"] for p in ordered)
    l1_hits = sum(p["l1_hits"] for p in ordered)
    l1_hit_rate = l1_hits / l1_accesses if l1_accesses else 0.0
    l2_reads = sum(p["l2"]["reads"] for p in ordered)
    l2_writes = sum(p["l2"]["writes"] for p in ordered)
    l2_hits = sum(
        p["l2"]["read_hits"] + p["l2"]["write_hits"] for p in ordered
    )
    l2_accesses = l2_reads + l2_writes
    l2_hit_rate = l2_hits / l2_accesses if l2_accesses else 0.0

    energy_breakdown = {
        key: _fold([p["energy"][key] for p in ordered])
        for key in _ENERGY_KEYS
    }
    dynamic_energy = energy_breakdown["total_j"]
    dynamic_power = dynamic_energy / sim_time_s if sim_time_s > 0 else 0.0
    leakage_power = _fold([p["leakage_power_w"] for p in ordered])
    area = _fold([p["area_m2"] for p in ordered])

    extras: Dict[str, Any] = {}
    twoparts = [p["twopart"] for p in ordered]
    if any(t is not None for t in twoparts):
        if any(t is None for t in twoparts):
            raise SimulationError(
                "inconsistent shard payloads: some carry two-part counters "
                "and some do not"
            )
        lr_dw = sum(t["lr_data_writes"] for t in twoparts)
        hr_dw = sum(t["hr_data_writes"] for t in twoparts)
        overflows = sum(
            t["h2l_overflows"] + t["l2h_overflows"] for t in twoparts
        )
        attempts = overflows + sum(
            t["h2l_pushes"] + t["l2h_pushes"] for t in twoparts
        )
        extras = {
            "lr_write_share": (
                lr_dw / (lr_dw + hr_dw) if (lr_dw + hr_dw) else 0.0
            ),
            "migrations_to_lr": sum(t["migrations_to_lr"] for t in twoparts),
            "refresh_writes": sum(t["refresh_writes"] for t in twoparts),
            "data_losses": sum(t["data_losses"] for t in twoparts),
            "buffer_overflow_rate": (
                overflows / attempts if attempts else 0.0
            ),
        }

    return SimulationResult(
        workload=workload.name,
        config=config.name,
        ipc=ipc,
        utilization=utilization,
        warps_per_sm=occupancy.warps_per_sm,
        occupancy_limiter=occupancy.limiter,
        bound_by=bound_by,
        sim_time_s=sim_time_s,
        total_warp_insts=total_warp_insts,
        avg_read_latency_cycles=avg_read_latency_cycles,
        l1_hit_rate=l1_hit_rate,
        l2_hit_rate=l2_hit_rate,
        l2_reads=l2_reads,
        l2_writes=l2_writes,
        l2_requests=l2_requests,
        dram_accesses=dram_accesses,
        dram_row_hit_rate=(
            dram_row_hits / (dram_reads + dram_writes)
            if (dram_reads + dram_writes) else 0.0
        ),
        dram_writebacks=rollup["dram_writebacks"],
        l2_dynamic_energy_j=dynamic_energy,
        l2_dynamic_power_w=dynamic_power,
        l2_leakage_power_w=leakage_power,
        l2_area_m2=area,
        energy_breakdown=energy_breakdown,
        bank_stats=_merged_bank_stats(config, ordered, shards),
        **extras,
    )


def _merged_bank_stats(
    config: GPUConfig,
    ordered: Sequence[Mapping[str, Any]],
    shards: int,
) -> tuple:
    """Reassemble global per-bank stats from per-shard local banks.

    Global bank ``b`` lives in shard ``b & (shards - 1)`` at local index
    ``b >> log2(shards)`` (the shard selector is the low bits of the bank
    field; see :class:`repro.shard.plan.ShardPlan`).
    """
    shard_bits = log2_int(shards)
    merged: List[BankStats] = []
    for bank in range(config.l2.num_banks):
        local = ordered[bank & (shards - 1)]["bank_stats"][bank >> shard_bits]
        merged.append(BankStats(
            requests=local[0], conflicts=local[1], total_wait=local[2],
        ))
    return tuple(merged)
