"""Shard planning: geometry validation, config scaling, trace partitioning.

A shard owns ``num_banks / shards`` of the L2's banks and the
corresponding ``1 / shards`` slice of the address space, selected by the
low bits of the line number — the same line-interleaved hash
``cache.address.bank_index`` uses for bank timing, so "shard" is exactly
"group of banks".  Per-shard addresses are *remapped* by dropping the
shard-selector bits from the line number: the shard's L2 slice (capacity
and sets scaled by ``1 / shards``) then sees a dense line space and uses
all of its sets, matching how a real banked array indexes with the bits
above the bank selector.  At ``shards=1`` the remap and the scaling are
both identities, which is what makes ``sharded --shards 1`` byte-identical
to the ``soa`` engine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.config import GPUConfig, L2Config
from repro.errors import ConfigurationError, ReproError
from repro.units import is_power_of_two, log2_int
from repro.workloads.trace import Trace


def _validate_shards(l2: L2Config, shards: int) -> None:
    """Reject shard counts the L2 geometry cannot express."""
    if not isinstance(shards, int) or isinstance(shards, bool):
        raise ConfigurationError(f"shards must be an int, got {shards!r}")
    if shards < 1 or not is_power_of_two(shards):
        raise ConfigurationError(
            f"shards must be a positive power of two, got {shards}"
        )
    if shards > l2.num_banks:
        raise ConfigurationError(
            f"shards={shards} exceeds the L2's {l2.num_banks} banks; "
            "a shard is a group of banks, so shards <= num_banks"
        )


def shard_l2_config(l2: L2Config, shards: int) -> L2Config:
    """The L2 slice one shard owns: capacity, sets and banks over ``shards``.

    Associativity, line size, write threshold, retention times and —
    deliberately — the migration-buffer depth are unscaled: each shard has
    its *own* full-depth HR<->LR buffers, monitor and refresh engine, per
    the bank decomposition in FUSE-style designs.
    """
    _validate_shards(l2, shards)
    if shards == 1:
        return l2
    try:
        main = replace(
            l2.main, capacity_bytes=l2.main.capacity_bytes // shards
        )
        lr = (
            replace(l2.lr, capacity_bytes=l2.lr.capacity_bytes // shards)
            if l2.lr is not None else None
        )
        return replace(
            l2, main=main, lr=lr, num_banks=l2.num_banks // shards
        )
    except ReproError as error:
        raise ConfigurationError(
            f"L2 geometry does not divide into {shards} shards: {error}"
        ) from error


def shard_config(config: GPUConfig, shards: int) -> GPUConfig:
    """Scale a full GPU config down to the slice one shard simulates.

    Only the L2 is scaled: each shard worker keeps the full SM/L1/DRAM
    complement and replays its sub-stream against them (the per-shard
    front ends are the modeling approximation docs/sharding.md spells
    out; it vanishes at ``shards=1``).
    """
    scaled_l2 = shard_l2_config(config.l2, shards)
    if scaled_l2 is config.l2:
        return config
    return replace(config, l2=scaled_l2)


@dataclass(frozen=True)
class ShardPlan:
    """Everything fixed before any worker runs."""

    shards: int
    shard_bits: int
    line_size: int
    #: the scaled per-shard GPU config every worker receives
    sub_config: GPUConfig

    @property
    def banks_per_shard(self) -> int:
        """Local banks inside one shard (``num_banks / shards`` globally)."""
        return self.sub_config.l2.num_banks

    def global_bank(self, shard: int, local_bank: int) -> int:
        """Map a shard's local bank index back to the global bank id."""
        return (local_bank << self.shard_bits) | shard


def plan_shards(config: GPUConfig, shards: int) -> ShardPlan:
    """Validate and fix the shard decomposition for one run."""
    sub_config = shard_config(config, shards)
    return ShardPlan(
        shards=shards,
        shard_bits=log2_int(shards),
        line_size=config.l2.line_size,
        sub_config=sub_config,
    )


def partition_trace(
    trace: Trace, line_size: int, shards: int
) -> List[Optional[Trace]]:
    """Split a trace into per-shard sub-streams, order-preserving.

    Shard ``s`` owns every access whose line-interleaved bank id (under
    ``num_banks = shards``) is ``s``; within a shard, accesses keep their
    original trace order, which is what makes per-bank busy-until timing
    reproducible.  Sub-stream addresses have the shard-selector bits
    dropped from the line number (see the module docstring).  A shard
    that owns no accesses gets ``None`` — :class:`~repro.workloads.trace.Trace`
    cannot be empty, and an idle shard needs no worker anyway.
    """
    from repro.cache.banked import BankedCache

    if shards == 1:
        return [trace]
    router = BankedCache(shards, line_size)
    owner = router.assign(trace.address)
    shift = log2_int(line_size)
    shard_bits = log2_int(shards)
    offset_mask = line_size - 1
    subs: List[Optional[Trace]] = []
    for shard in range(shards):
        mask = owner == shard
        if not bool(mask.any()):
            subs.append(None)
            continue
        address = trace.address[mask]
        remapped = (
            ((address >> (shift + shard_bits)) << shift)
            | (address & offset_mask)
        )
        subs.append(Trace(trace.sm[mask], remapped, trace.flags[mask]))
    return subs
