"""Naive dictionary-based reference model of the two-part L2.

This module deliberately re-implements the full architecture of
:class:`repro.core.twopart.TwoPartSTTL2` — WWS monitor with threshold-1
dirty-bit semantics, HR<->LR migration buffers with overflow write-back,
per-line retention clocks with exact expiry/refresh timing, sequential
search — in the most literal way possible:

* per-set ``dict`` of plain per-line ``dict`` records instead of block
  objects, tag maps, ``__slots__`` or shared outcome caches;
* LRU as an explicit recency list of *line addresses* per set;
* retention decisions straight from the
  :class:`~repro.core.retention_counter.RetentionCounterSpec` predicates
  (``expired`` / ``needs_refresh``) with no hoisted thresholds;
* no precomputed probe-energy table — probe energy is summed from the
  per-part models on every access.

The one place the reference is *not* free to be naive is floating-point
accumulation order: energies and latencies are compared for **exact**
equality, so every ``+=`` below mirrors the order of operations in the
optimized implementation (IEEE-754 addition is not associative).  Where
that matters a comment says so.

The reference is an independent implementation of the same written
specification (the module docstrings of ``repro.core``), not a copy of the
optimized code — a bug in either implementation shows up as a lockstep
divergence.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.areapower.cache_model import CacheEnergyModel
from repro.areapower.technology import TECH_40NM, TechnologyNode
from repro.core.interface import L2AccessResult
from repro.core.retention_counter import RetentionCounterSpec
from repro.core.twopart import HR_COUNTER_BITS, LR_COUNTER_BITS
from repro.errors import OracleError
from repro.sttram.retention import retention_catalogue


def _new_line(now: float, dirty: bool) -> dict:
    """A freshly filled line record (mirrors ``CacheBlock.fill``)."""
    return {
        "dirty": dirty,
        "write_count": 1 if dirty else 0,
        "insert_time": now,
        "last_write_time": now if dirty else 0.0,
    }


class _RefArray:
    """One set-associative part as per-set dicts plus recency lists."""

    def __init__(
        self, capacity_bytes: int, associativity: int, line_size: int,
        write_counter_saturation: int = 0,
    ) -> None:
        if capacity_bytes % (associativity * line_size) != 0:
            raise OracleError("reference array geometry does not factor")
        self.associativity = associativity
        self.line_size = line_size
        self.num_sets = capacity_bytes // (associativity * line_size)
        self.saturation = write_counter_saturation
        #: per-set mapping of line address -> line record
        self.sets: List[Dict[int, dict]] = [{} for _ in range(self.num_sets)]
        #: per-set recency order of line addresses, LRU first / MRU last
        self.recency: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats: Dict[str, int] = {
            "reads": 0, "writes": 0, "read_hits": 0, "write_hits": 0,
            "fills": 0, "evictions_clean": 0, "evictions_dirty": 0,
            "invalidations": 0,
        }

    def set_index(self, line: int) -> int:
        """Set holding ``line`` (same slicing as ``AddressMapper.split``)."""
        return (line // self.line_size) % self.num_sets

    def lookup(self, line: int) -> Optional[dict]:
        """The record holding ``line``, or None (no side effects)."""
        return self.sets[self.set_index(line)].get(line)

    def touch(self, line: int) -> None:
        """Move ``line`` to the MRU end of its set's recency list."""
        order = self.recency[self.set_index(line)]
        order.remove(line)
        order.append(line)

    def record_write(self, record: dict, now: float) -> None:
        """Account a write hit on a resident line (saturating counter)."""
        record["dirty"] = True
        if self.saturation <= 0 or record["write_count"] < self.saturation:
            record["write_count"] += 1
        record["last_write_time"] = now

    def fill(self, line: int, now: float, dirty: bool) -> Tuple[Optional[int], bool]:
        """Install ``line``; returns ``(evicted_line, evicted_dirty)``.

        Present lines are refreshed in place (dirty bit OR-ed in, recency
        touch) exactly like ``SetAssociativeCache.fill``.  When the set is
        full the LRU line address is the victim — behaviourally identical
        to the optimized array's first-invalid-way-else-LRU choice, since
        at line granularity "an invalid way exists" is "the set has room".
        """
        index = self.set_index(line)
        lines = self.sets[index]
        record = lines.get(line)
        if record is not None:
            if dirty:
                self.record_write(record, now)
            self.touch(line)
            return None, False
        evicted_line: Optional[int] = None
        evicted_dirty = False
        if len(lines) >= self.associativity:
            evicted_line = self.recency[index][0]
            evicted_dirty = lines[evicted_line]["dirty"]
            del lines[evicted_line]
            self.recency[index].remove(evicted_line)
            if evicted_dirty:
                self.stats["evictions_dirty"] += 1
            else:
                self.stats["evictions_clean"] += 1
        lines[line] = _new_line(now, dirty)
        self.recency[index].append(line)
        self.stats["fills"] += 1
        return evicted_line, evicted_dirty

    def invalidate(self, line: int) -> None:
        """Drop a line if present (retention expiry path; counts stats)."""
        index = self.set_index(line)
        if line in self.sets[index]:
            del self.sets[index][line]
            self.recency[index].remove(line)
            self.stats["invalidations"] += 1

    def extract(self, line: int) -> None:
        """Remove a line for migration (no eviction/invalidation stats)."""
        index = self.set_index(line)
        if line in self.sets[index]:
            del self.sets[index][line]
            self.recency[index].remove(line)

    def resident_lines(self) -> Dict[int, dict]:
        """All resident lines keyed by line address."""
        residents: Dict[int, dict] = {}
        for lines in self.sets:
            residents.update(lines)
        return residents


class _RefBuffer:
    """Naive FIFO mirror of :class:`repro.core.buffers.MigrationBuffer`."""

    def __init__(self, capacity_lines: int, drain_service_time: float) -> None:
        self.capacity_lines = capacity_lines
        self.drain_service_time = drain_service_time
        self.entries: List[Tuple[int, bool, float]] = []
        self.port_free_at = 0.0
        self.stats: Dict[str, int] = {
            "pushes": 0, "drains": 0, "overflows": 0, "peak_occupancy": 0,
        }

    @property
    def full(self) -> bool:
        """No space for another line."""
        return len(self.entries) >= self.capacity_lines

    def push(self, line: int, dirty: bool, now: float) -> None:
        """Enqueue a line behind the single drain port (caller checked room)."""
        start = now if now > self.port_free_at else self.port_free_at
        ready = start + self.drain_service_time
        self.port_free_at = ready
        self.entries.append((line, dirty, ready))
        self.stats["pushes"] += 1
        if len(self.entries) > self.stats["peak_occupancy"]:
            self.stats["peak_occupancy"] = len(self.entries)

    def force_pop(self) -> Tuple[int, bool]:
        """Evict the oldest entry regardless of timing (overflow handling)."""
        line, dirty, _ = self.entries.pop(0)
        self.stats["overflows"] += 1
        return line, dirty

    def drain_ready(self, now: float) -> None:
        """Retire every entry whose destination write completed by ``now``."""
        while self.entries and self.entries[0][2] <= now:
            self.entries.pop(0)
            self.stats["drains"] += 1

    def snapshot(self) -> dict:
        """Same shape as ``MigrationBuffer.snapshot`` for direct diffing."""
        return {
            "entries": [[a, d, r] for a, d, r in self.entries],
            "port_free_at": self.port_free_at,
        }


class ReferenceTwoPartL2:
    """Golden-model re-implementation of the two-part STT-RAM L2.

    Constructor signature mirrors the behavioural subset of
    :class:`~repro.core.twopart.TwoPartSTTL2` so both models can be built
    from the same keyword arguments.  The energy/latency figures come from
    :class:`~repro.areapower.cache_model.CacheEnergyModel` instances built
    with the same arguments as the optimized cache's, so the scalar
    constants are bit-identical and only the *bookkeeping* differs.
    """

    def __init__(
        self,
        hr_capacity_bytes: int,
        hr_associativity: int,
        lr_capacity_bytes: int,
        lr_associativity: int,
        line_size: int = 256,
        write_threshold: int = 1,
        hr_retention_s: float = 40e-3,
        lr_retention_s: float = 40e-6,
        buffer_lines: int = 20,
        sequential_search: bool = True,
        tech: TechnologyNode = TECH_40NM,
        track_intervals: bool = True,
    ) -> None:
        if not 0 < lr_retention_s < hr_retention_s:
            raise OracleError("need 0 < LR retention < HR retention")
        self.line_size = line_size
        self.write_threshold = write_threshold
        self.sequential_search = sequential_search
        self.track_intervals = track_intervals
        levels = retention_catalogue(
            hr_retention_s=hr_retention_s, lr_retention_s=lr_retention_s
        )
        monitor_counter_bits = max(1, write_threshold.bit_length())
        self.monitor_saturation = (1 << monitor_counter_bits) - 1
        self.hr_model = CacheEnergyModel(
            hr_capacity_bytes, hr_associativity, line_size,
            sram_data=False, retention_level=levels["hr"],
            extra_status_bits=HR_COUNTER_BITS + monitor_counter_bits,
            tech=tech,
        )
        self.lr_model = CacheEnergyModel(
            lr_capacity_bytes, lr_associativity, line_size,
            sram_data=False, retention_level=levels["lr"],
            extra_status_bits=LR_COUNTER_BITS,
            tech=tech,
        )
        self.lr_spec = RetentionCounterSpec(LR_COUNTER_BITS, lr_retention_s)
        self.hr_spec = RetentionCounterSpec(HR_COUNTER_BITS, hr_retention_s)
        self.hr = _RefArray(
            hr_capacity_bytes, hr_associativity, line_size,
            write_counter_saturation=self.monitor_saturation,
        )
        self.lr = _RefArray(lr_capacity_bytes, lr_associativity, line_size)
        self.hr_to_lr = _RefBuffer(
            buffer_lines, self.lr_model.data_array.write_latency
        )
        self.lr_to_hr = _RefBuffer(
            buffer_lines, self.hr_model.data_array.write_latency
        )
        self.next_lr_scan = self.lr_spec.tick_s
        self.next_hr_scan = self.hr_spec.tick_s
        self.refresh_stats: Dict[str, int] = {
            "scans": 0, "lr_refreshes": 0, "lr_expiries": 0,
            "hr_expirations_clean": 0, "hr_expirations_dirty": 0,
        }
        self.last_sweep_actions: Optional[Dict[str, List[int]]] = None
        self.monitor_stats: Dict[str, int] = {
            "writes_observed": 0, "migrations_triggered": 0,
        }
        self.search_stats: Dict[str, int] = {
            "accesses": 0, "first_probe_hits": 0, "second_probes": 0,
        }
        self.energy: Dict[str, float] = {
            "demand_j": 0.0, "migration_j": 0.0,
            "refresh_j": 0.0, "fill_j": 0.0,
        }
        self.lr_data_writes = 0
        self.hr_data_writes = 0
        self.refresh_writes = 0
        self.migrations_to_lr = 0
        self.returns_to_hr = 0
        self.dram_writebacks_total = 0
        self.data_losses = 0
        self.rewrite_intervals: List[float] = []

    # ------------------------------------------------------------------
    # retention clocks
    # ------------------------------------------------------------------

    def _age(self, record: dict, now: float) -> float:
        """Seconds since the line's cells were last written."""
        return now - max(record["insert_time"], record["last_write_time"])

    def _sweep(self, now: float) -> Dict[str, List[int]]:
        """Run all due retention sweeps; every line consults the spec."""
        actions: Dict[str, List[int]] = {
            "lr_refresh": [], "lr_lost": [],
            "hr_drop_clean": [], "hr_drop_dirty": [],
        }
        if now >= self.next_lr_scan:
            self.refresh_stats["scans"] += 1
            for line, record in sorted(self.lr.resident_lines().items()):
                age = self._age(record, now)
                if self.lr_spec.expired(age):
                    actions["lr_lost"].append(line)
                    self.refresh_stats["lr_expiries"] += 1
                elif self.lr_spec.needs_refresh(age):
                    actions["lr_refresh"].append(line)
                    self.refresh_stats["lr_refreshes"] += 1
            tick = self.lr_spec.tick_s
            self.next_lr_scan = (math.floor(now / tick) + 1.0) * tick
            if self.next_lr_scan <= now:
                self.next_lr_scan += tick
        if now >= self.next_hr_scan:
            for line, record in sorted(self.hr.resident_lines().items()):
                age = self._age(record, now)
                if self.hr_spec.needs_refresh(age) or self.hr_spec.expired(age):
                    if record["dirty"]:
                        actions["hr_drop_dirty"].append(line)
                        self.refresh_stats["hr_expirations_dirty"] += 1
                    else:
                        actions["hr_drop_clean"].append(line)
                        self.refresh_stats["hr_expirations_clean"] += 1
            tick = self.hr_spec.tick_s
            self.next_hr_scan = (math.floor(now / tick) + 1.0) * tick
            if self.next_hr_scan <= now:
                self.next_hr_scan += tick
        return actions

    def maintenance(self, now: float) -> int:
        """Drain buffers and apply due sweeps; returns DRAM write-backs."""
        self.hr_to_lr.drain_ready(now)
        self.lr_to_hr.drain_ready(now)
        if not (now >= self.next_lr_scan or now >= self.next_hr_scan):
            return 0
        actions = self._sweep(now)
        self.last_sweep_actions = actions
        writebacks = 0
        for line in actions["lr_refresh"]:
            record = self.lr.lookup(line)
            if record is None:
                continue
            # buffer-assisted refresh: read out, write back, clock restarts
            record["insert_time"] = now
            self.energy["refresh_j"] += (
                self.lr_model.data_read_energy + self.lr_model.data_write_energy
            )
            self.refresh_writes += 1
        for line in actions["lr_lost"]:
            record = self.lr.lookup(line)
            if record is not None and record["dirty"]:
                self.data_losses += 1
            self.lr.invalidate(line)
        for line in actions["hr_drop_clean"]:
            self.hr.invalidate(line)
        for line in actions["hr_drop_dirty"]:
            self.energy["refresh_j"] += self.hr_model.data_read_energy
            self.hr.invalidate(line)
            writebacks += 1
        self.dram_writebacks_total += writebacks
        return writebacks

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------

    def _locate(self, line: int, now: float) -> Tuple[Optional[str], Optional[dict]]:
        """Which part holds the line, expiring stale residents on probe."""
        record = self.lr.lookup(line)
        if record is not None:
            if self.lr_spec.expired(self._age(record, now)):
                if record["dirty"]:
                    self.data_losses += 1
                self.lr.invalidate(line)
            else:
                return "lr", record
        record = self.hr.lookup(line)
        if record is not None:
            if self.hr_spec.expired(self._age(record, now)):
                if record["dirty"]:
                    self.data_losses += 1
                self.hr.invalidate(line)
            else:
                return "hr", record
        return None, None

    def _probe_order(self, is_write: bool) -> Tuple[str, str]:
        """Writes expect LR (the WWS lives there); reads expect HR."""
        return ("lr", "hr") if is_write else ("hr", "lr")

    def _record_search(self, is_write: bool, hit_part: str) -> int:
        """Mirror ``SearchSelector.record``; returns the probe count."""
        self.search_stats["accesses"] += 1
        first_hit = hit_part == self._probe_order(is_write)[0]
        if not self.sequential_search:
            if first_hit:
                self.search_stats["first_probe_hits"] += 1
            self.search_stats["second_probes"] += 1
            return 2
        if first_hit:
            self.search_stats["first_probe_hits"] += 1
            return 1
        self.search_stats["second_probes"] += 1
        return 2

    def _probe_energy(self, is_write: bool, probes: int) -> float:
        """Tag energy summed over the probed parts, in probe order."""
        models = {"lr": self.lr_model, "hr": self.hr_model}
        order = self._probe_order(is_write)
        energy = models[order[0]].tag_probe_energy
        if probes == 2:
            energy = energy + models[order[1]].tag_probe_energy
        return energy

    def access(self, address: int, is_write: bool, now: float) -> L2AccessResult:
        """Serve one demand access (the lockstep counterpart of the DUT's)."""
        line = (address // self.line_size) * self.line_size
        writebacks = self.maintenance(now)
        part, record = self._locate(line, now)
        probes = self._record_search(is_write, part or "miss")
        energy = self._probe_energy(is_write, probes)
        # both tag probes use the HR tag latency, serialized when sequential
        latency_factor = probes if self.sequential_search else 1
        tag_latency = latency_factor * self.hr_model.tag_array.access_latency

        if part == "lr":
            result = self._serve_lr(line, is_write, now, energy, tag_latency, record)
        elif part == "hr":
            result = self._serve_hr(line, is_write, now, energy, tag_latency, record)
        else:
            result = self._serve_miss(line, is_write, now, energy, tag_latency)
        result.dram_writebacks += writebacks
        result.probes = probes
        return result

    def _serve_lr(
        self, line: int, is_write: bool, now: float, energy: float,
        tag_latency: float, record: dict,
    ) -> L2AccessResult:
        if is_write and self.track_intervals and record["last_write_time"] > 0:
            self.rewrite_intervals.append(now - record["last_write_time"])
        if is_write:
            self.lr.stats["writes"] += 1
            self.lr.stats["write_hits"] += 1
            self.lr.record_write(record, now)
        else:
            self.lr.stats["reads"] += 1
            self.lr.stats["read_hits"] += 1
        self.lr.touch(line)
        if is_write:
            energy += self.lr_model.data_write_energy
            latency = tag_latency + self.lr_model.data_array.write_latency
            self.lr_data_writes += 1
        else:
            energy += self.lr_model.data_read_energy
            latency = tag_latency + self.lr_model.data_array.read_latency
        self.energy["demand_j"] += energy
        return L2AccessResult(hit=True, part="lr", latency_s=latency, energy_j=energy)

    def _serve_hr(
        self, line: int, is_write: bool, now: float, energy: float,
        tag_latency: float, record: dict,
    ) -> L2AccessResult:
        if not is_write:
            self.hr.stats["reads"] += 1
            self.hr.stats["read_hits"] += 1
            self.hr.touch(line)
            energy += self.hr_model.data_read_energy
            self.energy["demand_j"] += energy
            return L2AccessResult(
                hit=True, part="hr",
                latency_s=tag_latency + self.hr_model.data_array.read_latency,
                energy_j=energy,
            )
        # the monitor consults the counter BEFORE this write is recorded
        self.monitor_stats["writes_observed"] += 1
        if record["write_count"] >= self.write_threshold:
            self.monitor_stats["migrations_triggered"] += 1
            return self._migrate_and_write(line, now, energy, tag_latency)
        self.hr.stats["writes"] += 1
        self.hr.stats["write_hits"] += 1
        self.hr.record_write(record, now)
        self.hr.touch(line)
        energy += self.hr_model.data_write_energy
        latency = tag_latency + self.hr_model.data_array.write_latency
        self.hr_data_writes += 1
        self.energy["demand_j"] += energy
        return L2AccessResult(
            hit=True, part="hr", latency_s=latency, energy_j=energy
        )

    def _migrate_and_write(
        self, line: int, now: float, energy: float, tag_latency: float
    ) -> L2AccessResult:
        """HR write hit above threshold: move the line to LR, write there."""
        writebacks = 0
        migration_energy = self.hr_model.data_read_energy  # read out of HR
        # the HR demand write-hit is accounted before the line leaves
        self.hr.stats["writes"] += 1
        self.hr.stats["write_hits"] += 1
        record = self.hr.lookup(line)
        self.hr.record_write(record, now)
        self.hr.touch(line)
        self.hr.extract(line)
        writebacks += self._buffer_push(self.hr_to_lr, line, True, now)
        self.migrations_to_lr += 1

        evicted_line, evicted_dirty = self.lr.fill(line, now, dirty=True)
        migration_energy += self.lr_model.data_write_energy
        self.lr_data_writes += 1
        if evicted_line is not None:
            writebacks += self._return_to_hr(evicted_line, evicted_dirty, now)
        # accumulation order mirrors the DUT: _return_to_hr's migration
        # energy lands first, then this access's own migration energy
        self.energy["demand_j"] += energy
        self.energy["migration_j"] += migration_energy
        return L2AccessResult(
            hit=True, part="lr",
            latency_s=tag_latency + self.lr_model.data_array.write_latency,
            energy_j=energy + migration_energy,
            dram_writebacks=writebacks,
            migrated=True,
        )

    def _return_to_hr(self, victim_line: int, victim_dirty: bool, now: float) -> int:
        """An LR eviction returns to HR through the LR->HR buffer."""
        writebacks = 0
        self.energy["migration_j"] += self.lr_model.data_read_energy
        writebacks += self._buffer_push(self.lr_to_hr, victim_line, victim_dirty, now)
        self.returns_to_hr += 1
        evicted_line, evicted_dirty = self.hr.fill(
            victim_line, now, dirty=victim_dirty
        )
        del evicted_line  # the HR victim's address itself is not needed
        self.energy["migration_j"] += self.hr_model.data_write_energy
        self.hr_data_writes += 1
        if evicted_dirty:
            writebacks += 1
            self.dram_writebacks_total += 1
        return writebacks

    def _buffer_push(
        self, buffer: _RefBuffer, line: int, dirty: bool, now: float
    ) -> int:
        """Push into a swap buffer, forcing the oldest entry out if full."""
        writebacks = 0
        if buffer.full:
            _, popped_dirty = buffer.force_pop()
            if popped_dirty:
                writebacks += 1
                self.dram_writebacks_total += 1
        buffer.push(line, dirty, now)
        return writebacks

    def _serve_miss(
        self, line: int, is_write: bool, now: float, energy: float,
        tag_latency: float,
    ) -> L2AccessResult:
        if is_write:
            self.hr.stats["writes"] += 1
        else:
            self.hr.stats["reads"] += 1
        evicted_line, evicted_dirty = self.hr.fill(line, now, dirty=is_write)
        del evicted_line
        fill_energy = self.hr_model.fill_energy
        self.hr_data_writes += 1
        writebacks = 1 if evicted_dirty else 0
        self.dram_writebacks_total += writebacks
        self.energy["demand_j"] += energy
        self.energy["fill_j"] += fill_energy
        return L2AccessResult(
            hit=False, part="miss",
            latency_s=tag_latency + self.hr_model.data_array.read_latency,
            energy_j=energy + fill_energy,
            dram_fetch=True,
            dram_writebacks=writebacks,
        )

    # ------------------------------------------------------------------
    # comparison surface
    # ------------------------------------------------------------------

    def counters(self) -> Dict[str, float]:
        """Flat counter view diffed against the DUT's after every access."""
        flat: Dict[str, float] = {
            "l2.lr_data_writes": self.lr_data_writes,
            "l2.hr_data_writes": self.hr_data_writes,
            "l2.refresh_writes": self.refresh_writes,
            "l2.migrations_to_lr": self.migrations_to_lr,
            "l2.returns_to_hr": self.returns_to_hr,
            "l2.dram_writebacks_total": self.dram_writebacks_total,
            "l2.data_losses": self.data_losses,
            "l2.rewrite_intervals": len(self.rewrite_intervals),
        }
        for part, array in (("lr", self.lr), ("hr", self.hr)):
            for key, value in array.stats.items():
                flat[f"{part}.{key}"] = value
        for name, buffer in (
            ("hr_to_lr", self.hr_to_lr), ("lr_to_hr", self.lr_to_hr)
        ):
            for key, value in buffer.stats.items():
                flat[f"buffer.{name}.{key}"] = value
            flat[f"buffer.{name}.occupancy"] = len(buffer.entries)
        for key, value in self.refresh_stats.items():
            flat[f"refresh.{key}"] = value
        for key, value in self.monitor_stats.items():
            flat[f"monitor.{key}"] = value
        for key, value in self.search_stats.items():
            flat[f"search.{key}"] = value
        for key, value in self.energy.items():
            flat[f"energy.{key}"] = value
        return flat

    def state_snapshot(self) -> dict:
        """Same shape as ``TwoPartSTTL2.state_snapshot`` for direct diffing."""
        parts = {}
        for part_name, array in (("lr", self.lr), ("hr", self.hr)):
            lines = {}
            for line, record in sorted(array.resident_lines().items()):
                lines[f"{line:#x}"] = {
                    "dirty": record["dirty"],
                    "write_count": record["write_count"],
                    "insert_time": record["insert_time"],
                    "last_write_time": record["last_write_time"],
                }
            parts[part_name] = lines
        return {
            "parts": parts,
            "buffers": {
                "hr_to_lr": self.hr_to_lr.snapshot(),
                "lr_to_hr": self.lr_to_hr.snapshot(),
            },
        }
