"""Lockstep differential runner: optimized L2 vs the naive reference.

The runner replays one access sequence through a
:class:`~repro.core.twopart.TwoPartSTTL2` (the device under test) and a
:class:`~repro.oracle.reference.ReferenceTwoPartL2` simultaneously and
diffs, after every access:

* the :class:`~repro.core.interface.L2AccessResult` fields (hit, part,
  latency, energy, DRAM traffic, probes, migration flag) — floats compared
  for **exact** equality, since the reference mirrors the DUT's
  accumulation order;
* the full flat counter surface (per-part cache stats, buffer stats,
  refresh/monitor/search stats, the energy ledger);
* the most recent refresh-sweep decisions (via the
  ``RefreshEngine.last_actions`` seam).

At end of sequence the two architectural state snapshots (resident lines
with dirty/write-count/retention clocks, plus both migration buffers) are
compared as well.  The first mismatch stops the run and is reported as a
divergence record naming every differing field.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import GPUConfig, L2Config
from repro.core.twopart import TwoPartSTTL2
from repro.errors import OracleError
from repro.oracle.reference import ReferenceTwoPartL2
from repro.tracing import NULL_TRACER, TraceCollector

#: One lockstep access: ``(byte_address, is_write, now_seconds)``.
Access = Tuple[int, bool, float]

#: Default lockstep timestep.  The paper-default LR retention tick is
#: 40us / 2**4 = 2.5us, so a 2us step makes an LR sweep due between most
#: consecutive accesses — maximal refresh-timing pressure per access.
DEFAULT_DT_S = 2e-6

_RESULT_FIELDS = (
    "hit", "part", "latency_s", "energy_j",
    "dram_fetch", "dram_writebacks", "probes", "migrated",
)


def l2_kwargs_from_config(l2: L2Config) -> Dict[str, Any]:
    """Constructor keywords shared by the DUT and the reference model.

    Only the paper's plain two-part organization is diffable: the
    reference deliberately does not re-implement the SRAM-LR hybrid or
    early-write-termination variants.
    """
    if l2.kind != "twopart":
        raise OracleError(
            f"the differential oracle needs a two-part L2 config, "
            f"got kind {l2.kind!r}"
        )
    if l2.lr_technology != "stt":
        raise OracleError("the oracle reference models only the STT LR part")
    if l2.early_write_termination:
        raise OracleError("the oracle reference does not model EWT")
    assert l2.lr is not None  # validated by L2Config
    return {
        "hr_capacity_bytes": l2.main.capacity_bytes,
        "hr_associativity": l2.main.associativity,
        "lr_capacity_bytes": l2.lr.capacity_bytes,
        "lr_associativity": l2.lr.associativity,
        "line_size": l2.main.line_size,
        "write_threshold": l2.write_threshold,
        "hr_retention_s": l2.hr_retention_s,
        "lr_retention_s": l2.lr_retention_s,
        "buffer_lines": l2.migration_buffer_lines,
        "sequential_search": l2.sequential_search,
    }


def pressure_config(name: str = "oracle-small") -> GPUConfig:
    """A deliberately tiny two-part config for fast mutant hunting.

    Same architecture and paper-default retention/threshold parameters as
    C1-C3, but a 16 KB 4-way HR and a 2 KB 2-way LR (4 sets), so capacity
    pressure — LR evictions, HR migrations, buffer traffic — builds within
    tens of accesses instead of thousands.  The mutant self-tests and the
    shrinker run against this; production zero-divergence checks use the
    real Table 2 configurations.
    """
    from repro.config import L2Config, L2PartConfig
    from repro.units import KB

    return GPUConfig(
        name=name,
        l2=L2Config(
            kind="twopart",
            main=L2PartConfig(capacity_bytes=16 * KB, associativity=4),
            lr=L2PartConfig(capacity_bytes=2 * KB, associativity=2),
        ),
    )


def dut_counters(l2: TwoPartSTTL2) -> Dict[str, float]:
    """The DUT's counter surface, flattened to the reference's key space."""
    flat: Dict[str, float] = {
        "l2.lr_data_writes": l2.lr_data_writes,
        "l2.hr_data_writes": l2.hr_data_writes,
        "l2.refresh_writes": l2.refresh_writes,
        "l2.migrations_to_lr": l2.migrations_to_lr,
        "l2.returns_to_hr": l2.returns_to_hr,
        "l2.dram_writebacks_total": l2.dram_writebacks_total,
        "l2.data_losses": l2.data_losses,
        "l2.rewrite_intervals": len(l2.rewrite_intervals),
    }
    for part, array in (("lr", l2.lr_array), ("hr", l2.hr_array)):
        stats = array.stats
        flat[f"{part}.reads"] = stats.reads
        flat[f"{part}.writes"] = stats.writes
        flat[f"{part}.read_hits"] = stats.read_hits
        flat[f"{part}.write_hits"] = stats.write_hits
        flat[f"{part}.fills"] = stats.fills
        flat[f"{part}.evictions_clean"] = stats.evictions_clean
        flat[f"{part}.evictions_dirty"] = stats.evictions_dirty
        flat[f"{part}.invalidations"] = stats.invalidations
    for name, buffer in (("hr_to_lr", l2.hr_to_lr), ("lr_to_hr", l2.lr_to_hr)):
        stats = buffer.stats
        flat[f"buffer.{name}.pushes"] = stats.pushes
        flat[f"buffer.{name}.drains"] = stats.drains
        flat[f"buffer.{name}.overflows"] = stats.overflows
        flat[f"buffer.{name}.peak_occupancy"] = stats.peak_occupancy
        flat[f"buffer.{name}.occupancy"] = len(buffer)
    refresh = l2.refresh_engine.stats
    flat["refresh.scans"] = refresh.scans
    flat["refresh.lr_refreshes"] = refresh.lr_refreshes
    flat["refresh.lr_expiries"] = refresh.lr_expiries
    flat["refresh.hr_expirations_clean"] = refresh.hr_expirations_clean
    flat["refresh.hr_expirations_dirty"] = refresh.hr_expirations_dirty
    monitor = l2.monitor.stats
    flat["monitor.writes_observed"] = monitor.writes_observed
    flat["monitor.migrations_triggered"] = monitor.migrations_triggered
    search = l2.selector.stats
    flat["search.accesses"] = search.accesses
    flat["search.first_probe_hits"] = search.first_probe_hits
    flat["search.second_probes"] = search.second_probes
    energy = l2.energy
    flat["energy.demand_j"] = energy.demand_j
    flat["energy.migration_j"] = energy.migration_j
    flat["energy.refresh_j"] = energy.refresh_j
    flat["energy.fill_j"] = energy.fill_j
    return flat


def _dut_sweep_decisions(l2: TwoPartSTTL2) -> Optional[dict]:
    actions = l2.refresh_engine.last_actions
    return actions.as_dict() if actions is not None else None


def _ref_sweep_decisions(ref: ReferenceTwoPartL2) -> Optional[dict]:
    actions = ref.last_sweep_actions
    if actions is None:
        return None
    return {key: sorted(lines) for key, lines in actions.items()}


def _diff_snapshots(dut_snap: dict, ref_snap: dict) -> List[dict]:
    """Field-level differences between two state snapshots."""
    fields: List[dict] = []
    for part in ("lr", "hr"):
        dut_lines = dut_snap["parts"][part]
        ref_lines = ref_snap["parts"][part]
        only_dut = sorted(set(dut_lines) - set(ref_lines))
        only_ref = sorted(set(ref_lines) - set(dut_lines))
        if only_dut or only_ref:
            fields.append({
                "field": f"state.{part}.residents",
                "dut": only_dut,
                "ref": only_ref,
            })
        for line in sorted(set(dut_lines) & set(ref_lines)):
            if dut_lines[line] != ref_lines[line]:
                fields.append({
                    "field": f"state.{part}.line.{line}",
                    "dut": dut_lines[line],
                    "ref": ref_lines[line],
                })
    for name in ("hr_to_lr", "lr_to_hr"):
        if dut_snap["buffers"][name] != ref_snap["buffers"][name]:
            fields.append({
                "field": f"state.buffer.{name}",
                "dut": dut_snap["buffers"][name],
                "ref": ref_snap["buffers"][name],
            })
    return fields


class LockstepRunner:
    """Drives one DUT/reference pair through an access sequence.

    Parameters
    ----------
    dut:
        The optimized two-part L2 under test (possibly a mutant subclass).
    ref:
        The naive reference model, built with identical parameters.
    tracer:
        Optional :class:`~repro.tracing.TraceCollector`.  The runner
        counts every checked access (``oracle.accesses_checked``) and, on
        divergence, emits one ``oracle.divergence`` instant event at the
        simulated time of the diverging access — so the oracle's verdict
        lands on the same timeline as the DUT's own ``l2.*`` trace events
        and the divergence can be scrubbed to in Perfetto.
    """

    def __init__(
        self,
        dut: TwoPartSTTL2,
        ref: ReferenceTwoPartL2,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        self.dut = dut
        self.ref = ref
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _step_divergence(
        self, index: int, access: Access,
        dut_result, ref_result,
    ) -> Optional[dict]:
        """Compare one access's observable outcomes; None when identical."""
        fields: List[dict] = []
        for name in _RESULT_FIELDS:
            dut_value = getattr(dut_result, name)
            ref_value = getattr(ref_result, name)
            if dut_value != ref_value:
                fields.append(
                    {"field": f"result.{name}", "dut": dut_value, "ref": ref_value}
                )
        dut_counts = dut_counters(self.dut)
        ref_counts = self.ref.counters()
        for name in sorted(set(dut_counts) | set(ref_counts)):
            dut_value = dut_counts.get(name)
            ref_value = ref_counts.get(name)
            if dut_value != ref_value:
                fields.append(
                    {"field": f"counter.{name}", "dut": dut_value, "ref": ref_value}
                )
        dut_sweep = _dut_sweep_decisions(self.dut)
        ref_sweep = _ref_sweep_decisions(self.ref)
        if dut_sweep != ref_sweep:
            fields.append(
                {"field": "refresh.last_actions", "dut": dut_sweep, "ref": ref_sweep}
            )
        if not fields:
            return None
        address, is_write, now = access
        return {
            "index": index,
            "now_s": now,
            "address": address,
            "is_write": is_write,
            "fields": fields,
        }

    def run(self, sequence: List[Access]) -> Optional[dict]:
        """Replay ``sequence`` through both models; first divergence or None.

        The end-of-sequence architectural state comparison reports its
        divergence at ``index == len(sequence)`` with the last access's
        timestamp (or 0.0 for an empty sequence).
        """
        tracer = self.tracer
        last_now = 0.0
        for index, (address, is_write, now) in enumerate(sequence):
            last_now = now
            dut_result = self.dut.access(address, is_write, now)
            ref_result = self.ref.access(address, is_write, now)
            tracer.count("oracle.accesses_checked")
            divergence = self._step_divergence(
                index, (address, is_write, now), dut_result, ref_result
            )
            if divergence is not None:
                self._trace_divergence(divergence)
                return divergence
        fields = _diff_snapshots(
            self.dut.state_snapshot(), self.ref.state_snapshot()
        )
        if fields:
            divergence = {
                "index": len(sequence),
                "now_s": last_now,
                "address": None,
                "is_write": None,
                "fields": fields,
            }
            self._trace_divergence(divergence)
            return divergence
        return None

    def _trace_divergence(self, divergence: dict) -> None:
        if not self.tracer.enabled:
            return
        self.tracer.count("oracle.divergences")
        self.tracer.event(
            "oracle.divergence", divergence["now_s"], component="oracle",
            index=divergence["index"],
            address=divergence["address"],
            fields=[f["field"] for f in divergence["fields"]],
        )


def make_pair(
    config: GPUConfig,
    mutant: Optional[str] = None,
    tracer: Optional[TraceCollector] = None,
    engine: str = "object",
) -> Tuple[TwoPartSTTL2, ReferenceTwoPartL2]:
    """Build a (DUT, reference) pair from one Table 2 configuration.

    ``mutant`` selects a deliberately broken DUT variant from
    :data:`repro.oracle.mutants.MUTANTS` (oracle self-tests); ``None``
    builds the production DUT.  ``engine`` picks which production model is
    the DUT: the ``object`` :class:`TwoPartSTTL2`, the ``soa``
    structure-of-arrays subclass (see docs/engine.md), or ``sharded`` — a
    single-shard :class:`~repro.shard.router.ShardedL2Router` over the SoA
    L2, driving the sharded engine's routing/remap path through the same
    lockstep diff (docs/sharding.md).  Mutants are object-engine
    subclasses, so ``mutant`` requires ``engine="object"``.
    """
    if engine not in ("object", "soa", "sharded"):
        raise OracleError(
            f"unknown engine {engine!r}; expected object, soa or sharded"
        )
    kwargs = l2_kwargs_from_config(config.l2)
    if mutant is None:
        if engine in ("soa", "sharded"):
            from repro.engine.soa_l2 import SoaTwoPartL2

            dut: TwoPartSTTL2 = SoaTwoPartL2(tracer=tracer, **kwargs)
            if engine == "sharded":
                from repro.shard import ShardedL2Router

                dut = ShardedL2Router(
                    [dut], line_size=config.l2.line_size
                )
        else:
            dut = TwoPartSTTL2(tracer=tracer, **kwargs)
    elif engine != "object":
        raise OracleError(
            f"mutant {mutant!r} is an object-engine variant; "
            "drop --engine soa to run it"
        )
    else:
        from repro.oracle.mutants import build_mutant

        dut = build_mutant(mutant, tracer=tracer, **kwargs)
    ref = ReferenceTwoPartL2(**kwargs)
    return dut, ref


def diverges(
    config: GPUConfig,
    sequence: List[Access],
    mutant: Optional[str] = None,
    engine: str = "object",
) -> bool:
    """Does ``sequence`` make a fresh DUT/reference pair diverge?

    This is the shrinker's test predicate: every evaluation rebuilds both
    models so candidate subsequences are judged from a clean state.
    """
    dut, ref = make_pair(config, mutant=mutant, engine=engine)
    return LockstepRunner(dut, ref).run(sequence) is not None


def run_diff(
    profile: str,
    config: GPUConfig,
    seed: int = 0,
    accesses: int = 4000,
    dt_s: float = DEFAULT_DT_S,
    shrink: bool = False,
    mutant: Optional[str] = None,
    tracer: Optional[TraceCollector] = None,
    shrink_predicate: Optional[Callable[[List[Access]], bool]] = None,
    engine: str = "object",
) -> dict:
    """Run the full differential check for one workload profile.

    Builds the seeded synthetic workload, replays it in lockstep, and
    returns a divergence report document (see
    :func:`repro.oracle.report.build_report`).  With ``shrink=True`` a
    divergence is reduced to a minimal reproducing access sequence via
    :func:`repro.oracle.shrink.shrink_sequence` before reporting.
    ``engine`` selects the DUT backend diffed against the naive
    reference (see :func:`make_pair`).
    """
    from repro.oracle.report import build_report
    from repro.oracle.shrink import shrink_sequence
    from repro.workloads.suite import build_workload

    if accesses < 1:
        raise OracleError(f"need at least one access, got {accesses}")
    workload = build_workload(profile, num_accesses=accesses, seed=seed)
    sequence = workload.trace.lockstep_sequence(dt_s)
    dut, ref = make_pair(config, mutant=mutant, tracer=tracer, engine=engine)
    runner = LockstepRunner(dut, ref, tracer=tracer)
    divergence = runner.run(sequence)

    shrunk: Optional[dict] = None
    if divergence is not None and shrink:
        predicate = shrink_predicate or (
            lambda candidate: diverges(
                config, candidate, mutant=mutant, engine=engine
            )
        )
        # everything after the diverging access is irrelevant by definition
        prefix = sequence[: min(divergence["index"] + 1, len(sequence))]
        minimal = shrink_sequence(prefix, predicate)
        dut_min, ref_min = make_pair(config, mutant=mutant, engine=engine)
        shrunk = {
            "accesses": [[a, w, t] for a, w, t in minimal],
            "divergence": LockstepRunner(dut_min, ref_min).run(minimal),
        }
    return build_report(
        profile=profile,
        config=config.name,
        seed=seed,
        accesses=accesses,
        dt_s=dt_s,
        mutant=mutant,
        engine=engine,
        checked_accesses=(
            len(sequence) if divergence is None
            else min(divergence["index"] + 1, len(sequence))
        ),
        divergence=divergence,
        shrunk=shrunk,
        counters=dut_counters(dut),
    )
