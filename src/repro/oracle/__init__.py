"""Differential golden-model oracle for the two-part L2.

The optimized simulator core (``repro.core``) earns its speed with
precomputed tables, ``__slots__`` containers and incremental bookkeeping —
all of which are places for timing-model bugs to hide.  This package keeps
it honest: :class:`~repro.oracle.reference.ReferenceTwoPartL2` is a
deliberately naive, dictionary-based re-implementation of the same
architecture straight from the paper's prose (WWS monitor, HR<->LR
migration buffers, per-line retention clocks), and
:class:`~repro.oracle.runner.LockstepRunner` replays seeded workloads
through both models simultaneously, diffing per-access outcomes, counters,
refresh decisions and final architectural state.  A divergence is shrunk
to a 1-minimal reproducer by :func:`~repro.oracle.shrink.shrink_sequence`
and serialized via :mod:`repro.oracle.report`.

:mod:`repro.oracle.mutants` holds deliberately broken DUT variants the
test suite uses to prove the oracle actually catches the bug classes it
claims to.
"""

from repro.oracle.mutants import MUTANTS, build_mutant
from repro.oracle.reference import ReferenceTwoPartL2
from repro.oracle.report import (
    ORACLE_SCHEMA_VERSION,
    REPORT_KIND,
    build_report,
    validate_report,
)
from repro.oracle.runner import (
    DEFAULT_DT_S,
    LockstepRunner,
    diverges,
    dut_counters,
    l2_kwargs_from_config,
    make_pair,
    pressure_config,
    run_diff,
)
from repro.oracle.shrink import shrink_sequence

__all__ = [
    "DEFAULT_DT_S",
    "MUTANTS",
    "ORACLE_SCHEMA_VERSION",
    "REPORT_KIND",
    "LockstepRunner",
    "ReferenceTwoPartL2",
    "build_mutant",
    "build_report",
    "diverges",
    "dut_counters",
    "l2_kwargs_from_config",
    "make_pair",
    "pressure_config",
    "run_diff",
    "shrink_sequence",
    "validate_report",
]
