"""Delta-debugging input reduction for divergence reproducers.

Classic ``ddmin`` (Zeller & Hildebrandt) over an access sequence: starting
from a failing sequence, repeatedly try to remove chunks (at progressively
finer granularity) while the lockstep runner still diverges.  The result
is **1-minimal**: removing any single remaining access makes the
divergence disappear, which is exactly the property the oracle's
minimality tests assert.

Timestamps travel with their accesses — candidate subsequences keep the
original ``now`` values, so the timing relationship that provoked the
divergence (refresh windows, buffer drain deadlines) is preserved while
irrelevant accesses drop out.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.errors import OracleError

Access = Tuple[int, bool, float]


def shrink_sequence(
    sequence: Sequence[Access],
    fails: Callable[[List[Access]], bool],
    max_evaluations: int = 10_000,
) -> List[Access]:
    """Reduce ``sequence`` to a 1-minimal subsequence where ``fails`` holds.

    ``fails(candidate)`` must return True when the candidate still
    reproduces the divergence (on fresh models).  The input sequence
    itself must fail; :class:`~repro.errors.OracleError` is raised
    otherwise, and when ``max_evaluations`` predicate runs are exhausted
    (a safety valve — a diverging pair that flickers nondeterministically
    would otherwise loop).
    """
    current = list(sequence)
    if not current:
        raise OracleError("cannot shrink an empty sequence")
    evaluations = 0

    def check(candidate: List[Access]) -> bool:
        nonlocal evaluations
        evaluations += 1
        if evaluations > max_evaluations:
            raise OracleError(
                f"shrinker exceeded {max_evaluations} predicate evaluations"
            )
        return fails(candidate)

    if not check(current):
        raise OracleError("the input sequence does not diverge; nothing to shrink")

    granularity = 2
    while len(current) >= 2:
        chunk = len(current) // granularity
        reduced = False
        # try dropping each chunk-sized slice (test on the complement)
        for start in range(0, len(current), chunk):
            candidate = current[:start] + current[start + chunk:]
            if candidate and check(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break  # every single-access removal was tried: 1-minimal
        granularity = min(granularity * 2, len(current))
    return current
