"""Divergence-report documents: build, validate, round-trip.

The lockstep runner's verdict is serialized as one JSON document so CI can
archive it, diff it byte-for-byte between runs (the ``diff-smoke`` job
renders it twice with :func:`repro.io.canonical_json` and compares), and a
developer can replay a shrunk reproducer from the file alone.  The schema
is deliberately flat and fully JSON-native — no floats-as-strings, no
tuples — so ``canonical_json(load_json(path)) == canonical_json(report)``
holds exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import OracleError

#: Version stamped into every divergence report.
ORACLE_SCHEMA_VERSION = 1

#: Document discriminator (other repro JSON artifacts carry other kinds).
REPORT_KIND = "oracle-diff"

#: Required keys of one divergence record and their accepted types.
_DIVERGENCE_KEYS = ("index", "now_s", "address", "is_write", "fields")


def build_report(
    *,
    profile: str,
    config: str,
    seed: int,
    accesses: int,
    dt_s: float,
    mutant: Optional[str],
    checked_accesses: int,
    divergence: Optional[dict],
    shrunk: Optional[dict],
    counters: Dict[str, Any],
    engine: str = "object",
) -> dict:
    """Assemble the canonical divergence-report document."""
    return {
        "schema_version": ORACLE_SCHEMA_VERSION,
        "kind": REPORT_KIND,
        "profile": profile,
        "config": config,
        "seed": seed,
        "accesses": accesses,
        "dt_s": dt_s,
        "mutant": mutant,
        "engine": engine,
        "checked_accesses": checked_accesses,
        "divergence": divergence,
        "shrunk": shrunk,
        "counters": counters,
    }


def _validate_divergence(record: Any, where: str) -> None:
    if not isinstance(record, dict):
        raise OracleError(f"{where} must be an object, got {type(record).__name__}")
    for key in _DIVERGENCE_KEYS:
        if key not in record:
            raise OracleError(f"{where} is missing key {key!r}")
    if not isinstance(record["index"], int) or record["index"] < 0:
        raise OracleError(f"{where}.index must be a non-negative integer")
    if not isinstance(record["fields"], list) or not record["fields"]:
        raise OracleError(f"{where}.fields must be a non-empty list")
    for position, field in enumerate(record["fields"]):
        if not isinstance(field, dict) or "field" not in field:
            raise OracleError(
                f"{where}.fields[{position}] must be an object with a 'field' key"
            )
        if "dut" not in field or "ref" not in field:
            raise OracleError(
                f"{where}.fields[{position}] must carry both 'dut' and 'ref' values"
            )


def validate_report(payload: Any) -> dict:
    """Check a (possibly re-loaded) report document; return it unchanged.

    Raises :class:`~repro.errors.OracleError` naming the first offending
    field, so a truncated CI artifact or a hand-edited reproducer file
    fails loudly instead of silently reading as "no divergence".
    """
    if not isinstance(payload, dict):
        raise OracleError(f"report must be an object, got {type(payload).__name__}")
    if payload.get("schema_version") != ORACLE_SCHEMA_VERSION:
        raise OracleError(
            f"unsupported oracle schema version "
            f"{payload.get('schema_version')!r} (expected {ORACLE_SCHEMA_VERSION})"
        )
    if payload.get("kind") != REPORT_KIND:
        raise OracleError(
            f"not an oracle report: kind={payload.get('kind')!r} "
            f"(expected {REPORT_KIND!r})"
        )
    for key, kinds in (
        ("profile", str),
        ("config", str),
        ("seed", int),
        ("accesses", int),
        ("dt_s", (int, float)),
        ("checked_accesses", int),
        ("counters", dict),
    ):
        if key not in payload:
            raise OracleError(f"report is missing key {key!r}")
        if not isinstance(payload[key], kinds):
            raise OracleError(
                f"report key {key!r} has type {type(payload[key]).__name__}"
            )
    if "mutant" not in payload or not isinstance(payload["mutant"], (str, type(None))):
        raise OracleError("report key 'mutant' must be a string or null")
    # 'engine' was added after schema v1 shipped; absent means "object"
    if not isinstance(payload.get("engine", "object"), str):
        raise OracleError("report key 'engine' must be a string")
    if "divergence" not in payload:
        raise OracleError("report is missing key 'divergence'")
    if payload["divergence"] is not None:
        _validate_divergence(payload["divergence"], "divergence")
    shrunk = payload.get("shrunk")
    if shrunk is not None:
        if not isinstance(shrunk, dict):
            raise OracleError("report key 'shrunk' must be an object or null")
        accesses = shrunk.get("accesses")
        if not isinstance(accesses, list) or not accesses:
            raise OracleError("shrunk.accesses must be a non-empty list")
        for position, access in enumerate(accesses):
            if (
                not isinstance(access, list)
                or len(access) != 3
                or not isinstance(access[0], int)
                or not isinstance(access[1], bool)
                or not isinstance(access[2], (int, float))
            ):
                raise OracleError(
                    f"shrunk.accesses[{position}] must be "
                    f"[address, is_write, now_s]"
                )
        _validate_divergence(shrunk.get("divergence"), "shrunk.divergence")
        if payload["divergence"] is None:
            raise OracleError("report carries a shrunk reproducer but no divergence")
    return payload
