"""Deliberately broken L2 variants that the oracle must catch.

Mutation-style self-tests for the differential oracle: each factory here
builds a :class:`~repro.core.twopart.TwoPartSTTL2` subclass with one
realistic, localized bug.  If the lockstep runner fails to flag a mutant
within a bounded access budget, the oracle's comparison surface has a
blind spot — so these mutants are run in the test suite (and are reachable
from the CLI via ``repro-sttgpu diff --mutant NAME`` for demonstrating the
shrinking workflow on a known bug).

The three mutants target the three subsystems whose timing the paper's
claims lean on:

``probe-order``
    The search selector probes HR first for writes and LR first for reads
    (the paper's order, inverted).  Probe counts, tag energy and serialized
    tag latency shift on every first-probe hit.
``drop-lr-return``
    LR evictions vanish instead of returning to HR through the LR->HR
    buffer — the "two-part inclusion" bug: the write working set silently
    shrinks the cache.
``no-refresh-restart``
    LR refresh pays its energy but does not restart the line's retention
    clock, so refreshed lines still expire — the exact failure mode the
    refresh-cadence fix in this PR guards against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.search import SearchSelector
from repro.core.twopart import TwoPartSTTL2
from repro.errors import OracleError
from repro.tracing import TraceCollector


class _SwappedOrderSelector(SearchSelector):
    """Probe order inverted relative to the paper (writes expect HR)."""

    WRITE_ORDER = ("hr", "lr")
    READ_ORDER = ("lr", "hr")


class _ProbeOrderMutant(TwoPartSTTL2):
    """Wrong sequential-search probe order (selector and energy table)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.selector = _SwappedOrderSelector(
            sequential=self.selector.sequential, tracer=self.tracer
        )
        # rebuild the precomputed probe-energy table for the swapped order,
        # exactly as the production constructor does
        models = {"lr": self.lr_model, "hr": self.hr_model}
        self._probe_energy_table = {}
        for write_access in (False, True):
            order = self.selector.probe_order(write_access)
            first = models[order[0]].tag_probe_energy
            self._probe_energy_table[write_access] = {
                1: first,
                2: first + models[order[1]].tag_probe_energy,
            }


class _DropLrReturnMutant(TwoPartSTTL2):
    """LR eviction victims are silently discarded instead of re-filling HR."""

    def _return_to_hr(self, victim_line: int, victim_dirty: bool, now: float) -> int:
        return 0


class _NoRefreshRestartMutant(TwoPartSTTL2):
    """LR refresh charges energy but leaves the retention clock running."""

    def maintenance(self, now: float) -> int:
        due = self.refresh_engine.due(now)
        pre_insert: Dict[int, float] = {}
        if due:
            rebuild = self.lr_array.mapper.rebuild
            for index, _, block in self.lr_array.iter_blocks():
                if block.valid:
                    pre_insert[rebuild(block.tag, index)] = block.insert_time
        writebacks = super().maintenance(now)
        if due and self.refresh_engine.last_actions is not None:
            for address in self.refresh_engine.last_actions.lr_refresh:
                block = self.lr_array.block_at(address)
                if block is not None and address in pre_insert:
                    # undo the clock restart the refresh performed
                    block.insert_time = pre_insert[address]
        return writebacks


MUTANTS: Dict[str, Callable[..., TwoPartSTTL2]] = {
    "probe-order": _ProbeOrderMutant,
    "drop-lr-return": _DropLrReturnMutant,
    "no-refresh-restart": _NoRefreshRestartMutant,
}


def build_mutant(
    name: str, tracer: Optional[TraceCollector] = None, **l2_kwargs
) -> TwoPartSTTL2:
    """Instantiate the named broken variant with production parameters."""
    try:
        factory = MUTANTS[name]
    except KeyError:
        raise OracleError(
            f"unknown mutant {name!r}; choose from {sorted(MUTANTS)}"
        ) from None
    return factory(tracer=tracer, **l2_kwargs)
