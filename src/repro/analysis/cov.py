"""Inter- and intra-set write variation (the paper's Fig. 3).

Following Wang et al. (i2WAP, HPCA'13 — the paper's ref [15]), write
imbalance is quantified with the coefficient of variation (COV = standard
deviation / mean, reported in percent):

* **inter-set** — COV of total write counts across cache sets;
* **intra-set** — COV of write counts across the ways of one set, averaged
  over sets with any writes.

High COV motivates the LR part: a few blocks take most writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cache.array import SetAssociativeCache
from repro.errors import AnalysisError


@dataclass(frozen=True)
class WriteVariation:
    """COV results for one cache after a run."""

    inter_set_cov: float
    intra_set_cov: float
    total_writes: int

    def as_percentages(self) -> dict:
        """COVs in percent (how the paper's Fig. 3 axis is labelled)."""
        return {
            "inter_set_pct": self.inter_set_cov * 100.0,
            "intra_set_pct": self.intra_set_cov * 100.0,
        }


def _cov(values: Sequence[float]) -> float:
    arr = np.asarray(values, dtype=np.float64)
    mean = arr.mean()
    if mean == 0:
        return 0.0
    return float(arr.std() / mean)


def write_variation(cache: SetAssociativeCache) -> WriteVariation:
    """Compute inter/intra-set write COV from a cache's write counters.

    Inter-set uses the cumulative per-set write counts; intra-set uses the
    current residents' per-way write counts (an approximation of per-frame
    counts that matches how the counters are observable in hardware).
    """
    per_set = cache.per_set_write_counts()
    total = sum(per_set)
    if total == 0:
        raise AnalysisError("no writes were recorded; COV is undefined")
    inter = _cov(per_set)

    intra_covs: List[float] = []
    for way_counts in cache.per_way_write_counts():
        if sum(way_counts) > 0:
            intra_covs.append(_cov(way_counts))
    intra = float(np.mean(intra_covs)) if intra_covs else 0.0
    return WriteVariation(inter_set_cov=inter, intra_set_cov=intra, total_writes=total)
