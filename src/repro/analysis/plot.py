"""ASCII bar charts — figure-like terminal rendering for the experiments.

The paper's figures are bar charts; matplotlib is out of scope for an
offline terminal workflow, so this renders horizontal unicode bars.  Used by
the CLI's ``--bars`` flag to display Fig. 8-style columns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError

FULL_BLOCK = "█"
PARTIAL_BLOCKS = ["", "▏", "▎", "▍", "▌",
                  "▋", "▊", "▉"]


def _bar(value: float, scale: float, width: int) -> str:
    cells = value / scale * width
    full = int(cells)
    partial = int((cells - full) * 8)
    return FULL_BLOCK * full + PARTIAL_BLOCKS[partial]


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    reference: Optional[float] = None,
    precision: int = 2,
) -> str:
    """Render one horizontal bar per (label, value).

    ``reference`` draws a tick at that value (e.g. 1.0 for normalized
    figures) so over/under-unity bars are readable at a glance.
    """
    if len(labels) != len(values):
        raise AnalysisError("labels and values must have equal length")
    if not labels:
        raise AnalysisError("nothing to plot")
    if width <= 0:
        raise AnalysisError("width must be positive")
    if any(v < 0 for v in values):
        raise AnalysisError("bar values must be non-negative")

    scale = max(list(values) + ([reference] if reference else []))
    if scale == 0:
        scale = 1.0
    label_width = max(len(str(label)) for label in labels)
    ref_column = (
        int(reference / scale * width) if reference is not None else None
    )

    lines: List[str] = []
    for label, value in zip(labels, values):
        bar = _bar(value, scale, width)
        if ref_column is not None:
            padded = list(bar.ljust(width + 1))
            if ref_column < len(padded) and padded[ref_column] == " ":
                padded[ref_column] = "|"
            bar = "".join(padded).rstrip()
        lines.append(
            f"{str(label).rjust(label_width)}  {value:.{precision}f}  {bar}"
        )
    return "\n".join(lines)


def bars_for_columns(
    row_labels: Sequence[str],
    column_label: str,
    values: Sequence[float],
    reference: Optional[float] = 1.0,
) -> str:
    """Titled bar block for one experiment column."""
    body = ascii_bars(row_labels, values, reference=reference)
    return f"-- {column_label} --\n{body}"
