"""Rewrite-interval distribution (the paper's Fig. 6).

The paper buckets the time between successive writes to the same LR block
into <=1 us / <=5 us / <=10 us / <=1 ms / >2.5 ms bins and observes that
most LR rewrites land under 10 us — the justification for microsecond-scale
LR retention.

Bucket bounds are **exact decimal literals** (``1e-6``, ``5e-6``, ``1e-5``,
``1e-3``, ``2.5e-3``), not products like ``10 * US``: ``10 * 1e-6`` rounds
to ``9.999999999999999e-06``, one ulp *below* ``1e-5``, so an interval of
exactly 10 us would misclassify into the ``<=1ms`` bucket and Fig. 6's
under-10 us share would undercount.  Classification is inclusive
(``interval <= bound``), so an interval exactly at a bin edge lands in the
paper's bin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import AnalysisError

#: (label, upper bound in seconds); the last bucket is open-ended.  The
#: bounds are exact literals — see the module docstring for why computed
#: bounds (``10 * US``) are one ulp off the bin edge.
REWRITE_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("<=1us", 1e-6),
    ("<=5us", 5e-6),
    ("<=10us", 1e-5),
    ("<=1ms", 1e-3),
    ("<=2.5ms", 2.5e-3),
    (">2.5ms", float("inf")),
)

#: Relative tolerance within which a ``fraction_under`` threshold snaps to
#: a bucket bound.  Wide enough to absorb float-arithmetic artifacts like
#: ``10 * US`` (one ulp below ``1e-5``), far too narrow to capture a
#: genuinely different threshold (the closest bounds differ by 2x).
THRESHOLD_SNAP_REL_TOL = 1e-9


def snap_threshold(seconds: float) -> float:
    """The bucket bound ``seconds`` refers to, or raise ``AnalysisError``.

    ``seconds`` must be a bucket bound, either exactly or within
    :data:`THRESHOLD_SNAP_REL_TOL` relative tolerance (which absorbs
    one-ulp float artifacts such as ``10 * US``).  ``float("inf")`` names
    the open-ended bucket.  Anything else — e.g. 7 us, which falls
    strictly inside the ``<=10us`` bucket — raises
    :class:`~repro.errors.AnalysisError`, because the distribution has no
    sub-bucket resolution to answer it with.
    """
    for _, bound in REWRITE_BUCKETS:
        if seconds == bound:
            return bound
        if math.isfinite(bound) and math.isclose(
            seconds, bound, rel_tol=THRESHOLD_SNAP_REL_TOL
        ):
            return bound
    edges = [bound for _, bound in REWRITE_BUCKETS if math.isfinite(bound)]
    raise AnalysisError(
        f"threshold {seconds!r} s is not a rewrite-bucket edge; the "
        f"distribution only has bucket resolution — use one of {edges} "
        f"(or inf)"
    )


@dataclass(frozen=True)
class RewriteDistribution:
    """Bucketed rewrite intervals for one run."""

    counts: Dict[str, int]
    total: int

    def fractions(self) -> Dict[str, float]:
        """Bucket shares (sum to 1 when total > 0)."""
        if self.total == 0:
            return {label: 0.0 for label, _ in REWRITE_BUCKETS}
        return {label: self.counts[label] / self.total for label, _ in REWRITE_BUCKETS}

    def fraction_under(self, seconds: float) -> float:
        """Share of intervals at or below ``seconds``.

        Contract: ``seconds`` must name a bucket edge (see
        :func:`snap_threshold`) — exactly, or within
        :data:`THRESHOLD_SNAP_REL_TOL` to absorb float artifacts like
        ``10 * US``.  A threshold strictly inside a bucket raises
        :class:`~repro.errors.AnalysisError` instead of silently dropping
        that bucket's intervals (the pre-fix behaviour undercounted).
        """
        threshold = snap_threshold(seconds)
        if self.total == 0:
            return 0.0
        covered = 0
        for label, bound in REWRITE_BUCKETS:
            if bound <= threshold:
                covered += self.counts[label]
        return covered / self.total


def rewrite_interval_distribution(intervals_s: Sequence[float]) -> RewriteDistribution:
    """Bucket raw rewrite intervals (seconds) into the paper's bins."""
    counts = {label: 0 for label, _ in REWRITE_BUCKETS}
    total = 0
    for interval in intervals_s:
        if interval < 0:
            raise AnalysisError(f"negative rewrite interval {interval}")
        total += 1
        for label, bound in REWRITE_BUCKETS:
            if interval <= bound:
                counts[label] += 1
                break
    return RewriteDistribution(counts=counts, total=total)
