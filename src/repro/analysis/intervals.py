"""Rewrite-interval distribution (the paper's Fig. 6).

The paper buckets the time between successive writes to the same LR block
into <=1 us / <=5 us / <=10 us / <=1 ms / >2.5 ms bins and observes that
most LR rewrites land under 10 us — the justification for microsecond-scale
LR retention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import AnalysisError
from repro.units import MS, US

#: (label, upper bound in seconds); the last bucket is open-ended.
REWRITE_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("<=1us", 1 * US),
    ("<=5us", 5 * US),
    ("<=10us", 10 * US),
    ("<=1ms", 1 * MS),
    ("<=2.5ms", 2.5 * MS),
    (">2.5ms", float("inf")),
)


@dataclass(frozen=True)
class RewriteDistribution:
    """Bucketed rewrite intervals for one run."""

    counts: Dict[str, int]
    total: int

    def fractions(self) -> Dict[str, float]:
        """Bucket shares (sum to 1 when total > 0)."""
        if self.total == 0:
            return {label: 0.0 for label, _ in REWRITE_BUCKETS}
        return {label: self.counts[label] / self.total for label, _ in REWRITE_BUCKETS}

    def fraction_under(self, seconds: float) -> float:
        """Share of intervals at or below ``seconds`` (bucket-resolution)."""
        if self.total == 0:
            return 0.0
        covered = 0
        for label, bound in REWRITE_BUCKETS:
            if bound <= seconds:
                covered += self.counts[label]
        return covered / self.total


def rewrite_interval_distribution(intervals_s: Sequence[float]) -> RewriteDistribution:
    """Bucket raw rewrite intervals (seconds) into the paper's bins."""
    counts = {label: 0 for label, _ in REWRITE_BUCKETS}
    total = 0
    for interval in intervals_s:
        if interval < 0:
            raise AnalysisError(f"negative rewrite interval {interval}")
        total += 1
        for label, bound in REWRITE_BUCKETS:
            if interval <= bound:
                counts[label] += 1
                break
    return RewriteDistribution(counts=counts, total=total)
