"""Workload/cache characterization analyses (the paper's section 4)."""

from repro.analysis.cov import WriteVariation, write_variation
from repro.analysis.wws import WWSWindow, weighted_wws_fraction, write_working_set
from repro.analysis.intervals import (
    REWRITE_BUCKETS,
    THRESHOLD_SNAP_REL_TOL,
    RewriteDistribution,
    rewrite_interval_distribution,
    snap_threshold,
)
from repro.analysis.lifetime import (
    DEFAULT_ENDURANCE_WRITES,
    LifetimeReport,
    lifetime_report,
    relative_lifetime,
)
from repro.analysis.tables import format_table, to_csv

__all__ = [
    "WriteVariation",
    "write_variation",
    "WWSWindow",
    "weighted_wws_fraction",
    "write_working_set",
    "REWRITE_BUCKETS",
    "THRESHOLD_SNAP_REL_TOL",
    "RewriteDistribution",
    "rewrite_interval_distribution",
    "snap_threshold",
    "DEFAULT_ENDURANCE_WRITES",
    "LifetimeReport",
    "lifetime_report",
    "relative_lifetime",
    "format_table",
    "to_csv",
]
