"""ASCII table / CSV emitters shared by the experiment harnesses."""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    precision: int = 3,
) -> str:
    """Fixed-width ASCII table (the benches print these)."""
    rendered: List[List[str]] = [
        [_render(cell, precision) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered)) if rendered
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[Cell]]) -> str:
    """Comma-separated rendering (no quoting; keep cells comma-free)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_render(cell, 6) for cell in row))
    return "\n".join(lines)
