"""Endurance / lifetime analysis (the i2WAP perspective, paper ref [15]).

STT-RAM cells wear out after a finite number of writes (10^12-10^15 in the
literature; far better than flash but not unlimited).  Because the array
dies when its *hottest* frame dies, lifetime is set by the maximum per-frame
write rate, and write-variation reduction (Wang et al., i2WAP, HPCA 2013 —
the source of the paper's Fig. 3 methodology) translates directly into
lifetime.

This module turns the per-frame wear counters of
:meth:`repro.cache.array.SetAssociativeCache.per_frame_write_counts` into
lifetime estimates, and quantifies the headroom ideal wear-leveling would
buy (the ratio max-rate / mean-rate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.array import SetAssociativeCache
from repro.errors import AnalysisError
from repro.units import YEAR

#: Conservative STT-RAM write endurance (writes per cell).
DEFAULT_ENDURANCE_WRITES = 4.0e12


@dataclass(frozen=True)
class LifetimeReport:
    """Lifetime estimate for one cache array after a measured run.

    Attributes
    ----------
    max_frame_writes / mean_frame_writes:
        Wear of the hottest frame and the average frame over the run.
    elapsed_s:
        Simulated time the counts were accumulated over.
    endurance_writes:
        Cell endurance assumed.
    """

    max_frame_writes: int
    mean_frame_writes: float
    elapsed_s: float
    endurance_writes: float

    @property
    def max_write_rate(self) -> float:
        """Writes/second of the hottest frame."""
        return self.max_frame_writes / self.elapsed_s

    @property
    def lifetime_s(self) -> float:
        """Time until the hottest frame exhausts its endurance."""
        if self.max_frame_writes == 0:
            return float("inf")
        return self.endurance_writes / self.max_write_rate

    @property
    def lifetime_years(self) -> float:
        """Lifetime in years."""
        return self.lifetime_s / YEAR

    @property
    def imbalance(self) -> float:
        """Hottest-to-average wear ratio — ideal wear-leveling headroom.

        1.0 means perfectly even wear; ``k`` means ideal leveling would
        extend lifetime by up to ``k``x.
        """
        if self.mean_frame_writes == 0:
            return 1.0
        return self.max_frame_writes / self.mean_frame_writes


def lifetime_report(
    cache: SetAssociativeCache,
    elapsed_s: float,
    endurance_writes: float = DEFAULT_ENDURANCE_WRITES,
) -> LifetimeReport:
    """Build a :class:`LifetimeReport` from an array's wear counters."""
    if elapsed_s <= 0:
        raise AnalysisError("elapsed time must be positive")
    if endurance_writes <= 0:
        raise AnalysisError("endurance must be positive")
    frames = np.asarray(cache.per_frame_write_counts(), dtype=np.float64)
    if frames.size == 0:
        raise AnalysisError("cache has no frames")
    return LifetimeReport(
        max_frame_writes=int(frames.max()),
        mean_frame_writes=float(frames.mean()),
        elapsed_s=elapsed_s,
        endurance_writes=endurance_writes,
    )


def relative_lifetime(a: LifetimeReport, b: LifetimeReport) -> float:
    """Lifetime of ``a`` relative to ``b`` (>1 means ``a`` lives longer)."""
    if b.lifetime_s == float("inf"):
        raise AnalysisError("reference lifetime is unbounded")
    return a.lifetime_s / b.lifetime_s
