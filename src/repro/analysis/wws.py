"""Write-working-set (WWS) analysis over time windows.

The paper's two key observations (section 1): within a time window the WWS
is *small*, and rewrite intervals of WWS blocks are short.  This module
measures the first claim directly from a trace: the number of distinct
lines written per window, versus the total distinct lines touched.

Each :class:`WWSWindow` records its own ``size`` (number of trace records
it covers) because the final window of a trace is usually partial: a
10-access tail must not weigh as much as a full 2000-access window when
averaging across windows.  :func:`weighted_wws_fraction` is the canonical
size-weighted aggregation; the surrogate pre-characterization
(:mod:`repro.surrogate.features`) builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import AnalysisError
from repro.workloads.trace import FLAG_WRITE, Trace


@dataclass(frozen=True)
class WWSWindow:
    """WWS statistics of one window of the trace."""

    start_index: int
    size: int
    distinct_written_lines: int
    distinct_touched_lines: int
    writes: int

    @property
    def wws_fraction(self) -> float:
        """Written lines as a fraction of touched lines in this window."""
        if self.distinct_touched_lines == 0:
            return 0.0
        return self.distinct_written_lines / self.distinct_touched_lines


def write_working_set(
    trace: Trace, window: int, line_size: int = 256
) -> List[WWSWindow]:
    """Per-window WWS sizes for a trace at ``line_size`` granularity.

    The final window is partial whenever ``len(trace)`` is not a multiple
    of ``window``; its :attr:`WWSWindow.size` records how many accesses it
    actually covers so aggregations can weight it accordingly.
    """
    if window <= 0:
        raise AnalysisError("window must be positive")
    if line_size <= 0:
        raise AnalysisError("line size must be positive")
    results: List[WWSWindow] = []
    addresses = trace.address
    flags = trace.flags
    for start in range(0, len(trace), window):
        stop = min(start + window, len(trace))
        lines = addresses[start:stop] // line_size
        writes_mask = (flags[start:stop] & FLAG_WRITE) != 0
        written = set(lines[writes_mask].tolist())
        touched = set(lines.tolist())
        results.append(
            WWSWindow(
                start_index=start,
                size=stop - start,
                distinct_written_lines=len(written),
                distinct_touched_lines=len(touched),
                writes=int(writes_mask.sum()),
            )
        )
    return results


def weighted_wws_fraction(windows: Sequence[WWSWindow]) -> float:
    """Size-weighted mean of per-window WWS fractions (0.0 for no windows).

    Weights each window by its :attr:`WWSWindow.size`, so a partial tail
    window contributes proportionally to the accesses it covers instead of
    counting like a full window (the naive unweighted mean skews toward
    whatever the trace happened to end on).
    """
    total = sum(w.size for w in windows)
    if total == 0:
        return 0.0
    return sum(w.wws_fraction * w.size for w in windows) / total
