"""Replacement policies.

Each policy instance manages one set of ``associativity`` ways.  The three
hooks mirror what a hardware policy sees:

* :meth:`ReplacementPolicy.on_hit`  — a way was touched,
* :meth:`ReplacementPolicy.on_fill` — a way was (re)installed,
* :meth:`ReplacementPolicy.victim`  — pick the way to evict.

``victim`` must prefer invalid ways (the caller passes a validity predicate)
so policies never evict live data while free ways exist.
"""

from __future__ import annotations

import random
from typing import Callable, List

from repro.errors import ConfigurationError

ValidFn = Callable[[int], bool]


class ReplacementPolicy:
    """Abstract base; see module docstring for the protocol."""

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        self.associativity = associativity

    def on_hit(self, way: int) -> None:
        """Record a demand hit on ``way``."""
        raise NotImplementedError

    def on_fill(self, way: int) -> None:
        """Record that ``way`` was (re)installed."""
        raise NotImplementedError

    def victim(self, valid: ValidFn) -> int:
        """Return the way to evict; invalid ways take priority."""
        for way in range(self.associativity):
            if not valid(way):
                return way
        return self._pick_valid_victim()

    def full_victim(self) -> int:
        """Victim when the caller knows every way is valid.

        Skips the validity scan of :meth:`victim`; callers that already
        scanned their ways (the hot fill path) use this directly.
        """
        return self._pick_valid_victim()

    def _pick_valid_victim(self) -> int:
        raise NotImplementedError

    def _check_way(self, way: int) -> None:
        if not 0 <= way < self.associativity:
            raise ConfigurationError(
                f"way {way} out of range for associativity {self.associativity}"
            )


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via a recency list (MRU at the back)."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._order: List[int] = list(range(associativity))

    def _touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_hit(self, way: int) -> None:
        """Move ``way`` to the MRU end of the recency list."""
        self._check_way(way)
        self._touch(way)

    def on_fill(self, way: int) -> None:
        """Treat a fill like a touch: the new line becomes MRU."""
        self._check_way(way)
        self._touch(way)

    def _pick_valid_victim(self) -> int:
        return self._order[0]


class TreePLRUPolicy(ReplacementPolicy):
    """Tree-based pseudo-LRU (binary tree of direction bits).

    The standard hardware approximation: each internal node points away from
    the most recently used half.  Associativity is rounded up to the next
    power of two internally; phantom ways are never returned because the
    caller's validity predicate is consulted first and phantom indices are
    clamped into range.
    """

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        size = 1
        while size < associativity:
            size *= 2
        self._leaves = size
        self._bits = [0] * max(1, size - 1)

    def _update(self, way: int) -> None:
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._bits[node] = 1  # point away: towards the upper half
                node = 2 * node + 1
                hi = mid
            else:
                self._bits[node] = 0  # point towards the lower half
                node = 2 * node + 2
                lo = mid
        return None

    def on_hit(self, way: int) -> None:
        """Flip the tree bits along ``way``'s path to point away from it."""
        self._check_way(way)
        self._update(way)

    def on_fill(self, way: int) -> None:
        """Same as a hit: the filled way becomes the protected half."""
        self._check_way(way)
        self._update(way)

    def _pick_valid_victim(self) -> int:
        node = 0
        lo, hi = 0, self._leaves
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return min(lo, self.associativity - 1)


class FIFOPolicy(ReplacementPolicy):
    """First-in first-out: eviction order follows fill order only."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._queue: List[int] = list(range(associativity))

    def on_hit(self, way: int) -> None:
        """No-op beyond validation: hits do not reorder a FIFO."""
        self._check_way(way)

    def on_fill(self, way: int) -> None:
        """Send the filled way to the back of the eviction queue."""
        self._check_way(way)
        if way in self._queue:
            self._queue.remove(way)
        self._queue.append(way)

    def _pick_valid_victim(self) -> int:
        return self._queue[0]


class RandomPolicy(ReplacementPolicy):
    """Seeded random replacement (deterministic across runs)."""

    def __init__(self, associativity: int, seed: int = 0) -> None:
        super().__init__(associativity)
        self._rng = random.Random(seed)

    def on_hit(self, way: int) -> None:
        """No-op: random replacement keeps no recency state."""
        self._check_way(way)

    def on_fill(self, way: int) -> None:
        """No-op: random replacement keeps no recency state."""
        self._check_way(way)

    def _pick_valid_victim(self) -> int:
        return self._rng.randrange(self.associativity)


class NRUPolicy(ReplacementPolicy):
    """Not-recently-used: one reference bit per way, cleared when all set."""

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._referenced = [False] * associativity

    def _mark(self, way: int) -> None:
        self._referenced[way] = True
        if all(self._referenced):
            self._referenced = [False] * self.associativity
            self._referenced[way] = True

    def on_hit(self, way: int) -> None:
        """Set ``way``'s reference bit (resetting the epoch if all are set)."""
        self._check_way(way)
        self._mark(way)

    def on_fill(self, way: int) -> None:
        """Mark the filled way referenced, like a hit."""
        self._check_way(way)
        self._mark(way)

    def _pick_valid_victim(self) -> int:
        for way, referenced in enumerate(self._referenced):
            if not referenced:
                return way
        return 0


_POLICIES = {
    "lru": LRUPolicy,
    "plru": TreePLRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "nru": NRUPolicy,
}


def make_policy(name: str, associativity: int, seed: int = 0) -> ReplacementPolicy:
    """Instantiate a policy by name (``lru``/``plru``/``fifo``/``random``/``nru``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(associativity, seed=seed)
    return cls(associativity)
