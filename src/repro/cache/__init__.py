"""Generic cache substrate.

Behavioural (trace-driven) cache machinery shared by the GPU L1s, the SRAM
L2 baseline, the naive STT-RAM L2 baseline, and the two-part LR/HR arrays of
the paper's proposal:

* :mod:`repro.cache.address` — address slicing and bank hashing.
* :mod:`repro.cache.block` — per-line state (tag, dirty, write counters,
  last-write timestamps for retention analysis).
* :mod:`repro.cache.replacement` — LRU, tree-PLRU, FIFO, NRU and seeded
  random replacement policies.
* :mod:`repro.cache.cacheset` / :mod:`repro.cache.array` — set-associative
  behavioural array with full statistics.
* :mod:`repro.cache.mshr` — miss-status holding registers with coalescing.
* :mod:`repro.cache.banked` — address-interleaved banking with conflict
  accounting.
"""

from repro.cache.address import AddressMapper
from repro.cache.block import CacheBlock
from repro.cache.replacement import (
    ReplacementPolicy,
    LRUPolicy,
    TreePLRUPolicy,
    FIFOPolicy,
    RandomPolicy,
    NRUPolicy,
    make_policy,
)
from repro.cache.cacheset import CacheSet
from repro.cache.array import AccessOutcome, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.cache.mshr import MSHRFile
from repro.cache.banked import BankedCache
from repro.cache.wearlevel import WearLevelingCache

__all__ = [
    "AddressMapper",
    "CacheBlock",
    "ReplacementPolicy",
    "LRUPolicy",
    "TreePLRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "NRUPolicy",
    "make_policy",
    "CacheSet",
    "AccessOutcome",
    "SetAssociativeCache",
    "CacheStats",
    "MSHRFile",
    "BankedCache",
    "WearLevelingCache",
]
