"""Address-interleaved cache banking with conflict accounting.

The GPU L2 is "a banked cache array shared by all SMs"; each bank serves one
request at a time.  In a trace-driven model we cannot replay true request
timing, so the bank model tracks, per bank, a *busy-until* timestamp: a
request arriving while its bank is busy queues behind it and the extra wait
is reported as conflict latency.  This captures the first-order effect the
paper relies on (slow STT-RAM writes occupy banks longer, and the LR part
absorbs them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.address import bank_index
from repro.errors import ConfigurationError, GeometryError
from repro.units import log2_int


@dataclass
class BankStats:
    """Per-bank-array counters."""

    requests: int = 0
    conflicts: int = 0
    total_wait: float = 0.0

    @property
    def conflict_rate(self) -> float:
        """Fraction of requests that had to queue."""
        return self.conflicts / self.requests if self.requests else 0.0

    @property
    def mean_wait(self) -> float:
        """Mean queueing wait (s) over all requests."""
        return self.total_wait / self.requests if self.requests else 0.0


class BankedCache:
    """Bank scheduler: maps lines to banks and accounts contention.

    This class does not store cache lines itself; it wraps whichever
    behavioural array the owner routes requests to, adding only the bank
    timing dimension.  Keeping the concerns separate lets the same scheduler
    front the SRAM baseline, the naive STT baseline and the two-part cache.
    """

    def __init__(self, num_banks: int, line_size: int) -> None:
        if num_banks <= 0:
            raise ConfigurationError("bank count must be positive")
        self.num_banks = num_banks
        self.line_size = line_size
        # validate the geometry once (power-of-two checks) so the per-request
        # bank hash is a bare shift-and-mask
        bank_index(0, line_size, num_banks)
        self._line_shift = log2_int(line_size)
        self._bank_mask = num_banks - 1
        self._busy_until: List[float] = [0.0] * num_banks
        self.stats = BankStats()

    def bank_for(self, address: int) -> int:
        """Bank serving ``address`` (line-interleaved)."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        return (address >> self._line_shift) & self._bank_mask

    def schedule(self, address: int, now: float, service_time: float) -> float:
        """Admit a request; returns the queueing wait (s) it experienced.

        The bank is then busy until ``max(now, prev_busy) + service_time``.
        """
        if service_time < 0:
            raise ConfigurationError("service time must be non-negative")
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        bank = (address >> self._line_shift) & self._bank_mask
        busy = self._busy_until[bank]
        start = busy if busy > now else now
        wait = start - now
        self._busy_until[bank] = start + service_time
        stats = self.stats
        stats.requests += 1
        if wait > 0:
            stats.conflicts += 1
            stats.total_wait += wait
        return wait

    def busy_until(self, address: int) -> float:
        """When the bank owning ``address`` frees up."""
        return self._busy_until[self.bank_for(address)]

    def utilization(self, elapsed: float) -> float:
        """Aggregate bank busy fraction over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        busy = sum(min(t, elapsed) for t in self._busy_until)
        return busy / (self.num_banks * elapsed)

    def reset(self) -> None:
        """Clear all bank timing state."""
        self._busy_until = [0.0] * self.num_banks
