"""Address-interleaved cache banking: shard router + conflict accounting.

The GPU L2 is "a banked cache array shared by all SMs"; each bank serves one
request at a time.  In a trace-driven model we cannot replay true request
timing, so the bank model tracks, per bank, a *busy-until* timestamp: a
request arriving while its bank is busy queues behind it and the extra wait
is reported as conflict latency.  This captures the first-order effect the
paper relies on (slow STT-RAM writes occupy banks longer, and the LR part
absorbs them).

Since the sharded engine (``repro.shard``, docs/sharding.md) the same bank
hash also *routes*: :meth:`BankedCache.assign` vectorizes the
line-interleaved hash over a whole address column so a trace can be
partitioned into per-bank sub-streams, and the scheduler keeps per-bank
:class:`BankStats` (surfaced as ``SimulationResult.bank_stats``) alongside
the aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.cache.address import bank_index
from repro.errors import ConfigurationError, GeometryError
from repro.units import log2_int


@dataclass
class BankStats:
    """Per-bank-array counters.

    ``conflict_rate`` and ``mean_wait`` are ``None`` for a bank that served
    no requests: an idle bank is *not* the same thing as a busy bank that
    never queued, and reporting ``0.0`` for both made them
    indistinguishable in aggregated reports (see
    :func:`summarize_banks`, which excludes idle banks).
    """

    requests: int = 0
    conflicts: int = 0
    total_wait: float = 0.0

    @property
    def idle(self) -> bool:
        """True when this bank served no requests at all."""
        return self.requests == 0

    @property
    def conflict_rate(self) -> Optional[float]:
        """Fraction of requests that had to queue; ``None`` when idle."""
        return self.conflicts / self.requests if self.requests else None

    @property
    def mean_wait(self) -> Optional[float]:
        """Mean queueing wait (s) over all requests; ``None`` when idle."""
        return self.total_wait / self.requests if self.requests else None


def summarize_banks(banks: Iterable[BankStats]) -> Dict[str, Any]:
    """Battery-level roll-up over a bank set, excluding idle banks.

    Idle banks contribute to ``banks`` (the population count) but not to
    the rate/wait averages — folding their ``0.0`` placeholders in used to
    silently dilute the contention picture of the active banks.
    """
    banks = list(banks)
    active = [b for b in banks if not b.idle]
    requests = sum(b.requests for b in active)
    conflicts = sum(b.conflicts for b in active)
    total_wait = sum(b.total_wait for b in active)
    return {
        "banks": len(banks),
        "active_banks": len(active),
        "idle_banks": len(banks) - len(active),
        "requests": requests,
        "conflicts": conflicts,
        "conflict_rate": conflicts / requests if requests else None,
        "mean_wait_s": total_wait / requests if requests else None,
    }


class BankedCache:
    """Bank scheduler and shard router: maps lines to banks, accounts contention.

    This class does not store cache lines itself; it wraps whichever
    behavioural array the owner routes requests to, adding only the bank
    timing dimension.  Keeping the concerns separate lets the same scheduler
    front the SRAM baseline, the naive STT baseline and the two-part cache —
    and lets the sharded engine reuse the hash as a trace partitioner
    (:meth:`assign`) without duplicating the geometry rules.
    """

    def __init__(self, num_banks: int, line_size: int) -> None:
        if num_banks <= 0:
            raise ConfigurationError("bank count must be positive")
        self.num_banks = num_banks
        self.line_size = line_size
        # validate the geometry once (power-of-two checks) so the per-request
        # bank hash is a bare shift-and-mask
        bank_index(0, line_size, num_banks)
        self._line_shift = log2_int(line_size)
        self._bank_mask = num_banks - 1
        self._busy_until: List[float] = [0.0] * num_banks
        self.stats = BankStats()
        #: per-bank counters, same hash as the aggregate (bank i at index i)
        self.per_bank: List[BankStats] = [BankStats() for _ in range(num_banks)]

    def bank_for(self, address: int) -> int:
        """Bank serving ``address`` (line-interleaved)."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        return (address >> self._line_shift) & self._bank_mask

    def assign(self, addresses):
        """Vectorized bank hash over a whole address column.

        ``addresses`` is a numpy integer array; returns an array of bank
        ids computed with the same shift-and-mask as :meth:`bank_for`.
        This is the sharded engine's partition primitive: shard ``s`` owns
        every access whose bank id (under ``num_banks = shards``) is ``s``.
        """
        if len(addresses) and int(addresses.min()) < 0:
            raise GeometryError("addresses must be non-negative")
        return (addresses >> self._line_shift) & self._bank_mask

    def schedule(self, address: int, now: float, service_time: float) -> float:
        """Admit a request; returns the queueing wait (s) it experienced.

        The bank is then busy until ``max(now, prev_busy) + service_time``.
        """
        if service_time < 0:
            raise ConfigurationError("service time must be non-negative")
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        bank = (address >> self._line_shift) & self._bank_mask
        busy = self._busy_until[bank]
        start = busy if busy > now else now
        wait = start - now
        self._busy_until[bank] = start + service_time
        stats = self.stats
        bank_stats = self.per_bank[bank]
        stats.requests += 1
        bank_stats.requests += 1
        if wait > 0:
            stats.conflicts += 1
            stats.total_wait += wait
            bank_stats.conflicts += 1
            bank_stats.total_wait += wait
        return wait

    def busy_until(self, address: int) -> float:
        """When the bank owning ``address`` frees up."""
        return self._busy_until[self.bank_for(address)]

    def utilization(self, elapsed: float) -> float:
        """Aggregate bank busy fraction over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        busy = sum(min(t, elapsed) for t in self._busy_until)
        return busy / (self.num_banks * elapsed)

    def reset(self) -> None:
        """Clear all bank timing state."""
        self._busy_until = [0.0] * self.num_banks
