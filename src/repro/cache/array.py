"""Behavioural set-associative cache array.

:class:`SetAssociativeCache` is the workhorse of every cache level in the
reproduction.  ``access`` performs a demand access with allocation, returning
an :class:`AccessOutcome` describing what happened (hit/miss, any eviction
and whether it was dirty) so callers can charge energy/latency and forward
write-backs without the array knowing about the rest of the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.cache.address import AddressMapper
from repro.cache.block import CacheBlock
from repro.cache.cacheset import CacheSet
from repro.cache.stats import CacheStats
from repro.errors import GeometryError
from repro.tracing import NULL_TRACER, TraceCollector


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one demand access.

    Attributes
    ----------
    hit:
        True when the line was present.
    way / set_index:
        Location of the line after the access.
    filled:
        True when a new line was installed (miss with allocation).
    evicted_address:
        Line-aligned address of any evicted line, else None.
    evicted_dirty:
        True when the evicted line carried dirty data (needs write-back).
    """

    hit: bool
    set_index: int
    way: int
    filled: bool = False
    evicted_address: Optional[int] = None
    evicted_dirty: bool = False


class SetAssociativeCache:
    """A set-associative, write-back, write-allocate behavioural cache."""

    def __init__(
        self,
        capacity_bytes: int,
        associativity: int,
        line_size: int,
        policy: str = "lru",
        name: str = "cache",
        write_allocate: bool = True,
        write_counter_saturation: int = 0,
        seed: int = 0,
        tracer: Optional[TraceCollector] = None,
    ) -> None:
        if capacity_bytes <= 0 or associativity <= 0 or line_size <= 0:
            raise GeometryError("capacity, associativity and line size must be positive")
        if capacity_bytes % (associativity * line_size) != 0:
            raise GeometryError(
                f"{capacity_bytes}B does not factor into {associativity} ways "
                f"of {line_size}B lines"
            )
        num_sets = capacity_bytes // (associativity * line_size)
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.associativity = associativity
        self.line_size = line_size
        self.write_allocate = write_allocate
        self.write_counter_saturation = write_counter_saturation
        self.mapper = AddressMapper(line_size=line_size, num_sets=num_sets)
        #: the one shared address decomposition every path goes through
        #: (probe/access/fill/invalidate/evict/extract/block_at) — bound once
        #: so a geometry change can never desynchronize them
        self._split = self.mapper.split
        self.sets: List[CacheSet] = [
            CacheSet(associativity, policy=policy, seed=seed + i)
            for i in range(num_sets)
        ]
        self.stats = CacheStats()
        # AccessOutcome is frozen, so identical outcomes are shareable:
        # pre-build the plain-hit and unallocated-miss records per location
        # instead of allocating a fresh object per request.
        self._hit_outcomes: dict = {}
        self._miss_outcomes: dict = {}
        #: optional trace collector (``cache.<name>.*`` counters)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: replacement-victim count per set (eviction-pressure profile)
        self.set_evictions: List[int] = [0] * num_sets

    # --- geometry ---------------------------------------------------------

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return len(self.sets)

    @property
    def num_lines(self) -> int:
        """Total number of lines."""
        return self.num_sets * self.associativity

    # --- demand path --------------------------------------------------------

    def probe(self, address: int) -> bool:
        """Presence check without side effects (no stats, no LRU update)."""
        tag, index = self._split(address)
        return self.sets[index].lookup(tag) is not None

    def _hit_outcome(self, index: int, way: int) -> AccessOutcome:
        """The shared plain-hit outcome for ``(index, way)``."""
        key = index * self.associativity + way
        outcome = self._hit_outcomes.get(key)
        if outcome is None:
            outcome = AccessOutcome(hit=True, set_index=index, way=way)
            self._hit_outcomes[key] = outcome
        return outcome

    def access(
        self, address: int, is_write: bool, now: float = 0.0, allocate: bool = True
    ) -> AccessOutcome:
        """Perform a demand access with allocation on miss.

        Write misses allocate only when ``write_allocate`` is set (GPU L1
        global writes are write-no-allocate; the L2 allocates).  Passing
        ``allocate=False`` records the demand access but leaves the miss
        unfilled — callers with MSHRs install the line later via
        :meth:`fill` when the fetch completes.
        """
        tag, index = self._split(address)
        cache_set = self.sets[index]
        way = cache_set.lookup(tag)
        stats = self.stats

        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        if way is not None:
            if is_write:
                stats.write_hits += 1
                cache_set.record_write(
                    way, now, saturate_at=self.write_counter_saturation
                )
            else:
                stats.read_hits += 1
                cache_set.record_read(way, now)
            cache_set.touch(way)
            return self._hit_outcome(index, way)

        # miss
        if not allocate or (is_write and not self.write_allocate):
            outcome = self._miss_outcomes.get(index)
            if outcome is None:
                outcome = AccessOutcome(hit=False, set_index=index, way=-1)
                self._miss_outcomes[index] = outcome
            return outcome
        return self._fill(cache_set, index, tag, now, dirty=is_write)

    def _slow_access(
        self, address: int, is_write: bool, now: float = 0.0, allocate: bool = True
    ) -> AccessOutcome:
        """Reference implementation of :meth:`access` via linear way scans.

        Pre-optimization semantics, kept ONLY for the dict-vs-scan
        equivalence test (``tests/test_perf_equivalence.py``); allocates a
        fresh outcome per call and looks the tag up by scanning ways.
        """
        tag, index = self.mapper.split(address)
        cache_set = self.sets[index]
        way = cache_set.lookup_linear(tag)

        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        if way is not None:
            if is_write:
                self.stats.write_hits += 1
                cache_set.record_write(
                    way, now, saturate_at=self.write_counter_saturation
                )
            else:
                self.stats.read_hits += 1
                cache_set.record_read(way, now)
            cache_set.touch(way)
            return AccessOutcome(hit=True, set_index=index, way=way)

        if not allocate or (is_write and not self.write_allocate):
            return AccessOutcome(hit=False, set_index=index, way=-1)
        return self._fill(cache_set, index, tag, now, dirty=is_write)

    def fill(self, address: int, now: float = 0.0, dirty: bool = False) -> AccessOutcome:
        """Install a line without a demand access (e.g. migration target).

        If the line is already present it is refreshed in place (policy touch,
        dirty bit OR-ed in) rather than duplicated.
        """
        tag, index = self._split(address)
        cache_set = self.sets[index]
        way = cache_set.lookup(tag)
        if way is not None:
            if dirty:
                cache_set.record_write(
                    way, now, saturate_at=self.write_counter_saturation
                )
            cache_set.touch(way)
            return self._hit_outcome(index, way)
        return self._fill(cache_set, index, tag, now, dirty=dirty)

    def _fill(
        self, cache_set: CacheSet, index: int, tag: int, now: float, dirty: bool
    ) -> AccessOutcome:
        way = cache_set.victim_way()
        victim = cache_set.blocks[way]
        evicted_address: Optional[int] = None
        evicted_dirty = False
        if victim.valid:
            evicted_address = self.mapper.rebuild(victim.tag, index)
            evicted_dirty = victim.dirty
            self.set_evictions[index] += 1
            if evicted_dirty:
                self.stats.evictions_dirty += 1
            else:
                self.stats.evictions_clean += 1
            if self.tracer.enabled:
                self.tracer.count(
                    f"cache.{self.name}.evictions_dirty" if evicted_dirty
                    else f"cache.{self.name}.evictions_clean"
                )
        cache_set.install(way, tag, now, dirty=dirty)
        self.stats.fills += 1
        return AccessOutcome(
            hit=False,
            set_index=index,
            way=way,
            filled=True,
            evicted_address=evicted_address,
            evicted_dirty=evicted_dirty,
        )

    # --- maintenance ------------------------------------------------------

    def invalidate(self, address: int) -> bool:
        """Drop a line if present; returns True when something was dropped."""
        tag, index = self._split(address)
        cache_set = self.sets[index]
        way = cache_set.lookup(tag)
        if way is None:
            return False
        cache_set.invalidate_way(way)
        self.stats.invalidations += 1
        return True

    def evict(self, address: int) -> Optional[Tuple[int, bool]]:
        """Remove a line, returning ``(line_address, was_dirty)`` if present."""
        tag, index = self._split(address)
        cache_set = self.sets[index]
        way = cache_set.lookup(tag)
        if way is None:
            return None
        block = cache_set.blocks[way]
        dirty = block.dirty
        cache_set.invalidate_way(way)
        if dirty:
            self.stats.evictions_dirty += 1
        else:
            self.stats.evictions_clean += 1
        return self.mapper.rebuild(tag, index), dirty

    def extract(self, address: int) -> Optional[Tuple[int, bool]]:
        """Remove a line for migration, without eviction/invalidation stats.

        Returns ``(line_address, was_dirty)`` when present, else None.  Used
        by the two-part architecture when a block moves between arrays — the
        move is neither an eviction nor an invalidation architecturally.
        """
        tag, index = self._split(address)
        cache_set = self.sets[index]
        way = cache_set.lookup(tag)
        if way is None:
            return None
        block = cache_set.blocks[way]
        dirty = block.dirty
        cache_set.invalidate_way(way)
        return self.mapper.rebuild(tag, index), dirty

    def block_at(self, address: int) -> Optional[CacheBlock]:
        """The block holding ``address``, or None (analysis helper)."""
        tag, index = self._split(address)
        way = self.sets[index].lookup(tag)
        if way is None:
            return None
        return self.sets[index].blocks[way]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self.sets:
            for way, block in enumerate(cache_set.blocks):
                if block.valid:
                    if block.dirty:
                        dirty += 1
                    cache_set.invalidate_way(way)
        return dirty

    # --- analysis views -------------------------------------------------------

    def iter_blocks(self) -> Iterator[Tuple[int, int, CacheBlock]]:
        """Yield ``(set_index, way, block)`` for every way (valid or not)."""
        for index, cache_set in enumerate(self.sets):
            for way, block in enumerate(cache_set.blocks):
                yield index, way, block

    def per_set_eviction_counts(self) -> List[int]:
        """Cumulative replacement victims per set (eviction-pressure map).

        Unlike the aggregate ``stats.evictions_*`` counters this resolves
        *where* replacement pressure lands, which is what the tracing layer
        reports for conflict-hot-set diagnosis (see ``docs/metrics.md``).
        """
        return list(self.set_evictions)

    def per_set_write_counts(self) -> List[int]:
        """Cumulative writes per set (inter-set variation input)."""
        return [s.set_writes for s in self.sets]

    def per_way_write_counts(self) -> List[List[int]]:
        """Current residents' write counts per set (intra-set variation)."""
        return [[b.total_writes for b in s.blocks] for s in self.sets]

    def per_frame_write_counts(self) -> List[List[int]]:
        """Cumulative cell-wear writes per physical frame (endurance input).

        Unlike :meth:`per_way_write_counts`, these counters persist across
        residencies (fills and write hits both wear the cells).
        """
        return [list(s.frame_writes) for s in self.sets]

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        valid = sum(s.occupancy() for s in self.sets)
        return valid / self.num_lines
