"""Cache statistics counters.

One :class:`CacheStats` instance per array; the simulator and the analysis
modules read these rather than re-deriving counts from traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class CacheStats:
    """Counter bundle for one cache array."""

    reads: int = 0
    writes: int = 0
    read_hits: int = 0
    write_hits: int = 0
    fills: int = 0
    evictions_clean: int = 0
    evictions_dirty: int = 0
    invalidations: int = 0

    # --- derived ----------------------------------------------------------

    @property
    def accesses(self) -> int:
        """Total demand accesses."""
        return self.reads + self.writes

    @property
    def hits(self) -> int:
        """Total demand hits."""
        return self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        """Total demand misses."""
        return self.accesses - self.hits

    @property
    def read_misses(self) -> int:
        """Read misses."""
        return self.reads - self.read_hits

    @property
    def write_misses(self) -> int:
        """Write misses."""
        return self.writes - self.write_hits

    @property
    def hit_rate(self) -> float:
        """Demand hit rate; 0.0 when no accesses were made."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate; 0.0 when no accesses were made."""
        return 1.0 - self.hit_rate if self.accesses else 0.0

    @property
    def evictions(self) -> int:
        """Total evictions."""
        return self.evictions_clean + self.evictions_dirty

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two counter bundles."""
        return CacheStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_hits=self.read_hits + other.read_hits,
            write_hits=self.write_hits + other.write_hits,
            fills=self.fills + other.fills,
            evictions_clean=self.evictions_clean + other.evictions_clean,
            evictions_dirty=self.evictions_dirty + other.evictions_dirty,
            invalidations=self.invalidations + other.invalidations,
        )

    def as_dict(self) -> Dict[str, float]:
        """Flatten counters and headline rates for reporting."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_hits": self.read_hits,
            "write_hits": self.write_hits,
            "fills": self.fills,
            "evictions_clean": self.evictions_clean,
            "evictions_dirty": self.evictions_dirty,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        """Zero all counters in place."""
        self.reads = 0
        self.writes = 0
        self.read_hits = 0
        self.write_hits = 0
        self.fills = 0
        self.evictions_clean = 0
        self.evictions_dirty = 0
        self.invalidations = 0
