"""Set-remapping wear leveling for NVM cache arrays.

The LR part of the paper's architecture deliberately *concentrates* writes,
which is great for energy but bad for cell endurance — the i2WAP problem
(paper ref [15]).  This wrapper adds the standard countermeasure: a rotating
XOR applied to the set index.  Every ``rotation_period_writes`` data writes
the XOR key advances, so a hot line's writes spread over all sets in the
long run.  A rotation logically moves every resident line, which the model
realizes as a flush (dirty lines are reported for write-back; clean lines
simply refetch) — the classical simple-but-lossy scheme; finer Start-Gap
style single-set moves would trade flush cost for extra steady-state
remapping hardware.

The wrapper exposes the same ``access``/``probe``/stats surface the
characterization experiments use.
"""

from __future__ import annotations

from typing import List

from repro.cache.array import AccessOutcome, SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.errors import ConfigurationError


class WearLevelingCache:
    """XOR-rotating set remapper around a behavioural cache array."""

    def __init__(
        self,
        array: SetAssociativeCache,
        rotation_period_writes: int = 10_000,
    ) -> None:
        if rotation_period_writes <= 0:
            raise ConfigurationError("rotation period must be positive")
        self.array = array
        self.rotation_period_writes = rotation_period_writes
        self._key = 0
        self._writes_since_rotation = 0
        self.rotations = 0
        self.rotation_writebacks = 0

    # ------------------------------------------------------------------

    def _remap(self, address: int) -> int:
        """Apply the rotating XOR to the set-index bits of ``address``."""
        if self._key == 0:
            return address
        mapper = self.array.mapper
        if not mapper.pow2_sets:
            # modulo-indexed arrays rotate by additive offset instead
            line = address >> mapper.offset_bits
            tag, index = divmod(line, mapper.num_sets)
            index = (index + self._key) % mapper.num_sets
            return ((tag * mapper.num_sets) + index) << mapper.offset_bits
        shifted_key = self._key << mapper.offset_bits
        return address ^ shifted_key

    def _maybe_rotate(self) -> None:
        if self._writes_since_rotation < self.rotation_period_writes:
            return
        self._writes_since_rotation = 0
        self.rotations += 1
        self._key = (self._key + 1) % self.array.num_sets
        # a remap invalidates every resident line's location; flush and
        # account the dirty write-backs the move would cost
        self.rotation_writebacks += self.array.flush()

    # ------------------------------------------------------------------

    def access(self, address: int, is_write: bool, now: float = 0.0) -> AccessOutcome:
        """Demand access through the current remapping."""
        outcome = self.array.access(self._remap(address), is_write, now)
        if is_write:
            self._writes_since_rotation += 1
            self._maybe_rotate()
        return outcome

    def probe(self, address: int) -> bool:
        """Presence check through the current remapping."""
        return self.array.probe(self._remap(address))

    @property
    def stats(self) -> CacheStats:
        """Demand statistics of the wrapped array."""
        return self.array.stats

    def per_frame_write_counts(self) -> List[List[int]]:
        """Wear counters of the wrapped array (physical frames)."""
        return self.array.per_frame_write_counts()

    def per_set_write_counts(self) -> List[int]:
        """Per-physical-set write counts of the wrapped array."""
        return self.array.per_set_write_counts()
