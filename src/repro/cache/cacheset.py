"""One cache set: ways + replacement policy.

A :class:`CacheSet` owns its :class:`~repro.cache.block.CacheBlock` ways and
the per-set replacement policy state.  It offers the minimal primitive
operations (`lookup`, `victim_way`, `install`, `invalidate_way`) that both
the plain set-associative array and the two-part architecture compose.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.block import CacheBlock
from repro.cache.replacement import ReplacementPolicy, make_policy
from repro.errors import ConfigurationError


class CacheSet:
    """A single set of ``associativity`` ways."""

    __slots__ = ("blocks", "policy", "_tag_to_way", "set_writes", "frame_writes")

    def __init__(self, associativity: int, policy: str = "lru", seed: int = 0) -> None:
        if associativity <= 0:
            raise ConfigurationError("associativity must be positive")
        self.blocks: List[CacheBlock] = [CacheBlock() for _ in range(associativity)]
        self.policy: ReplacementPolicy = make_policy(policy, associativity, seed=seed)
        self._tag_to_way: Dict[int, int] = {}
        #: total writes observed by this set (inter-set COV input, Fig. 3)
        self.set_writes: int = 0
        #: cumulative data-array writes per physical way, across residencies
        #: (cell wear for endurance/lifetime analysis — never reset by fills)
        self.frame_writes: List[int] = [0] * associativity

    @property
    def associativity(self) -> int:
        """Number of ways."""
        return len(self.blocks)

    def lookup(self, tag: int) -> Optional[int]:
        """Return the way holding ``tag``, or None on miss (no side effects).

        Backed by the tag->way dict, which :meth:`install` and
        :meth:`invalidate_way` keep coherent — blocks are never retagged or
        invalidated behind the set's back (``test_perf_equivalence`` checks
        this against :meth:`lookup_linear`).
        """
        return self._tag_to_way.get(tag)

    def lookup_linear(self, tag: int) -> Optional[int]:
        """Reference linear way scan, bypassing the tag->way dict.

        Kept only as the oracle for the dict-vs-scan equivalence test; the
        hot path uses :meth:`lookup`.
        """
        for way, block in enumerate(self.blocks):
            if block.valid and block.tag == tag:
                return way
        return None

    def touch(self, way: int) -> None:
        """Inform the replacement policy of a hit on ``way``."""
        self.policy.on_hit(way)

    def victim_way(self) -> int:
        """Pick the way to evict (invalid ways first).

        Scans the ways directly (same first-invalid-way order the policy's
        validity scan used) instead of paying a lambda call per way.
        """
        for way, block in enumerate(self.blocks):
            if not block.valid:
                return way
        return self.policy.full_victim()

    def install(self, way: int, tag: int, now: float, dirty: bool = False) -> None:
        """Fill ``way`` with a new line, updating the tag map and policy."""
        block = self.blocks[way]
        if block.valid:
            self._tag_to_way.pop(block.tag, None)
        block.fill(tag, now, dirty=dirty)
        self._tag_to_way[tag] = way
        self.policy.on_fill(way)
        self.frame_writes[way] += 1  # a fill writes every cell of the frame
        if dirty:
            self.set_writes += 1

    def invalidate_way(self, way: int) -> None:
        """Drop the line in ``way`` (retention expiry, external invalidate)."""
        block = self.blocks[way]
        if block.valid:
            self._tag_to_way.pop(block.tag, None)
        block.reset()

    def record_write(self, way: int, now: float, saturate_at: int = 0) -> None:
        """Account a write hit on ``way``."""
        self.blocks[way].record_write(now, saturate_at=saturate_at)
        self.set_writes += 1
        self.frame_writes[way] += 1

    def record_read(self, way: int, now: float) -> None:
        """Account a read hit on ``way``."""
        self.blocks[way].record_read(now)

    def valid_blocks(self) -> List[CacheBlock]:
        """All currently valid lines (analysis helper)."""
        return [b for b in self.blocks if b.valid]

    def occupancy(self) -> int:
        """Number of valid ways."""
        return sum(1 for b in self.blocks if b.valid)
