"""Miss-Status Holding Registers (MSHR) with same-line coalescing.

GPU caches sustain many outstanding misses; an MSHR file tracks them and
merges (coalesces) secondary misses to a line that is already being fetched.
When the file is full the cache must stall — the simulator charges that as
extra exposed latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigurationError, SimulationError


@dataclass
class MSHRStats:
    """Counters for MSHR behaviour."""

    allocations: int = 0
    coalesced: int = 0
    stalls: int = 0
    completions: int = 0


class MSHRFile:
    """Fixed-capacity MSHR file keyed by line address."""

    def __init__(self, num_entries: int, max_merged: int = 8) -> None:
        if num_entries <= 0:
            raise ConfigurationError("MSHR entry count must be positive")
        if max_merged <= 0:
            raise ConfigurationError("merge capacity must be positive")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: Dict[int, int] = {}  # line address -> merged count
        self.stats = MSHRStats()

    @property
    def occupancy(self) -> int:
        """Entries currently allocated."""
        return len(self._entries)

    @property
    def full(self) -> bool:
        """True when no new line can be tracked."""
        return len(self._entries) >= self.num_entries

    def lookup(self, line_address: int) -> bool:
        """Is a fetch already outstanding for this line?"""
        return line_address in self._entries

    def register_miss(self, line_address: int) -> str:
        """Track a miss; returns ``"allocated"``, ``"coalesced"`` or ``"stall"``.

        * ``allocated`` — a new entry was created (a new memory request goes
          out).
        * ``coalesced`` — merged into an outstanding fetch (no new request).
        * ``stall`` — the file (or the entry's merge slots) is full; the
          requester must retry, which the simulator charges as a stall.
        """
        merged = self._entries.get(line_address)
        if merged is not None:
            if merged >= self.max_merged:
                self.stats.stalls += 1
                return "stall"
            self._entries[line_address] = merged + 1
            self.stats.coalesced += 1
            return "coalesced"
        if self.full:
            self.stats.stalls += 1
            return "stall"
        self._entries[line_address] = 1
        self.stats.allocations += 1
        return "allocated"

    def complete(self, line_address: int) -> int:
        """Retire the fetch for a line; returns how many requests it served."""
        merged = self._entries.pop(line_address, None)
        if merged is None:
            raise SimulationError(
                f"completing a fetch that was never registered: {line_address:#x}"
            )
        self.stats.completions += 1
        return merged

    def outstanding_lines(self) -> List[int]:
        """Line addresses with fetches in flight."""
        return list(self._entries)

    def reset(self) -> None:
        """Drop all in-flight state (between kernels)."""
        self._entries.clear()
