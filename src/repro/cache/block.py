"""Per-line cache state.

:class:`CacheBlock` is the hot mutable record of the behavioural model; it
uses ``__slots__`` because simulations touch millions of them.  Beyond the
usual valid/dirty/tag, it carries the bookkeeping this paper's architecture
and characterization need:

* ``write_count`` — saturating write counter (the WWS monitor reads it);
* ``last_write_time`` — for rewrite-interval analysis (Fig. 6) and the
  retention-counter model;
* ``insert_time`` — block lifetime statistics;
* ``total_writes`` — non-saturating, for write-variation COV (Fig. 3).
"""

from __future__ import annotations


class CacheBlock:
    """One cache line's metadata (no data payload is simulated)."""

    __slots__ = (
        "tag",
        "valid",
        "dirty",
        "write_count",
        "total_writes",
        "total_reads",
        "last_write_time",
        "last_access_time",
        "insert_time",
    )

    def __init__(self) -> None:
        self.tag: int = -1
        self.valid: bool = False
        self.dirty: bool = False
        self.write_count: int = 0
        self.total_writes: int = 0
        self.total_reads: int = 0
        self.last_write_time: float = 0.0
        self.last_access_time: float = 0.0
        self.insert_time: float = 0.0

    def reset(self) -> None:
        """Invalidate the line and clear all bookkeeping."""
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.write_count = 0
        self.total_writes = 0
        self.total_reads = 0
        self.last_write_time = 0.0
        self.last_access_time = 0.0
        self.insert_time = 0.0

    def fill(self, tag: int, now: float, dirty: bool = False) -> None:
        """Install a new line, resetting per-residency counters."""
        self.tag = tag
        self.valid = True
        self.dirty = dirty
        self.write_count = 1 if dirty else 0
        self.total_writes = 1 if dirty else 0
        self.total_reads = 0
        self.last_write_time = now if dirty else 0.0
        self.last_access_time = now
        self.insert_time = now

    def record_read(self, now: float) -> None:
        """Account a read hit."""
        self.total_reads += 1
        self.last_access_time = now

    def record_write(self, now: float, saturate_at: int = 0) -> None:
        """Account a write hit; ``saturate_at > 0`` caps ``write_count``."""
        self.dirty = True
        self.total_writes += 1
        if saturate_at <= 0 or self.write_count < saturate_at:
            self.write_count += 1
        self.last_write_time = now
        self.last_access_time = now

    def age_since_write(self, now: float) -> float:
        """Seconds since the line was last written (or filled dirty)."""
        if self.total_writes == 0:
            return float("inf")
        return now - self.last_write_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "V" if self.valid else "-"
        state += "D" if self.dirty else "-"
        return f"CacheBlock(tag={self.tag:#x}, {state}, w={self.total_writes})"
