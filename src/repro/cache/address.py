"""Address slicing: offset / set index / tag, and bank selection.

Addresses are plain integers (byte addresses).  The mapper pre-computes
shift/mask constants so the hot path is two shifts and a mask when the set
count is a power of two; non-power-of-two set counts (the paper's 7-way HR
part has 768 sets) fall back to divmod indexing, which hardware realizes
with a small mod-3 reduction alongside the usual bit slice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GeometryError
from repro.units import is_power_of_two, log2_int


@dataclass(frozen=True)
class AddressMapper:
    """Slices byte addresses for a cache of ``num_sets`` x ``line_size``.

    Attributes
    ----------
    line_size:
        Line size in bytes (power of two).
    num_sets:
        Number of sets (any positive count; powers of two use the fast
        mask path).
    """

    line_size: int
    num_sets: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise GeometryError(f"line size must be a power of two, got {self.line_size}")
        if self.num_sets <= 0:
            raise GeometryError(f"set count must be positive, got {self.num_sets}")
        # Shift/mask constants are fixed by the geometry; compute them once
        # so split() on the replay hot path is pure integer ops.  The
        # dataclass is frozen, hence object.__setattr__.
        object.__setattr__(self, "_offset_bits", log2_int(self.line_size))
        object.__setattr__(self, "_line_mask", ~(self.line_size - 1))
        pow2 = is_power_of_two(self.num_sets)
        object.__setattr__(self, "_pow2", pow2)
        object.__setattr__(self, "_set_bits", log2_int(self.num_sets) if pow2 else 0)
        object.__setattr__(self, "_set_mask", self.num_sets - 1 if pow2 else 0)

    @property
    def offset_bits(self) -> int:
        """Bits addressing bytes within a line."""
        return self._offset_bits

    @property
    def pow2_sets(self) -> bool:
        """True when the fast mask path applies."""
        return self._pow2

    def split(self, address: int) -> tuple:
        """Return ``(tag, set_index)`` for a byte address."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        line = address >> self._offset_bits
        if self._pow2:
            return line >> self._set_bits, line & self._set_mask
        return divmod(line, self.num_sets)[0], line % self.num_sets

    def line_address(self, address: int) -> int:
        """The line-aligned address containing ``address``."""
        if address < 0:
            raise GeometryError(f"address must be non-negative, got {address}")
        return address & self._line_mask

    def rebuild(self, tag: int, set_index: int) -> int:
        """Inverse of :meth:`split`: reconstruct the line-aligned address."""
        if not 0 <= set_index < self.num_sets:
            raise GeometryError(f"set index {set_index} out of range")
        if tag < 0:
            raise GeometryError(f"tag must be non-negative, got {tag}")
        if self._pow2:
            line = (tag << self._set_bits) | set_index
        else:
            line = tag * self.num_sets + set_index
        return line << self._offset_bits


def bank_index(address: int, line_size: int, num_banks: int) -> int:
    """Low-order line-interleaved bank hash (GPU L2 style).

    Consecutive lines map to consecutive banks, spreading streaming traffic
    evenly — the standard GPU L2 interleaving.
    """
    if not is_power_of_two(num_banks):
        raise GeometryError(f"bank count must be a power of two, got {num_banks}")
    if not is_power_of_two(line_size):
        raise GeometryError(f"line size must be a power of two, got {line_size}")
    if address < 0:
        raise GeometryError(f"address must be non-negative, got {address}")
    return (address >> log2_int(line_size)) & (num_banks - 1)
