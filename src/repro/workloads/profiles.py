"""Calibrated per-benchmark profiles.

One profile per benchmark named in the paper (GPGPU-Sim suite, Rodinia,
Parboil).  The *names* are the paper's; the traces are synthetic — each
profile's knobs are set so the benchmark lands in its published behaviour
class:

* **region 1** — cache- and register-insensitive (streaming/bandwidth-bound
  or compute-bound);
* **region 2** — register-file limited (gains only when C2/C3's larger file
  fits another whole CTA);
* **region 3** — cache-friendly *and* register-limited;
* **region 4** — cache-friendly.

Working-set sizes are chosen against the L2 capacities at stake (384 KB
baseline, 768 KB C3, 1536 KB C1/STT): a profile whose hot set lies between
two capacities produces the corresponding crossover in Fig. 8.  Register
counts are chosen against the CTA-granularity occupancy model so that some
region-2 benchmarks gain from C2/C3 and others (tpacf-style) cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.gpu.kernel import KernelDescriptor


@dataclass(frozen=True)
class BenchmarkProfile:
    """All generator and kernel knobs for one benchmark."""

    name: str
    region: int
    description: str
    # kernel resources
    regs_per_thread: int
    threads_per_block: int
    compute_intensity: float
    shared_mem_per_block: int = 0
    # access-kind mix (must sum to 1)
    p_stream_read: float = 0.0
    p_stream_write: float = 0.0
    p_hot_read: float = 0.0
    p_wws_write: float = 0.0
    p_wws_read: float = 0.0
    p_local_read: float = 0.0
    p_local_write: float = 0.0
    p_const_read: float = 0.0
    p_texture_read: float = 0.0
    # segment geometry (128 B lines)
    stream_lines: int = 1 << 18
    hot_lines: int = 2048
    hot_alpha: float = 0.8
    hot_scatter: bool = True
    wws_lines: int = 256
    wws_alpha: float = 1.0
    wws_private: bool = False
    local_lines: int = 96
    local_window_lines: int = 32
    const_lines: int = 64
    texture_lines: int = 4096
    texture_alpha: float = 0.9
    output_lines: int = 4096
    # phase structure
    phase_fraction: float = 0.1
    burst_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.region not in (1, 2, 3, 4):
            raise ConfigurationError(f"{self.name}: region must be 1..4")
        total = sum(self.mix_vector())
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.name}: access mix sums to {total:.4f}, expected 1.0"
            )

    def mix_vector(self) -> Tuple[float, ...]:
        """Probabilities in generator kind order."""
        return (
            self.p_stream_read,
            self.p_stream_write,
            self.p_hot_read,
            self.p_wws_write,
            self.p_wws_read,
            self.p_local_read,
            self.p_local_write,
            self.p_const_read,
            self.p_texture_read,
        )

    @property
    def write_fraction(self) -> float:
        """Expected write fraction of the trace (before bursts)."""
        return self.p_stream_write + self.p_wws_write + self.p_local_write

    def kernel_descriptor(self) -> KernelDescriptor:
        """The kernel facts the occupancy/IPC models need."""
        return KernelDescriptor(
            name=self.name,
            regs_per_thread=self.regs_per_thread,
            threads_per_block=self.threads_per_block,
            shared_mem_per_block=self.shared_mem_per_block,
            compute_intensity=self.compute_intensity,
        )


def _p(**kwargs) -> BenchmarkProfile:
    return BenchmarkProfile(**kwargs)


#: The 16-benchmark suite.  Sizes in 128 B lines: 3072 lines = 384 KB
#: (baseline L2), 6144 = 768 KB (C3), 12288 = 1536 KB (C1 / STT baseline).
PROFILES: Dict[str, BenchmarkProfile] = {
    profile.name: profile
    for profile in [
        # ----- region 1: insensitive ---------------------------------
        _p(
            name="lbm", region=1,
            description="lattice-Boltzmann; bandwidth-bound streaming, heavy writes",
            regs_per_thread=20, threads_per_block=128, compute_intensity=6.0,
            p_stream_read=0.40, p_stream_write=0.38, p_hot_read=0.10,
            p_wws_write=0.06, p_wws_read=0.02, p_local_read=0.03, p_local_write=0.01,
            hot_lines=600, hot_alpha=0.9, wws_lines=16384, wws_alpha=0.0, burst_fraction=0.0,
        ),
        _p(
            name="stencil", region=1,
            description="3D stencil; streaming with even write spread",
            regs_per_thread=24, threads_per_block=256, compute_intensity=14.0,
            p_stream_read=0.48, p_stream_write=0.22, p_hot_read=0.14,
            p_wws_write=0.06, p_wws_read=0.02, p_local_read=0.06, p_local_write=0.02,
            hot_lines=600, hot_alpha=0.9, wws_lines=768, wws_alpha=0.2, burst_fraction=0.0,
        ),
        _p(
            name="cfd", region=1,
            description="unstructured-grid CFD solver; streaming, even writes",
            regs_per_thread=28, threads_per_block=192, compute_intensity=12.0,
            p_stream_read=0.52, p_stream_write=0.18, p_hot_read=0.16,
            p_wws_write=0.05, p_wws_read=0.03, p_local_read=0.04, p_local_write=0.02,
            hot_lines=600, hot_alpha=0.9, wws_lines=768, wws_alpha=0.2, burst_fraction=0.0,
        ),
        _p(
            name="sgemm", region=1,
            description="dense matrix multiply; compute-bound, tiled reuse in L1",
            regs_per_thread=30, threads_per_block=128, compute_intensity=26.0,
            shared_mem_per_block=4096,
            p_stream_read=0.30, p_stream_write=0.06, p_hot_read=0.50,
            p_wws_write=0.04, p_wws_read=0.02, p_local_read=0.06, p_local_write=0.02,
            hot_lines=1400, hot_alpha=0.9, burst_fraction=0.01,
        ),
        _p(
            name="nn", region=1,
            description="nearest neighbour; tiny working set, hits everywhere",
            regs_per_thread=18, threads_per_block=256, compute_intensity=9.0,
            p_stream_read=0.30, p_stream_write=0.01, p_hot_read=0.60,
            p_wws_write=0.03, p_wws_read=0.02, p_local_read=0.03, p_local_write=0.01,
            hot_lines=800, hot_alpha=0.9, wws_lines=64, burst_fraction=0.01,
        ),
        # ------ region 2: register-file limited -----------------------------
        _p(
            name="mri-gridding", region=2,
            description="MRI gridding; 48 regs/thread, one more CTA fits on C2",
            regs_per_thread=48, threads_per_block=256, compute_intensity=9.0,
            p_stream_read=0.34, p_stream_write=0.08, p_hot_read=0.30,
            p_wws_write=0.12, p_wws_read=0.04, p_local_read=0.08, p_local_write=0.04,
            hot_lines=1100, hot_alpha=0.9, wws_lines=256, wws_alpha=1.1,
        ),
        _p(
            name="tpacf", region=2,
            description="angular correlation; 63 regs/thread, no extra CTA fits "
                        "even on C2 (the paper's no-gain case)",
            regs_per_thread=63, threads_per_block=256, compute_intensity=10.0,
            shared_mem_per_block=8192,
            p_stream_read=0.30, p_stream_write=0.04, p_hot_read=0.44,
            p_wws_write=0.10, p_wws_read=0.04, p_local_read=0.06, p_local_write=0.02,
            hot_lines=1000, hot_alpha=0.9, wws_lines=256,
        ),
        _p(
            name="lps", region=2,
            description="Laplace solver; gains on C2 only (C3's boost too small)",
            regs_per_thread=52, threads_per_block=128, compute_intensity=8.0,
            p_stream_read=0.36, p_stream_write=0.10, p_hot_read=0.28,
            p_wws_write=0.12, p_wws_read=0.04, p_local_read=0.07, p_local_write=0.03,
            hot_lines=1100, hot_alpha=0.9, wws_lines=384, wws_alpha=1.0,
        ),
        _p(
            name="mummergpu", region=2,
            description="sequence alignment; irregular, write-skewed, gains on C2/C3",
            regs_per_thread=44, threads_per_block=256, compute_intensity=7.0,
            p_stream_read=0.30, p_stream_write=0.06, p_hot_read=0.30,
            p_wws_write=0.18, p_wws_read=0.06, p_local_read=0.07, p_local_write=0.03,
            hot_lines=1200, hot_alpha=0.9, wws_lines=192, wws_alpha=1.3,
        ),
        # ----- region 3: cache-friendly + register-limited ----------------
        _p(
            name="kmeans", region=3,
            description="k-means clustering; 650 KB hot set + extra CTA on C2/C3",
            regs_per_thread=44, threads_per_block=256, compute_intensity=9.0,
            p_stream_read=0.22, p_stream_write=0.05, p_hot_read=0.46,
            p_wws_write=0.14, p_wws_read=0.05, p_local_read=0.06, p_local_write=0.02,
            hot_lines=5200, hot_alpha=0.75, wws_lines=320, wws_alpha=1.1,
        ),
        _p(
            name="srad_v2", region=3,
            description="speckle-reducing diffusion; 500 KB hot set",
            regs_per_thread=45, threads_per_block=256, compute_intensity=9.0,
            p_stream_read=0.24, p_stream_write=0.08, p_hot_read=0.42,
            p_wws_write=0.14, p_wws_read=0.04, p_local_read=0.06, p_local_write=0.02,
            hot_lines=4000, hot_alpha=0.75, wws_lines=384, wws_alpha=1.0,
        ),
        _p(
            name="backprop", region=3,
            description="neural back-propagation; 875 KB hot set, skewed writes",
            regs_per_thread=45, threads_per_block=256, compute_intensity=8.0,
            p_stream_read=0.20, p_stream_write=0.05, p_hot_read=0.42,
            p_wws_write=0.20, p_wws_read=0.05, p_local_read=0.06, p_local_write=0.02,
            hot_lines=7000, hot_alpha=0.7, wws_lines=224, wws_alpha=1.3,
        ),
        # ------ region 4: cache-friendly -------------------------------
        _p(
            name="bfs", region=4,
            description="breadth-first search; 1.1 MB frontier, very skewed writes",
            regs_per_thread=40, threads_per_block=256, compute_intensity=6.0,
            p_stream_read=0.16, p_stream_write=0.04, p_hot_read=0.46,
            p_wws_write=0.22, p_wws_read=0.06, p_local_read=0.04, p_local_write=0.02,
            hot_lines=9500, hot_alpha=0.6, wws_lines=160, wws_alpha=1.4,
        ),
        _p(
            name="pathfinder", region=4,
            description="dynamic programming; 750 KB hot set (crosses at C3)",
            regs_per_thread=38, threads_per_block=256, compute_intensity=8.0,
            p_stream_read=0.20, p_stream_write=0.05, p_hot_read=0.48,
            p_wws_write=0.15, p_wws_read=0.04, p_local_read=0.06, p_local_write=0.02,
            hot_lines=6000, hot_alpha=0.65, wws_lines=288, wws_alpha=1.1,
        ),
        _p(
            name="hotspot", region=4,
            description="thermal simulation; 1 MB hot set",
            regs_per_thread=40, threads_per_block=256, compute_intensity=8.0,
            p_stream_read=0.20, p_stream_write=0.04, p_hot_read=0.48,
            p_wws_write=0.16, p_wws_read=0.04, p_local_read=0.06, p_local_write=0.02,
            hot_lines=8000, hot_alpha=0.65, wws_lines=320, wws_alpha=1.1,
        ),
        _p(
            name="streamcluster", region=4,
            description="online clustering; 560 KB hot set, read-mostly, "
                        "near-zero writes (the paper's ~0% write case)",
            regs_per_thread=40, threads_per_block=256, compute_intensity=7.0,
            p_stream_read=0.26, p_stream_write=0.01, p_hot_read=0.62,
            p_wws_write=0.04, p_wws_read=0.02, p_local_read=0.04, p_local_write=0.01,
            hot_lines=4500, hot_alpha=0.7, wws_lines=128, burst_fraction=0.0,
        ),
    ]
}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by benchmark name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; choose from {sorted(PROFILES)}"
        ) from None
