"""Trace containers.

A trace is a time-ordered stream of L1-level memory accesses, column-stored
in numpy arrays (SM id, byte address, flags) for compactness; the simulator
converts columns to Python lists once per run for fast iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Tuple

import numpy as np

from repro.errors import TraceError

if TYPE_CHECKING:  # pragma: no cover - avoids a package-level import cycle
    from repro.gpu.kernel import KernelDescriptor

FLAG_WRITE = 0x1
FLAG_LOCAL = 0x2
FLAG_CONST = 0x4
FLAG_TEXTURE = 0x8


@dataclass(frozen=True)
class MemoryAccess:
    """One decoded access (convenience view; the hot path uses columns)."""

    sm: int
    address: int
    is_write: bool
    is_local: bool
    is_const: bool = False
    is_texture: bool = False

    @property
    def space(self) -> str:
        """Address space: global, local, const or texture."""
        if self.is_const:
            return "const"
        if self.is_texture:
            return "texture"
        if self.is_local:
            return "local"
        return "global"


class Trace:
    """Column-stored access stream."""

    def __init__(self, sm: np.ndarray, address: np.ndarray, flags: np.ndarray) -> None:
        if not (len(sm) == len(address) == len(flags)):
            raise TraceError("trace columns must have equal length")
        if len(sm) == 0:
            raise TraceError("trace must contain at least one access")
        if address.min() < 0:
            raise TraceError("addresses must be non-negative")
        self.sm = np.ascontiguousarray(sm, dtype=np.int16)
        self.address = np.ascontiguousarray(address, dtype=np.int64)
        self.flags = np.ascontiguousarray(flags, dtype=np.uint8)

    def __len__(self) -> int:
        return len(self.sm)

    @property
    def write_fraction(self) -> float:
        """Fraction of accesses that are writes."""
        return float(np.mean((self.flags & FLAG_WRITE) != 0))

    @property
    def local_fraction(self) -> float:
        """Fraction of accesses to local (per-thread) data."""
        return float(np.mean((self.flags & FLAG_LOCAL) != 0))

    @property
    def const_fraction(self) -> float:
        """Fraction of constant-memory reads."""
        return float(np.mean((self.flags & FLAG_CONST) != 0))

    @property
    def texture_fraction(self) -> float:
        """Fraction of texture reads."""
        return float(np.mean((self.flags & FLAG_TEXTURE) != 0))

    def columns(self) -> Tuple[List[int], List[int], List[int]]:
        """Python-list views for fast interpreter-level iteration."""
        return self.sm.tolist(), self.address.tolist(), self.flags.tolist()

    def records(self) -> Iterator[MemoryAccess]:
        """Decode accesses one by one (tests/analysis; slow path)."""
        for sm, address, flags in zip(*self.columns()):
            yield MemoryAccess(
                sm=sm,
                address=address,
                is_write=bool(flags & FLAG_WRITE),
                is_local=bool(flags & FLAG_LOCAL),
                is_const=bool(flags & FLAG_CONST),
                is_texture=bool(flags & FLAG_TEXTURE),
            )

    def lockstep_sequence(self, dt_s: float) -> List[Tuple[int, bool, float]]:
        """``(address, is_write, now)`` triples on a fixed ``dt_s`` grid.

        The differential oracle replays L2-bound accesses directly (no L1,
        no SM interleaving), so each trace record is stamped with a
        deterministic timestamp ``(i + 1) * dt_s``.  Choosing ``dt_s``
        close to the LR retention tick makes refresh sweeps fire between
        most consecutive accesses, which is exactly the timing pressure
        the oracle wants to diff.
        """
        if dt_s <= 0:
            raise TraceError(f"lockstep dt must be positive, got {dt_s}")
        addresses = self.address.tolist()
        writes = ((self.flags & FLAG_WRITE) != 0).tolist()
        return [
            (address, is_write, (i + 1) * dt_s)
            for i, (address, is_write) in enumerate(zip(addresses, writes))
        ]

    def slice(self, start: int, stop: int) -> "Trace":
        """Sub-trace [start:stop) (phase analysis)."""
        if not 0 <= start < stop <= len(self):
            raise TraceError(f"bad slice [{start}:{stop}) of {len(self)}-entry trace")
        return Trace(self.sm[start:stop], self.address[start:stop], self.flags[start:stop])

    def save(self, path) -> None:
        """Persist the trace as a compressed ``.npz`` file."""
        np.savez_compressed(
            path, sm=self.sm, address=self.address, flags=self.flags
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Load a trace written by :meth:`save`."""
        try:
            with np.load(path) as data:
                return cls(data["sm"], data["address"], data["flags"])
        except (OSError, KeyError, ValueError) as error:
            raise TraceError(f"cannot load trace from {path}: {error}") from error


@dataclass(frozen=True)
class Workload:
    """A kernel descriptor plus its access trace."""

    name: str
    kernel: "KernelDescriptor"
    trace: Trace

    @property
    def num_accesses(self) -> int:
        """Trace length."""
        return len(self.trace)
