"""Synthetic trace generator.

Turns a :class:`~repro.workloads.profiles.BenchmarkProfile` into a
:class:`~repro.workloads.trace.Trace`: a time-ordered stream of (SM,
address, read/write, global/local) records at L1-line (128 B) granularity.

Structure of a generated trace:

* every access draws a *kind* from the profile's mix (streaming read/write,
  hot-data read, WWS write/read, local read/write);
* the trace is divided into *phases* (the paper's grids); the WWS hot set
  re-randomizes each phase, and the tail of each phase is an optional burst
  of sequential output writes ("grids have a small amount of writes
  happening usually at the end of their execution");
* address regions are disjoint per segment, local data is additionally
  partitioned per SM.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.patterns import (
    HotSegment,
    LocalSegment,
    PhasedWriteSegment,
    StreamingSegment,
)
from repro.workloads.trace import (
    FLAG_CONST,
    FLAG_LOCAL,
    FLAG_TEXTURE,
    FLAG_WRITE,
    Trace,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.profiles import BenchmarkProfile

#: L1-line granularity of generated addresses.
ACCESS_GRANULARITY = 128

#: Disjoint address regions (1 GB apart).
REGION_STRIDE = 1 << 30
STREAM_BASE = 0 * REGION_STRIDE
HOT_BASE = 1 * REGION_STRIDE
WWS_BASE = 2 * REGION_STRIDE
LOCAL_BASE = 3 * REGION_STRIDE
OUTPUT_BASE = 4 * REGION_STRIDE
CONST_BASE = 5 * REGION_STRIDE
TEXTURE_BASE = 6 * REGION_STRIDE

# access-kind indices for the categorical draw
_KINDS = (
    "stream_read",
    "stream_write",
    "hot_read",
    "wws_write",
    "wws_read",
    "local_read",
    "local_write",
    "const_read",
    "texture_read",
)


class TraceGenerator:
    """Generates traces for one profile (reusable across lengths/seeds)."""

    def __init__(self, profile: "BenchmarkProfile") -> None:
        self.profile = profile
        mix = profile.mix_vector()
        if abs(sum(mix) - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{profile.name}: access mix sums to {sum(mix)}, expected 1"
            )
        self._mix = np.asarray(mix, dtype=np.float64)

    def generate(self, num_accesses: int, num_sms: int = 15, seed: int = 0) -> Trace:
        """Generate a trace of ``num_accesses`` records."""
        if num_accesses <= 0:
            raise ConfigurationError("trace length must be positive")
        if num_sms <= 0:
            raise ConfigurationError("need at least one SM")
        p = self.profile
        rng = np.random.default_rng(seed)

        kinds = rng.choice(len(_KINDS), size=num_accesses, p=self._mix)
        sms = rng.integers(0, num_sms, size=num_accesses, dtype=np.int16)
        addresses = np.zeros(num_accesses, dtype=np.int64)
        flags = np.zeros(num_accesses, dtype=np.uint8)

        # fresh segment state per generate() call => reproducible traces
        stream = StreamingSegment(p.stream_lines)
        hot = HotSegment(
            p.hot_lines, alpha=p.hot_alpha, scatter=p.hot_scatter,
            permutation_seed=seed + 1,
        )
        wws = PhasedWriteSegment(p.wws_lines, alpha=p.wws_alpha,
                                 permutation_seed=seed + 2)
        local = LocalSegment(p.local_lines, window_lines=p.local_window_lines)
        const = HotSegment(p.const_lines, alpha=1.0, permutation_seed=seed + 3)
        texture = HotSegment(
            p.texture_lines, alpha=p.texture_alpha, permutation_seed=seed + 4
        )

        phase_len = max(1, int(num_accesses * p.phase_fraction))
        burst_len = int(phase_len * p.burst_fraction)
        index = np.arange(num_accesses)
        phase_of = index // phase_len
        in_burst = (index % phase_len) >= (phase_len - burst_len)

        # --- streaming ------------------------------------------------
        for kind, is_write in (("stream_read", False), ("stream_write", True)):
            mask = (kinds == _KINDS.index(kind)) & ~in_burst
            count = int(mask.sum())
            if count:
                lines = stream.draw(rng, count)
                addresses[mask] = STREAM_BASE + lines * ACCESS_GRANULARITY
                if is_write:
                    flags[mask] |= FLAG_WRITE

        # --- hot read-mostly data ------------------------------------------
        mask = (kinds == _KINDS.index("hot_read")) & ~in_burst
        count = int(mask.sum())
        if count:
            lines = hot.draw(rng, count)
            addresses[mask] = HOT_BASE + lines * ACCESS_GRANULARITY

        # --- write working set (phase-aware) --------------------------------
        for kind, is_write in (("wws_write", True), ("wws_read", False)):
            kind_mask = (kinds == _KINDS.index(kind)) & ~in_burst
            for phase in np.unique(phase_of[kind_mask]):
                mask = kind_mask & (phase_of == phase)
                count = int(mask.sum())
                if not count:
                    continue
                wws.start_phase(int(phase))
                lines = wws.draw(rng, count)
                base = WWS_BASE
                if p.wws_private:
                    base = WWS_BASE + sms[mask].astype(np.int64) * (
                        p.wws_lines * ACCESS_GRANULARITY
                    )
                addresses[mask] = base + lines * ACCESS_GRANULARITY
                if is_write:
                    flags[mask] |= FLAG_WRITE

        # --- local (per-thread) data ---------------------------------------
        for kind, is_write in (("local_read", False), ("local_write", True)):
            mask = (kinds == _KINDS.index(kind)) & ~in_burst
            count = int(mask.sum())
            if count:
                lines = local.draw(rng, count)
                base = LOCAL_BASE + sms[mask].astype(np.int64) * (
                    p.local_lines * ACCESS_GRANULARITY
                )
                addresses[mask] = base + lines * ACCESS_GRANULARITY
                flags[mask] |= FLAG_LOCAL
                if is_write:
                    flags[mask] |= FLAG_WRITE

        # --- constant / texture reads (served by dedicated RO caches) -------
        for kind, segment, base, flag in (
            ("const_read", const, CONST_BASE, FLAG_CONST),
            ("texture_read", texture, TEXTURE_BASE, FLAG_TEXTURE),
        ):
            mask = (kinds == _KINDS.index(kind)) & ~in_burst
            count = int(mask.sum())
            if count:
                lines = segment.draw(rng, count)
                addresses[mask] = base + lines * ACCESS_GRANULARITY
                flags[mask] |= flag

        # --- end-of-phase output bursts -------------------------------------
        count = int(in_burst.sum())
        if count:
            sequential = np.cumsum(in_burst) - 1
            out_lines = sequential[in_burst] % max(1, p.output_lines)
            addresses[in_burst] = OUTPUT_BASE + out_lines * ACCESS_GRANULARITY
            flags[in_burst] |= FLAG_WRITE

        return Trace(sms, addresses, flags)
