"""Address-pattern building blocks for the synthetic trace generator.

Each segment models one kind of data a GPGPU kernel touches and knows how to
draw line indices for a batch of accesses:

* :class:`StreamingSegment` — sequential, no reuse (input/output streams);
* :class:`HotSegment` — Zipf-skewed reuse over a working set (the knob that
  makes a benchmark cache-sensitive and creates write skew, Fig. 3);
* :class:`PhasedWriteSegment` — the write working set: skewed rewrites
  within a phase, plus end-of-phase output bursts ("grids have a small
  amount of writes happening usually at the end of their execution");
* :class:`LocalSegment` — per-SM private data with windowed reuse.

All segments draw *line indices*; the generator turns them into byte
addresses inside disjoint address regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


def zipf_pmf(num_items: int, alpha: float) -> np.ndarray:
    """Normalized Zipf(alpha) probability over ``num_items`` ranks.

    ``alpha = 0`` degenerates to uniform; larger alpha concentrates mass on
    the first ranks.
    """
    if num_items <= 0:
        raise ConfigurationError("need at least one item")
    if alpha < 0:
        raise ConfigurationError("alpha must be non-negative")
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


@dataclass
class SegmentSpec:
    """Base class: a named pool of ``num_lines`` cache lines."""

    num_lines: int

    def __post_init__(self) -> None:
        if self.num_lines <= 0:
            raise ConfigurationError("segment needs at least one line")

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Return ``count`` line indices in ``[0, num_lines)``."""
        raise NotImplementedError


@dataclass
class StreamingSegment(SegmentSpec):
    """Sequential lines with wraparound; no temporal reuse."""

    _cursor: int = field(default=0, repr=False)

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        lines = (self._cursor + np.arange(count, dtype=np.int64)) % self.num_lines
        self._cursor = int((self._cursor + count) % self.num_lines)
        return lines


@dataclass
class HotSegment(SegmentSpec):
    """Zipf-skewed reuse; rank-to-line mapping is a seeded shuffle.

    The shuffle scatters hot lines across cache sets (realistic hashing);
    pass ``scatter=False`` to keep hot ranks on consecutive lines, which
    concentrates writes in few sets and drives intra-set variation up.
    """

    alpha: float = 0.8
    scatter: bool = True
    permutation_seed: int = 12345
    _pmf: Optional[np.ndarray] = field(default=None, repr=False)
    _perm: Optional[np.ndarray] = field(default=None, repr=False)

    def _materialize(self) -> None:
        if self._pmf is None:
            self._pmf = zipf_pmf(self.num_lines, self.alpha)
            if self.scatter:
                perm_rng = np.random.default_rng(self.permutation_seed)
                self._perm = perm_rng.permutation(self.num_lines)
            else:
                self._perm = np.arange(self.num_lines)

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        self._materialize()
        assert self._pmf is not None and self._perm is not None
        ranks = rng.choice(self.num_lines, size=count, p=self._pmf)
        return self._perm[ranks]


@dataclass
class PhasedWriteSegment(SegmentSpec):
    """The WWS: Zipf rewrites, re-randomized each phase.

    Each phase re-shuffles which lines are hot, modelling one grid's private
    write set being retired when the next grid starts.
    """

    alpha: float = 1.0
    permutation_seed: int = 777
    _pmf: Optional[np.ndarray] = field(default=None, repr=False)
    _perm: Optional[np.ndarray] = field(default=None, repr=False)
    _phase: int = field(default=-1, repr=False)

    def start_phase(self, phase_index: int) -> None:
        """Re-randomize the hot set for a new phase (grid)."""
        if phase_index != self._phase:
            self._phase = phase_index
            perm_rng = np.random.default_rng(self.permutation_seed + phase_index)
            self._perm = perm_rng.permutation(self.num_lines)
            if self._pmf is None:
                self._pmf = zipf_pmf(self.num_lines, self.alpha)

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        if self._perm is None:
            self.start_phase(0)
        assert self._pmf is not None and self._perm is not None
        ranks = rng.choice(self.num_lines, size=count, p=self._pmf)
        return self._perm[ranks]


@dataclass
class LocalSegment(SegmentSpec):
    """Per-SM private data reused within a sliding window."""

    window_lines: int = 64

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window_lines <= 0:
            raise ConfigurationError("window must be positive")
        self.window_lines = min(self.window_lines, self.num_lines)

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # a slowly advancing window start plus a uniform draw inside it
        starts = rng.integers(0, max(1, self.num_lines - self.window_lines), size=count)
        offsets = rng.integers(0, self.window_lines, size=count)
        return (starts + offsets) % self.num_lines
