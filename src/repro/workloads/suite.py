"""Suite assembly: benchmark names -> ready-to-run workloads."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import PROFILES, get_profile
from repro.workloads.trace import Workload

#: Default trace length; experiments override (tests use much less).
DEFAULT_TRACE_LENGTH = 60_000


def suite_names() -> List[str]:
    """Benchmark names ordered by region then name (the Fig. 8 x-axis)."""
    return sorted(PROFILES, key=lambda n: (PROFILES[n].region, n))


def build_workload(
    name: str,
    num_accesses: int = DEFAULT_TRACE_LENGTH,
    num_sms: int = 15,
    seed: int = 0,
) -> Workload:
    """Generate one benchmark's workload (kernel descriptor + trace)."""
    profile = get_profile(name)
    trace = TraceGenerator(profile).generate(
        num_accesses=num_accesses, num_sms=num_sms, seed=seed
    )
    return Workload(name=name, kernel=profile.kernel_descriptor(), trace=trace)


def build_suite(
    names: Optional[Iterable[str]] = None,
    num_accesses: int = DEFAULT_TRACE_LENGTH,
    num_sms: int = 15,
    seed: int = 0,
) -> Dict[str, Workload]:
    """Generate the whole suite (or a subset), keyed by benchmark name."""
    selected = list(names) if names is not None else suite_names()
    return {
        name: build_workload(name, num_accesses=num_accesses, num_sms=num_sms, seed=seed)
        for name in selected
    }
