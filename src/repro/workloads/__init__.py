"""Synthetic GPGPU workloads.

The paper evaluates CUDA benchmarks from the GPGPU-Sim suite, Rodinia and
Parboil.  Without CUDA binaries or a PTX front-end, this package generates
*synthetic traces* whose statistics — working-set sizes, write fraction and
skew, rewrite-interval structure, register pressure, arithmetic intensity —
are calibrated per benchmark so the paper's characterization figures
(Figs. 3-6) and evaluation regions (Fig. 8) reproduce.  See DESIGN.md for
the substitution rationale.
"""

from repro.workloads.trace import MemoryAccess, Trace, Workload
from repro.workloads.patterns import (
    SegmentSpec,
    StreamingSegment,
    HotSegment,
    PhasedWriteSegment,
    LocalSegment,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import BenchmarkProfile, PROFILES, get_profile
from repro.workloads.suite import build_workload, suite_names, build_suite

__all__ = [
    "MemoryAccess",
    "Trace",
    "Workload",
    "SegmentSpec",
    "StreamingSegment",
    "HotSegment",
    "PhasedWriteSegment",
    "LocalSegment",
    "TraceGenerator",
    "BenchmarkProfile",
    "PROFILES",
    "get_profile",
    "build_workload",
    "suite_names",
    "build_suite",
]
