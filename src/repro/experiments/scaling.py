"""Technology-scaling study (extension, not a paper figure).

The paper motivates STT-RAM with the scaling trend: "entering deep nanometer
technology ... leakage current increases ... per technology node, SRAM
arrays confront serious scalability and power limitations."  This experiment
quantifies that motivation inside the model: it re-runs the baseline-vs-C1
comparison at 45 nm, 40 nm (the paper's node) and 32 nm and reports how the
total-L2-power advantage of the two-part STT-RAM design grows as SRAM
leakage worsens.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from repro.areapower.technology import TECH_32NM, TECH_40NM, TECH_45NM
from repro.config import baseline_sram, config_c1
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
)
from repro.gpu.simulator import simulate
from repro.workloads.suite import build_workload

NODES = (TECH_45NM, TECH_40NM, TECH_32NM)

#: A small representative mix: one cache-friendly, one insensitive.
DEFAULT_BENCHMARKS = ("bfs", "stencil")


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Baseline-vs-C1 total-power ratio across technology nodes."""
    names = list(benchmarks) if benchmarks is not None else list(DEFAULT_BENCHMARKS)
    rows: List[List] = []
    ratios_by_node = {}
    for tech in NODES:
        base_cfg = dataclasses.replace(baseline_sram(), tech=tech)
        c1_cfg = dataclasses.replace(config_c1(), tech=tech)
        total_ratios = []
        speedups = []
        leak_ratio = None
        for name in names:
            workload = build_workload(name, num_accesses=trace_length, seed=seed)
            base = simulate(base_cfg, workload)
            c1 = simulate(c1_cfg, workload)
            total_ratios.append(c1.total_power_ratio(base))
            speedups.append(c1.speedup_over(base))
            leak_ratio = c1.l2_leakage_power_w / base.l2_leakage_power_w
        ratio = geomean(total_ratios)
        ratios_by_node[tech.name] = ratio
        rows.append([
            tech.name,
            round(geomean(speedups), 3),
            round(ratio, 3),
            round(leak_ratio, 3),
        ])
    extras = {
        "total_ratio_45nm": ratios_by_node["45nm"],
        "total_ratio_40nm": ratios_by_node["40nm"],
        "total_ratio_32nm": ratios_by_node["32nm"],
    }
    return ExperimentResult(
        name="Scaling study: C1 vs SRAM baseline across nodes",
        headers=["node", "c1_speedup", "c1_total_power_ratio",
                 "c1_leakage_ratio"],
        rows=rows,
        extras=extras,
    )
