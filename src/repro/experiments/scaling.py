"""Technology-scaling study (extension, not a paper figure).

The paper motivates STT-RAM with the scaling trend: "entering deep nanometer
technology ... leakage current increases ... per technology node, SRAM
arrays confront serious scalability and power limitations."  This experiment
quantifies that motivation inside the model: it re-runs the baseline-vs-C1
comparison at 45 nm, 40 nm (the paper's node) and 32 nm and reports how the
total-L2-power advantage of the two-part STT-RAM design grows as SRAM
leakage worsens.

Job decomposition
-----------------
One job per benchmark: :func:`compute` simulates one benchmark at every
technology node (baseline and C1) and returns the per-node ratios
(JSON-safe); :func:`merge` takes the geometric means per node in benchmark
order.  ``run`` is ``merge`` over inline ``compute`` calls, so serial and
parallel paths share every arithmetic step.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.areapower.technology import TECH_32NM, TECH_40NM, TECH_45NM
from repro.config import baseline_sram, config_c1
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
)
from repro.gpu.simulator import simulate
from repro.workloads.suite import build_workload

NODES = (TECH_45NM, TECH_40NM, TECH_32NM)

#: A small representative mix: one cache-friendly, one insensitive.
DEFAULT_BENCHMARKS = ("bfs", "stencil")


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: baseline-vs-C1 ratios for ``benchmark`` at every node."""
    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    nodes: Dict[str, Dict[str, float]] = {}
    for tech in NODES:
        base_cfg = dataclasses.replace(baseline_sram(), tech=tech)
        c1_cfg = dataclasses.replace(config_c1(), tech=tech)
        base = simulate(base_cfg, workload)
        c1 = simulate(c1_cfg, workload)
        nodes[tech.name] = {
            "total_ratio": c1.total_power_ratio(base),
            "speedup": c1.speedup_over(base),
            "leak_ratio": c1.l2_leakage_power_w / base.l2_leakage_power_w,
        }
    return {"nodes": nodes}


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark payloads into the per-node scaling table."""
    rows: List[List] = []
    ratios_by_node = {}
    for tech in NODES:
        total_ratios = [p["nodes"][tech.name]["total_ratio"] for p in payloads]
        speedups = [p["nodes"][tech.name]["speedup"] for p in payloads]
        leak_ratio = payloads[-1]["nodes"][tech.name]["leak_ratio"]
        ratio = geomean(total_ratios)
        ratios_by_node[tech.name] = ratio
        rows.append([
            tech.name,
            round(geomean(speedups), 3),
            round(ratio, 3),
            round(leak_ratio, 3),
        ])
    extras = {
        "total_ratio_45nm": ratios_by_node["45nm"],
        "total_ratio_40nm": ratios_by_node["40nm"],
        "total_ratio_32nm": ratios_by_node["32nm"],
    }
    return ExperimentResult(
        name="Scaling study: C1 vs SRAM baseline across nodes",
        headers=["node", "c1_speedup", "c1_total_power_ratio",
                 "c1_leakage_ratio"],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Baseline-vs-C1 total-power ratio across technology nodes."""
    names = list(benchmarks) if benchmarks is not None else list(DEFAULT_BENCHMARKS)
    payloads = [compute(name, trace_length=trace_length, seed=seed) for name in names]
    return merge(names, payloads)
