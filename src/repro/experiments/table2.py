"""Table 2 — the five simulated configurations.

Prints geometry, derived register files, and the physical figures (area,
leakage) that justify the area-equivalence premise.
"""

from __future__ import annotations

from repro.config import all_configs
from repro.core.factory import build_l2
from repro.experiments.common import ExperimentResult
from repro.units import KB


def run() -> ExperimentResult:
    """Build the Table 2 rows (one per configuration)."""
    rows = []
    areas = {}
    for name, config in all_configs().items():
        l2 = build_l2(config.l2)
        areas[name] = l2.area
        l2_desc = config.l2.kind
        if config.l2.kind == "twopart":
            assert config.l2.lr is not None
            l2_desc = (
                f"{config.l2.main.capacity_bytes // KB}KB/"
                f"{config.l2.main.associativity}w HR + "
                f"{config.l2.lr.capacity_bytes // KB}KB/"
                f"{config.l2.lr.associativity}w LR"
            )
        else:
            l2_desc = (
                f"{config.l2.main.capacity_bytes // KB}KB/"
                f"{config.l2.main.associativity}w {config.l2.kind}"
            )
        rows.append([
            name,
            l2_desc,
            config.l2.total_capacity_bytes // KB,
            config.registers_per_sm,
            round(l2.area * 1e6, 4),
            round(l2.leakage_power * 1e3, 2),
        ])
    extras = {
        "c1_area_over_sram": areas["C1"] / areas["baseline"],
        "stt_area_over_sram": areas["stt-baseline"] / areas["baseline"],
    }
    return ExperimentResult(
        name="Table 2: simulated configurations",
        headers=["config", "L2", "L2_KB", "regs_per_sm", "area_mm2", "leakage_mW"],
        rows=rows,
        extras=extras,
    )
