"""Fig. 8 — the headline evaluation: speedup, dynamic power, total power.

Runs the full suite on the five Table 2 systems and reports, per benchmark
and as geometric means, everything the paper's Fig. 8 plots normalized to
the SRAM baseline:

* (a) IPC speedup,
* (b) L2 dynamic power,
* (c) L2 total power.

Shape targets (see DESIGN.md): C1 wins on average (paper: +16%, peaks over
2x), the naive STT baseline trails C1 and hurts some write-heavy apps, C2
wins total power by the largest margin, C3 sits between C1 and C2.

Job decomposition
-----------------
One job per benchmark: :func:`compute` simulates one benchmark on all five
Table 2 systems and returns the per-config metrics the normalization needs
(JSON-safe floats); :func:`merge` computes the ratios and geometric means.
``run`` is ``merge`` over inline ``compute`` calls, so serial and parallel
paths share every arithmetic step.  The same per-benchmark jobs also feed
the ``regions`` and ``variance`` experiments, which lets the parallel
runner deduplicate and cache the expensive simulations across all three.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.config import all_configs
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
)
from repro.gpu.metrics import SimulationResult
from repro.gpu.simulator import simulate
from repro.workloads.profiles import PROFILES
from repro.workloads.suite import build_workload, suite_names

CONFIG_ORDER = ("stt-baseline", "C1", "C2", "C3")


def run_simulations(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, SimulationResult]]:
    """All (benchmark, config) simulation results, keyed [benchmark][config]."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    configs = all_configs()
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for name in names:
        workload = build_workload(name, num_accesses=trace_length, seed=seed)
        results[name] = {
            config_name: simulate(config, workload)
            for config_name, config in configs.items()
        }
    return results


def payload_from_sims(per_config: Dict[str, SimulationResult]) -> Dict[str, Any]:
    """Project one benchmark's simulations to the JSON-safe job payload."""
    return {
        "sims": {
            config_name: {
                "ipc": r.ipc,
                "dynamic_power_w": r.l2_dynamic_power_w,
                "leakage_power_w": r.l2_leakage_power_w,
            }
            for config_name, r in per_config.items()
        },
        "counters": {
            "l2_requests": sum(r.l2_requests for r in per_config.values()),
            "dram_accesses": sum(r.dram_accesses for r in per_config.values()),
        },
    }


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: simulate ``benchmark`` on all Table 2 configs."""
    per_config = run_simulations(trace_length, [benchmark], seed)[benchmark]
    return payload_from_sims(per_config)


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark payloads into the Fig. 8 table."""
    rows: List[List] = []
    speedups: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    dynamics: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    totals: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    for name, payload in zip(names, payloads):
        sims = payload["sims"]
        base = sims["baseline"]
        base_total = base["dynamic_power_w"] + base["leakage_power_w"]
        row: List = [name, PROFILES[name].region]
        for config_name in CONFIG_ORDER:
            speedup = sims[config_name]["ipc"] / base["ipc"]
            row.append(round(speedup, 3))
            speedups[config_name].append(speedup)
        for config_name in CONFIG_ORDER:
            ratio = sims[config_name]["dynamic_power_w"] / base["dynamic_power_w"]
            row.append(round(ratio, 3))
            dynamics[config_name].append(ratio)
        for config_name in CONFIG_ORDER:
            r = sims[config_name]
            ratio = (r["dynamic_power_w"] + r["leakage_power_w"]) / base_total
            row.append(round(ratio, 3))
            totals[config_name].append(ratio)
        rows.append(row)

    gmean_row: List = ["Gmean", "-"]
    for bundle in (speedups, dynamics, totals):
        for config_name in CONFIG_ORDER:
            gmean_row.append(round(geomean(bundle[config_name]), 3))
    rows.append(gmean_row)

    extras = {
        "gmean_speedup_stt": geomean(speedups["stt-baseline"]),
        "gmean_speedup_c1": geomean(speedups["C1"]),
        "gmean_speedup_c2": geomean(speedups["C2"]),
        "gmean_speedup_c3": geomean(speedups["C3"]),
        "max_speedup_c1": max(speedups["C1"]),
        "gmean_dynamic_c1": geomean(dynamics["C1"]),
        "gmean_dynamic_stt": geomean(dynamics["stt-baseline"]),
        "gmean_total_c1": geomean(totals["C1"]),
        "gmean_total_c2": geomean(totals["C2"]),
        "gmean_total_c3": geomean(totals["C3"]),
        "gmean_total_stt": geomean(totals["stt-baseline"]),
    }
    headers = (
        ["benchmark", "region"]
        + [f"speedup_{c}" for c in CONFIG_ORDER]
        + [f"dynpow_{c}" for c in CONFIG_ORDER]
        + [f"totpow_{c}" for c in CONFIG_ORDER]
    )
    return ExperimentResult(
        name="Fig 8: speedup / dynamic power / total power vs SRAM baseline",
        headers=headers,
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    results: Optional[Dict[str, Dict[str, SimulationResult]]] = None,
) -> ExperimentResult:
    """Build the Fig. 8 table (pass ``results`` to reuse simulations)."""
    if results is None:
        results = run_simulations(trace_length, benchmarks, seed)
    names = list(results)
    payloads = [payload_from_sims(results[name]) for name in names]
    return merge(names, payloads)
