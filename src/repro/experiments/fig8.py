"""Fig. 8 — the headline evaluation: speedup, dynamic power, total power.

Runs the full suite on the five Table 2 systems and reports, per benchmark
and as geometric means, everything the paper's Fig. 8 plots normalized to
the SRAM baseline:

* (a) IPC speedup,
* (b) L2 dynamic power,
* (c) L2 total power.

Shape targets (see DESIGN.md): C1 wins on average (paper: +16%, peaks over
2x), the naive STT baseline trails C1 and hurts some write-heavy apps, C2
wins total power by the largest margin, C3 sits between C1 and C2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import all_configs
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
)
from repro.gpu.metrics import SimulationResult
from repro.gpu.simulator import simulate
from repro.workloads.profiles import PROFILES
from repro.workloads.suite import build_workload, suite_names

CONFIG_ORDER = ("stt-baseline", "C1", "C2", "C3")


def run_simulations(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, SimulationResult]]:
    """All (benchmark, config) simulation results, keyed [benchmark][config]."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    configs = all_configs()
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for name in names:
        workload = build_workload(name, num_accesses=trace_length, seed=seed)
        results[name] = {
            config_name: simulate(config, workload)
            for config_name, config in configs.items()
        }
    return results


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    results: Optional[Dict[str, Dict[str, SimulationResult]]] = None,
) -> ExperimentResult:
    """Build the Fig. 8 table (pass ``results`` to reuse simulations)."""
    if results is None:
        results = run_simulations(trace_length, benchmarks, seed)

    rows: List[List] = []
    speedups: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    dynamics: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    totals: Dict[str, List[float]] = {c: [] for c in CONFIG_ORDER}
    for name, per_config in results.items():
        base = per_config["baseline"]
        row: List = [name, PROFILES[name].region]
        for config_name in CONFIG_ORDER:
            r = per_config[config_name]
            speedup = r.speedup_over(base)
            row.append(round(speedup, 3))
            speedups[config_name].append(speedup)
        for config_name in CONFIG_ORDER:
            r = per_config[config_name]
            ratio = r.dynamic_power_ratio(base)
            row.append(round(ratio, 3))
            dynamics[config_name].append(ratio)
        for config_name in CONFIG_ORDER:
            r = per_config[config_name]
            ratio = r.total_power_ratio(base)
            row.append(round(ratio, 3))
            totals[config_name].append(ratio)
        rows.append(row)

    gmean_row: List = ["Gmean", "-"]
    for bundle in (speedups, dynamics, totals):
        for config_name in CONFIG_ORDER:
            gmean_row.append(round(geomean(bundle[config_name]), 3))
    rows.append(gmean_row)

    extras = {
        "gmean_speedup_stt": geomean(speedups["stt-baseline"]),
        "gmean_speedup_c1": geomean(speedups["C1"]),
        "gmean_speedup_c2": geomean(speedups["C2"]),
        "gmean_speedup_c3": geomean(speedups["C3"]),
        "max_speedup_c1": max(speedups["C1"]),
        "gmean_dynamic_c1": geomean(dynamics["C1"]),
        "gmean_dynamic_stt": geomean(dynamics["stt-baseline"]),
        "gmean_total_c1": geomean(totals["C1"]),
        "gmean_total_c2": geomean(totals["C2"]),
        "gmean_total_c3": geomean(totals["C3"]),
        "gmean_total_stt": geomean(totals["stt-baseline"]),
    }
    headers = (
        ["benchmark", "region"]
        + [f"speedup_{c}" for c in CONFIG_ORDER]
        + [f"dynpow_{c}" for c in CONFIG_ORDER]
        + [f"totpow_{c}" for c in CONFIG_ORDER]
    )
    return ExperimentResult(
        name="Fig 8: speedup / dynamic power / total power vs SRAM baseline",
        headers=headers,
        rows=rows,
        extras=extras,
    )
