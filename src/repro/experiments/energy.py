"""L2 dynamic-energy breakdown on the C1 architecture (extension).

Not a paper figure — it opens the hood on where C1's dynamic energy goes:
demand accesses (probes + data), HR<->LR migrations, LR refresh, and fills.
The architecture's bet is that migration and refresh overheads stay small
next to the demand-energy savings of serving the WWS from LR; this
experiment checks that bet per benchmark.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.config import config_c1
from repro.core.factory import build_l2
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Energy-bucket shares per benchmark on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    rows: List[List] = []
    overhead_shares = []
    for name in names:
        workload = build_workload(name, num_accesses=trace_length, seed=seed)
        l2 = build_l2(config_c1().l2)
        assert isinstance(l2, TwoPartSTTL2)
        replay_through_l1(workload, l2.access)
        ledger = l2.energy
        total = max(ledger.total_j, 1e-18)
        overhead = (ledger.migration_j + ledger.refresh_j) / total
        overhead_shares.append(overhead)
        rows.append([
            name,
            round(ledger.demand_j / total, 3),
            round(ledger.migration_j / total, 3),
            round(ledger.refresh_j / total, 3),
            round(ledger.fill_j / total, 3),
            round(ledger.total_j * 1e6, 2),
        ])
    extras = {
        "max_overhead_share": max(overhead_shares) if overhead_shares else 0.0,
        "mean_overhead_share": (
            sum(overhead_shares) / len(overhead_shares) if overhead_shares else 0.0
        ),
    }
    return ExperimentResult(
        name="C1 dynamic-energy breakdown (shares of total)",
        headers=["benchmark", "demand", "migration", "refresh", "fill",
                 "total_uJ"],
        rows=rows,
        extras=extras,
    )
