"""L2 dynamic-energy breakdown on the C1 architecture (extension).

Not a paper figure — it opens the hood on where C1's dynamic energy goes:
demand accesses (probes + data), HR<->LR migrations, LR refresh, and fills.
The architecture's bet is that migration and refresh overheads stay small
next to the demand-energy savings of serving the WWS from LR; this
experiment checks that bet per benchmark.

Job decomposition
-----------------
One job per benchmark: :func:`compute` replays one benchmark and returns
the raw energy-ledger buckets (JSON-safe joules); :func:`merge` turns them
into shares and aggregates.  ``run`` is ``merge`` over inline ``compute``
calls, so serial and parallel paths share every arithmetic step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.config import config_c1
from repro.core.factory import build_l2
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: C1 energy-ledger buckets for ``benchmark``."""
    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    l2 = build_l2(config_c1().l2)
    assert isinstance(l2, TwoPartSTTL2)
    replay_through_l1(workload, l2.access)
    ledger = l2.energy
    return {
        "demand_j": ledger.demand_j,
        "migration_j": ledger.migration_j,
        "refresh_j": ledger.refresh_j,
        "fill_j": ledger.fill_j,
        "total_j": ledger.total_j,
    }


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark ledger payloads into the share table."""
    rows: List[List] = []
    overhead_shares = []
    for name, payload in zip(names, payloads):
        total = max(payload["total_j"], 1e-18)
        overhead = (payload["migration_j"] + payload["refresh_j"]) / total
        overhead_shares.append(overhead)
        rows.append([
            name,
            round(payload["demand_j"] / total, 3),
            round(payload["migration_j"] / total, 3),
            round(payload["refresh_j"] / total, 3),
            round(payload["fill_j"] / total, 3),
            round(payload["total_j"] * 1e6, 2),
        ])
    extras = {
        "max_overhead_share": max(overhead_shares) if overhead_shares else 0.0,
        "mean_overhead_share": (
            sum(overhead_shares) / len(overhead_shares) if overhead_shares else 0.0
        ),
    }
    return ExperimentResult(
        name="C1 dynamic-energy breakdown (shares of total)",
        headers=["benchmark", "demand", "migration", "refresh", "fill",
                 "total_uJ"],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Energy-bucket shares per benchmark on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    payloads = [compute(name, trace_length=trace_length, seed=seed) for name in names]
    return merge(names, payloads)
