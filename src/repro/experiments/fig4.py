"""Fig. 4 — HR write-threshold sweep (TH in {1, 3, 7, 15}).

For each threshold, replays the suite through a C1-geometry two-part L2 and
reports, normalized to TH1:

* the LR-to-HR data-write ratio (top panel) — higher thresholds keep blocks
  in HR longer, so LR utilization drops;
* the total data-write count (bottom panel) — lower thresholds migrate more
  aggressively but the write overhead stays small, which is the paper's
  argument for TH = 1 (the free dirty-bit monitor).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.config import config_c1
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names

THRESHOLDS = (1, 3, 7, 15)


def _build_twopart(threshold: int) -> TwoPartSTTL2:
    l2cfg = config_c1().l2
    assert l2cfg.lr is not None
    return TwoPartSTTL2(
        hr_capacity_bytes=l2cfg.main.capacity_bytes,
        hr_associativity=l2cfg.main.associativity,
        lr_capacity_bytes=l2cfg.lr.capacity_bytes,
        lr_associativity=l2cfg.lr.associativity,
        line_size=l2cfg.line_size,
        write_threshold=threshold,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the migration threshold on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    # measure per benchmark x threshold
    lr_hr_ratio: Dict[str, Dict[int, float]] = {}
    total_writes: Dict[str, Dict[int, int]] = {}
    for name in names:
        workload = build_workload(name, num_accesses=trace_length, seed=seed)
        lr_hr_ratio[name] = {}
        total_writes[name] = {}
        for threshold in THRESHOLDS:
            l2 = _build_twopart(threshold)
            replay_through_l1(workload, l2.access)
            hr_writes = max(1, l2.hr_data_writes)
            lr_hr_ratio[name][threshold] = l2.lr_data_writes / hr_writes
            total_writes[name][threshold] = l2.total_data_writes

    rows: List[List] = []
    norm_ratio_cols: Dict[int, List[float]] = {t: [] for t in THRESHOLDS}
    norm_total_cols: Dict[int, List[float]] = {t: [] for t in THRESHOLDS}
    for name in names:
        base_ratio = max(lr_hr_ratio[name][1], 1e-9)
        base_total = max(total_writes[name][1], 1)
        row: List = [name]
        for threshold in THRESHOLDS:
            value = lr_hr_ratio[name][threshold] / base_ratio
            row.append(round(value, 3))
            norm_ratio_cols[threshold].append(max(value, 1e-9))
        for threshold in THRESHOLDS:
            value = total_writes[name][threshold] / base_total
            row.append(round(value, 3))
            norm_total_cols[threshold].append(max(value, 1e-9))
        rows.append(row)
    avg_row: List = ["AVG"]
    for threshold in THRESHOLDS:
        avg_row.append(round(geomean(norm_ratio_cols[threshold]), 3))
    for threshold in THRESHOLDS:
        avg_row.append(round(geomean(norm_total_cols[threshold]), 3))
    rows.append(avg_row)

    extras = {
        # TH1 maximizes LR utilization: higher thresholds must not exceed 1
        "avg_lr_ratio_th3": geomean(norm_ratio_cols[3]),
        "avg_lr_ratio_th15": geomean(norm_ratio_cols[15]),
        # ...while TH1's extra migrations barely inflate total writes
        "avg_write_overhead_th1_vs_th15": (
            geomean(norm_total_cols[1]) / geomean(norm_total_cols[15])
        ),
    }
    headers = (
        ["benchmark"]
        + [f"lr_hr_ratio_TH{t}" for t in THRESHOLDS]
        + [f"total_writes_TH{t}" for t in THRESHOLDS]
    )
    return ExperimentResult(
        name="Fig 4: HR write-threshold sweep (normalized to TH1)",
        headers=headers,
        rows=rows,
        extras=extras,
    )
