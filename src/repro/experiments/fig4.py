"""Fig. 4 — HR write-threshold sweep (TH in {1, 3, 7, 15}).

For each threshold, replays the suite through a C1-geometry two-part L2 and
reports, normalized to TH1:

* the LR-to-HR data-write ratio (top panel) — higher thresholds keep blocks
  in HR longer, so LR utilization drops;
* the total data-write count (bottom panel) — lower thresholds migrate more
  aggressively but the write overhead stays small, which is the paper's
  argument for TH = 1 (the free dirty-bit monitor).

Job decomposition
-----------------
One job per benchmark: :func:`compute` replays one benchmark at every
threshold and returns a JSON-safe payload (threshold keys are strings so
the payload survives a JSON round-trip through the result cache);
:func:`merge` normalizes to TH1 and assembles the table.  ``run`` is
``merge`` over inline ``compute`` calls, so serial and parallel paths share
every arithmetic step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.config import config_c1
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names

THRESHOLDS = (1, 3, 7, 15)


def _build_twopart(threshold: int) -> TwoPartSTTL2:
    l2cfg = config_c1().l2
    assert l2cfg.lr is not None
    return TwoPartSTTL2(
        hr_capacity_bytes=l2cfg.main.capacity_bytes,
        hr_associativity=l2cfg.main.associativity,
        lr_capacity_bytes=l2cfg.lr.capacity_bytes,
        lr_associativity=l2cfg.lr.associativity,
        line_size=l2cfg.line_size,
        write_threshold=threshold,
    )


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: raw threshold-sweep measurements for ``benchmark``."""
    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    lr_hr_ratio: Dict[str, float] = {}
    total_writes: Dict[str, int] = {}
    for threshold in THRESHOLDS:
        l2 = _build_twopart(threshold)
        replay_through_l1(workload, l2.access)
        hr_writes = max(1, l2.hr_data_writes)
        lr_hr_ratio[str(threshold)] = l2.lr_data_writes / hr_writes
        total_writes[str(threshold)] = l2.total_data_writes
    return {
        "lr_hr_ratio": lr_hr_ratio,
        "total_writes": total_writes,
        "counters": {"total_data_writes_th1": total_writes["1"]},
    }


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark payloads into the TH1-normalized table."""
    rows: List[List] = []
    norm_ratio_cols: Dict[int, List[float]] = {t: [] for t in THRESHOLDS}
    norm_total_cols: Dict[int, List[float]] = {t: [] for t in THRESHOLDS}
    for name, payload in zip(names, payloads):
        lr_hr_ratio = payload["lr_hr_ratio"]
        total_writes = payload["total_writes"]
        base_ratio = max(lr_hr_ratio["1"], 1e-9)
        base_total = max(total_writes["1"], 1)
        row: List = [name]
        for threshold in THRESHOLDS:
            value = lr_hr_ratio[str(threshold)] / base_ratio
            row.append(round(value, 3))
            norm_ratio_cols[threshold].append(max(value, 1e-9))
        for threshold in THRESHOLDS:
            value = total_writes[str(threshold)] / base_total
            row.append(round(value, 3))
            norm_total_cols[threshold].append(max(value, 1e-9))
        rows.append(row)
    avg_row: List = ["AVG"]
    for threshold in THRESHOLDS:
        avg_row.append(round(geomean(norm_ratio_cols[threshold]), 3))
    for threshold in THRESHOLDS:
        avg_row.append(round(geomean(norm_total_cols[threshold]), 3))
    rows.append(avg_row)

    extras = {
        # TH1 maximizes LR utilization: higher thresholds must not exceed 1
        "avg_lr_ratio_th3": geomean(norm_ratio_cols[3]),
        "avg_lr_ratio_th15": geomean(norm_ratio_cols[15]),
        # ...while TH1's extra migrations barely inflate total writes
        "avg_write_overhead_th1_vs_th15": (
            geomean(norm_total_cols[1]) / geomean(norm_total_cols[15])
        ),
    }
    headers = (
        ["benchmark"]
        + [f"lr_hr_ratio_TH{t}" for t in THRESHOLDS]
        + [f"total_writes_TH{t}" for t in THRESHOLDS]
    )
    return ExperimentResult(
        name="Fig 4: HR write-threshold sweep (normalized to TH1)",
        headers=headers,
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the migration threshold on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    payloads = [compute(name, trace_length=trace_length, seed=seed) for name in names]
    return merge(names, payloads)
