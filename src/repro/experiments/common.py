"""Shared experiment plumbing."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.tables import format_table, to_csv
from repro.config import GPUConfig, baseline_sram
from repro.gpu.l1 import GPUL1Cache
from repro.workloads.trace import FLAG_LOCAL, FLAG_WRITE, Workload

#: Default trace length for experiment harnesses (benches); tests shrink it.
DEFAULT_TRACE_LENGTH = 25_000


@dataclass
class ExperimentResult:
    """A named table of results plus free-form aggregates.

    ``headers``/``rows`` render the paper artifact; ``extras`` carries the
    aggregate numbers tests and EXPERIMENTS.md assert on.
    """

    name: str
    headers: List[str]
    rows: List[List]
    extras: Dict[str, float] = field(default_factory=dict)

    def render(self, precision: int = 3) -> str:
        """Human-readable table, titled."""
        table = format_table(self.headers, self.rows, precision=precision)
        extras = ""
        if self.extras:
            parts = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self.extras.items()))
            extras = f"\n[{parts}]"
        return f"== {self.name} ==\n{table}{extras}"

    def csv(self) -> str:
        """CSV rendering of the rows."""
        return to_csv(self.headers, self.rows)

    def column(self, header: str) -> List:
        """Extract one column by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def render_bars(self, columns: Optional[Sequence[str]] = None,
                    reference: Optional[float] = 1.0) -> str:
        """ASCII bar charts for numeric columns (figure-like view).

        ``columns`` selects headers to plot (default: every column whose
        cells are all numeric).  Rows with non-numeric cells in a plotted
        column (e.g. the trailing Gmean marker "-") are skipped per column.
        """
        from repro.analysis.plot import bars_for_columns

        if columns is None:
            columns = [
                header for i, header in enumerate(self.headers[1:], start=1)
                if any(isinstance(row[i], (int, float)) for row in self.rows)
            ]
        blocks = []
        for header in columns:
            index = self.headers.index(header)
            labels, values = [], []
            for row in self.rows:
                cell = row[index]
                if isinstance(cell, (int, float)):
                    labels.append(str(row[0]))
                    values.append(float(cell))
            if labels:
                blocks.append(
                    bars_for_columns(labels, header, values, reference=reference)
                )
        return "\n\n".join(blocks)

    def row_for(self, key: str) -> List:
        """Find the row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row {key!r} in experiment {self.name!r}")


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper reports Gmean across benchmarks)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def replay_through_l1(
    workload: Workload,
    l2_access: Callable[[int, bool, float], None],
    config: Optional[GPUConfig] = None,
    time_dilation: float = 10.0,
) -> List[GPUL1Cache]:
    """Replay a trace through per-SM L1s, forwarding L2 traffic to a callback.

    Used by the characterization experiments (Figs. 3-6), which need the
    L1-filtered L2 access stream but not the full timing/power roll-up.
    ``l2_access(address, is_write, now)`` is called per L2 request; ``now``
    runs on the dilated (sampled-trace) timebase, matching what the full
    simulator hands the L2 — see ``repro.gpu.simulator.TIME_DILATION``.
    """
    config = config or baseline_sram()
    l1s = [GPUL1Cache(config.l1, name=f"l1-sm{i}") for i in range(config.num_sms)]
    cycle_s = 1.0 / config.core_clock_hz
    dt = (
        workload.kernel.compute_intensity * cycle_s / config.num_sms * time_dilation
    )
    now = 0.0
    for sm, address, flag in zip(*workload.trace.columns()):
        now += dt
        requests = l1s[sm].access(
            address, bool(flag & FLAG_WRITE), bool(flag & FLAG_LOCAL), now
        )
        for request in requests:
            l2_access(request.address, request.is_write, now)
    return l1s
