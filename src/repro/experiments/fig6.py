"""Fig. 6 — rewrite-interval distribution in the LR part.

Replays the suite through a C1-geometry two-part L2 with interval tracking
on and buckets the times between successive demand writes to LR-resident
lines.  The paper's observation — most LR rewrites land within ~10 us —
justifies microsecond-scale LR retention.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.analysis.intervals import REWRITE_BUCKETS, rewrite_interval_distribution
from repro.config import config_c1
from repro.core.factory import build_l2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Bucket LR rewrite intervals per benchmark on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    rows: List[List] = []
    all_fractions = []
    under_10us_shares = []
    for name in names:
        workload = build_workload(name, num_accesses=trace_length, seed=seed)
        l2 = build_l2(config_c1().l2, track_intervals=True)
        replay_through_l1(workload, l2.access)
        distribution = rewrite_interval_distribution(l2.rewrite_intervals)
        fractions = distribution.fractions()
        rows.append(
            [name]
            + [round(fractions[label], 3) for label, _ in REWRITE_BUCKETS]
            + [distribution.total]
        )
        if distribution.total:
            all_fractions.append([fractions[label] for label, _ in REWRITE_BUCKETS])
            under_10us_shares.append(distribution.fraction_under(10e-6))
    if all_fractions:
        avg = np.mean(np.asarray(all_fractions), axis=0)
        rows.append(["AVG"] + [round(float(v), 3) for v in avg] + ["-"])
    extras = {
        "avg_fraction_under_10us": float(np.mean(under_10us_shares))
        if under_10us_shares else 0.0,
        "min_fraction_under_10us": float(np.min(under_10us_shares))
        if under_10us_shares else 0.0,
    }
    return ExperimentResult(
        name="Fig 6: LR rewrite-interval distribution",
        headers=["benchmark"] + [label for label, _ in REWRITE_BUCKETS] + ["samples"],
        rows=rows,
        extras=extras,
    )
