"""Fig. 6 — rewrite-interval distribution in the LR part.

Replays the suite through a C1-geometry two-part L2 with interval tracking
on and buckets the times between successive demand writes to LR-resident
lines.  The paper's observation — most LR rewrites land within ~10 us —
justifies microsecond-scale LR retention.

Job decomposition
-----------------
One job per benchmark: :func:`compute` replays one benchmark and returns
the bucketed fractions (JSON-safe); :func:`merge` averages across
benchmarks and assembles the table.  ``run`` is ``merge`` over inline
``compute`` calls, so serial and parallel paths share every arithmetic
step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.intervals import REWRITE_BUCKETS, rewrite_interval_distribution
from repro.config import config_c1
from repro.core.factory import build_l2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: LR rewrite-interval buckets for ``benchmark``."""
    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    l2 = build_l2(config_c1().l2, track_intervals=True)
    replay_through_l1(workload, l2.access)
    distribution = rewrite_interval_distribution(l2.rewrite_intervals)
    fractions = distribution.fractions()
    return {
        "fractions": {label: fractions[label] for label, _ in REWRITE_BUCKETS},
        "total": distribution.total,
        "under_10us": distribution.fraction_under(10e-6),
        "counters": {"rewrite_samples": distribution.total},
    }


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark payloads into the Fig. 6 distribution table."""
    rows: List[List] = []
    all_fractions = []
    under_10us_shares = []
    for name, payload in zip(names, payloads):
        fractions = payload["fractions"]
        rows.append(
            [name]
            + [round(fractions[label], 3) for label, _ in REWRITE_BUCKETS]
            + [payload["total"]]
        )
        if payload["total"]:
            all_fractions.append([fractions[label] for label, _ in REWRITE_BUCKETS])
            under_10us_shares.append(payload["under_10us"])
    if all_fractions:
        avg = np.mean(np.asarray(all_fractions), axis=0)
        rows.append(["AVG"] + [round(float(v), 3) for v in avg] + ["-"])
    extras = {
        "avg_fraction_under_10us": float(np.mean(under_10us_shares))
        if under_10us_shares else 0.0,
        "min_fraction_under_10us": float(np.min(under_10us_shares))
        if under_10us_shares else 0.0,
    }
    return ExperimentResult(
        name="Fig 6: LR rewrite-interval distribution",
        headers=["benchmark"] + [label for label, _ in REWRITE_BUCKETS] + ["samples"],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Bucket LR rewrite intervals per benchmark on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    payloads = [compute(name, trace_length=trace_length, seed=seed) for name in names]
    return merge(names, payloads)
