"""Fig. 5 — LR associativity sweep, normalized to fully-associative.

For LR associativity in {1, 2, 4, 8, 16} (plus the fully-associative
reference), replays the suite through a C1-geometry two-part L2 and reports
LR *write utilization* — the share of data writes absorbed by the LR part —
normalized to the fully-associative organization.  The paper picks 2-way as
the sweet spot between utilization and lookup complexity.

Job decomposition
-----------------
One job per benchmark: :func:`compute` replays one benchmark at every
associativity (string keys, JSON-safe); :func:`merge` normalizes to the
fully-associative reference and assembles the table.  ``run`` is ``merge``
over inline ``compute`` calls, so serial and parallel paths share every
arithmetic step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.config import config_c1
from repro.core.twopart import TwoPartSTTL2
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
    replay_through_l1,
)
from repro.workloads.suite import build_workload, suite_names

ASSOCIATIVITIES = (1, 2, 4, 8, 16)


def _build_twopart(lr_associativity: int) -> TwoPartSTTL2:
    l2cfg = config_c1().l2
    assert l2cfg.lr is not None
    return TwoPartSTTL2(
        hr_capacity_bytes=l2cfg.main.capacity_bytes,
        hr_associativity=l2cfg.main.associativity,
        lr_capacity_bytes=l2cfg.lr.capacity_bytes,
        lr_associativity=lr_associativity,
        line_size=l2cfg.line_size,
    )


def _full_associativity() -> int:
    l2cfg = config_c1().l2
    assert l2cfg.lr is not None
    return l2cfg.lr.capacity_bytes // l2cfg.line_size


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: LR write utilization per associativity for ``benchmark``."""
    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    sweep = list(ASSOCIATIVITIES) + [_full_associativity()]
    utilization: Dict[str, float] = {}
    for assoc in sweep:
        l2 = _build_twopart(assoc)
        replay_through_l1(workload, l2.access)
        utilization[str(assoc)] = l2.lr_write_share
    return {"utilization": utilization}


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark payloads into the normalized sweep table."""
    full = _full_associativity()
    rows: List[List] = []
    norm_cols: Dict[int, List[float]] = {a: [] for a in ASSOCIATIVITIES}
    for name, payload in zip(names, payloads):
        utilization = payload["utilization"]
        reference = max(utilization[str(full)], 1e-9)
        row: List = [name]
        for assoc in ASSOCIATIVITIES:
            value = utilization[str(assoc)] / reference
            row.append(round(value, 3))
            norm_cols[assoc].append(max(value, 1e-9))
        rows.append(row)
    rows.append(
        ["Gmean"] + [round(geomean(norm_cols[a]), 3) for a in ASSOCIATIVITIES]
    )

    gmeans = {a: geomean(norm_cols[a]) for a in ASSOCIATIVITIES}
    extras = {
        "gmean_1way": gmeans[1],
        "gmean_2way": gmeans[2],
        "gmean_16way": gmeans[16],
        # the paper's claim: 2-way sits close to fully-associative
        "two_way_gap_to_full": 1.0 - gmeans[2],
    }
    return ExperimentResult(
        name="Fig 5: LR associativity (normalized to fully-associative)",
        headers=["benchmark"] + [f"{a}-way" for a in ASSOCIATIVITIES],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep LR associativity on the C1 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    payloads = [compute(name, trace_length=trace_length, seed=seed) for name in names]
    return merge(names, payloads)
