"""Experiment harnesses — one module per table/figure of the paper.

Each module exposes ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows regenerate
the corresponding paper artifact (same rows/series; shape-comparable
numbers).  ``repro.experiments.runner`` drives them all from the CLI.

==============  ========================================================
module          paper artifact
==============  ========================================================
``table1``      Table 1 — STT-RAM retention levels
``table2``      Table 2 — simulated configurations
``fig3``        Fig. 3 — inter/intra-set write COV per benchmark
``fig4``        Fig. 4 — HR write-threshold sweep
``fig5``        Fig. 5 — LR associativity sweep
``fig6``        Fig. 6 — LR rewrite-interval distribution
``fig8``        Fig. 8 — speedup / dynamic power / total power
==============  ========================================================
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
