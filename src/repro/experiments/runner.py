"""Run every experiment and print the paper-artifact tables.

The registry (:data:`EXPERIMENTS`) maps names to experiment modules; both
:func:`run_experiment` and :func:`run_all` execute through the job
decomposition in :mod:`repro.experiments.parallel`, so the same entry
points scale from a serial in-process run (``jobs=1``, the default) to a
process-pool fan-out with an on-disk result cache and a JSON run manifest.

Determinism guarantees
----------------------
For fixed ``(trace_length, benchmarks, seed)`` the results are a pure
function of the configuration — independent of ``jobs``, of scheduling
order, and of whether payloads were computed or served from the cache.
``run_all(..., jobs=4)`` is byte-identical to the serial path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.experiments.common import DEFAULT_TRACE_LENGTH, ExperimentResult
from repro.experiments.parallel import run_battery

#: Experiment registry: the paper's artifacts in paper order, then the
#: extensions (everything after "fig8" is not a paper figure).
EXPERIMENTS = ("table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig8",
               "regions", "scaling", "energy", "variance")


def run_experiment(
    name: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> ExperimentResult:
    """Run one experiment by name.

    ``jobs`` > 1 fans the experiment's jobs over worker processes;
    ``cache_dir`` enables the content-keyed result cache.  The result is
    identical for every ``jobs``/cache combination (see the module
    docstring's determinism guarantees).
    """
    results, _ = run_battery(
        [name],
        trace_length=trace_length,
        benchmarks=benchmarks,
        seed=seed,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    return results[name]


def run_all(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    manifest_path: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run the whole battery; returns results keyed by experiment name.

    Jobs shared between experiments (``fig8``/``regions``/``variance`` all
    consume the same per-benchmark simulations) are executed once and fanned
    out.  ``manifest_path`` writes the run's telemetry manifest (per-job
    wall time, worker id, cache hit/miss, simulator counters) as JSON.
    Deterministic: results do not depend on ``jobs`` or cache state.
    """
    results, telemetry = run_battery(
        list(EXPERIMENTS),
        trace_length=trace_length,
        benchmarks=benchmarks,
        seed=seed,
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
    )
    if manifest_path is not None:
        telemetry.write(manifest_path)
    return results


def main(argv: Optional[Iterable[str]] = None) -> None:  # pragma: no cover - CLI
    """Print all experiments (used by `python -m repro.experiments.runner`)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=list(EXPERIMENTS),
                        help="subset of experiments to run")
    parser.add_argument("--trace-length", type=int, default=DEFAULT_TRACE_LENGTH)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the job fan-out")
    parser.add_argument("--cache-dir", default=None,
                        help="content-keyed result cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore the result cache even if --cache-dir is set")
    parser.add_argument("--manifest", metavar="FILE", default=None,
                        help="write the run telemetry manifest to FILE")
    args = parser.parse_args(list(argv) if argv is not None else None)
    results, telemetry = run_battery(
        list(args.experiments),
        trace_length=args.trace_length,
        benchmarks=args.benchmarks,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    for name in args.experiments:
        print(results[name].render())
        print()
    if args.manifest:
        telemetry.write(args.manifest)


if __name__ == "__main__":  # pragma: no cover
    main()
