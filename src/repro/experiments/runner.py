"""Run every experiment and print the paper-artifact tables."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.experiments import (
    energy, fig3, fig4, fig5, fig6, fig8, regions, scaling, table1, table2,
    variance,
)
from repro.experiments.common import DEFAULT_TRACE_LENGTH, ExperimentResult

#: Experiment registry: the paper's artifacts in paper order, then the
#: extensions (everything after "fig8" is not a paper figure).
EXPERIMENTS = ("table1", "table2", "fig3", "fig4", "fig5", "fig6", "fig8",
               "regions", "scaling", "energy", "variance")


def run_experiment(
    name: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run one experiment by name."""
    if name == "table1":
        return table1.run()
    if name == "table2":
        return table2.run()
    module = {"fig3": fig3, "fig4": fig4, "fig5": fig5, "fig6": fig6,
              "fig8": fig8, "regions": regions, "scaling": scaling,
              "energy": energy, "variance": variance}[name]
    return module.run(trace_length=trace_length, benchmarks=benchmarks, seed=seed)


def run_all(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> Dict[str, ExperimentResult]:
    """Run the whole battery; returns results keyed by experiment name."""
    return {
        name: run_experiment(
            name, trace_length=trace_length, benchmarks=benchmarks, seed=seed
        )
        for name in EXPERIMENTS
    }


def main(argv: Optional[Iterable[str]] = None) -> None:  # pragma: no cover - CLI
    """Print all experiments (used by `python -m repro.experiments.runner`)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", default=list(EXPERIMENTS),
                        help="subset of experiments to run")
    parser.add_argument("--trace-length", type=int, default=DEFAULT_TRACE_LENGTH)
    parser.add_argument("--benchmarks", nargs="*", default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(list(argv) if argv is not None else None)
    for name in args.experiments:
        result = run_experiment(
            name,
            trace_length=args.trace_length,
            benchmarks=args.benchmarks,
            seed=args.seed,
        )
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
