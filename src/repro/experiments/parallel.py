"""Parallel experiment execution: job decomposition, fan-out, merge.

Job-decomposition contract
--------------------------
Every experiment decomposes into independent **jobs** — one
:class:`JobSpec` per ``(kind, benchmark, trace_length, seed)`` — whose
payloads are the JSON-safe dicts returned by the experiment modules'
``compute`` functions.  :func:`decompose` produces the specs in
deterministic order, :func:`execute_job` runs one spec anywhere (worker
process, cache-warming script, this process), and :func:`merge_experiment`
folds the payloads back through the module's ``merge`` — the *same* code
the serial path runs — so the merged :class:`ExperimentResult` is
byte-identical to a serial ``run()`` at the same seed regardless of worker
count, scheduling order, or whether payloads came from the cache.

Three experiments (``fig8``, ``regions``, ``variance``) intentionally share
the ``fig8sim`` job kind: the runner executes each unique spec once and
fans its payload out to every experiment that needs it.

:func:`run_battery` is the orchestrator: it dedupes specs across the
requested experiments, serves what it can from a
:class:`~repro.telemetry.ResultCache`, executes the rest on a
``concurrent.futures.ProcessPoolExecutor`` (``jobs=1`` stays in-process),
and records one :class:`~repro.telemetry.JobRecord` per unique job.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.experiments import (
    energy, fig3, fig4, fig5, fig6, fig8, regions, scaling, table1, table2,
    variance,
)
from repro.experiments.common import DEFAULT_TRACE_LENGTH, ExperimentResult
from repro.telemetry import (
    CACHE_SCHEMA_VERSION,
    JobRecord,
    ResultCache,
    RunTelemetry,
    config_fingerprint,
    content_key,
)
from repro.workloads.suite import suite_names


@dataclass(frozen=True)
class JobSpec:
    """One independent unit of experiment work.

    ``kind`` selects the compute function; ``benchmark``/``trace_length``/
    ``seed`` are ``None`` for whole-table jobs (``table1``/``table2``)
    that do not depend on them.
    """

    kind: str
    benchmark: Optional[str]
    trace_length: Optional[int]
    seed: Optional[int]


#: Per-benchmark compute function for each job kind.
_COMPUTE = {
    "fig3": fig3.compute,
    "fig4": fig4.compute,
    "fig5": fig5.compute,
    "fig6": fig6.compute,
    "fig8sim": fig8.compute,
    "scaling": scaling.compute,
    "energy": energy.compute,
}

#: Job kind used by each per-benchmark experiment (fig8sim is shared).
_KIND_BY_EXPERIMENT = {
    "fig3": "fig3",
    "fig4": "fig4",
    "fig5": "fig5",
    "fig6": "fig6",
    "fig8": "fig8sim",
    "regions": "fig8sim",
    "variance": "fig8sim",
    "scaling": "scaling",
    "energy": "energy",
}

#: Merge function for each per-benchmark experiment (variance is special).
_MERGE_BY_EXPERIMENT = {
    "fig3": fig3.merge,
    "fig4": fig4.merge,
    "fig5": fig5.merge,
    "fig6": fig6.merge,
    "fig8": fig8.merge,
    "regions": regions.merge,
    "scaling": scaling.merge,
    "energy": energy.merge,
}


def resolve_benchmarks(
    experiment: str, benchmarks: Optional[Iterable[str]]
) -> List[str]:
    """The benchmark list an experiment runs by default (serial semantics)."""
    if benchmarks is not None:
        return list(benchmarks)
    if experiment == "scaling":
        return list(scaling.DEFAULT_BENCHMARKS)
    return suite_names()


def decompose(
    experiment: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> List[JobSpec]:
    """Split one experiment into its jobs, in deterministic order."""
    if experiment in ("table1", "table2"):
        return [JobSpec(experiment, None, None, None)]
    if experiment not in _KIND_BY_EXPERIMENT:
        raise ReproError(
            f"unknown experiment {experiment!r}; choose from "
            f"{sorted(_KIND_BY_EXPERIMENT) + ['table1', 'table2']}"
        )
    names = resolve_benchmarks(experiment, benchmarks)
    kind = _KIND_BY_EXPERIMENT[experiment]
    if experiment == "variance":
        return [
            JobSpec(kind, name, trace_length, s)
            for s in variance.default_seeds(seed)
            for name in names
        ]
    return [JobSpec(kind, name, trace_length, seed) for name in names]


def job_descriptor(spec: JobSpec) -> Dict[str, Any]:
    """The content-hashed identity of a job (feeds the cache key)."""
    return {
        "cache_schema": CACHE_SCHEMA_VERSION,
        "kind": spec.kind,
        "benchmark": spec.benchmark,
        "trace_length": spec.trace_length,
        "seed": spec.seed,
        "config": config_fingerprint(),
    }


def job_key(spec: JobSpec) -> str:
    """Content key of one job: hash of :func:`job_descriptor`."""
    return content_key(job_descriptor(spec))


def execute_job(spec: JobSpec) -> Dict[str, Any]:
    """Run one job to its JSON-safe payload (any process, any order)."""
    if spec.kind == "table1":
        from repro.io import experiment_result_to_dict

        return experiment_result_to_dict(table1.run())
    if spec.kind == "table2":
        from repro.io import experiment_result_to_dict

        return experiment_result_to_dict(table2.run())
    try:
        compute = _COMPUTE[spec.kind]
    except KeyError:
        raise ReproError(f"unknown job kind {spec.kind!r}") from None
    assert spec.benchmark is not None and spec.trace_length is not None
    return compute(spec.benchmark, trace_length=spec.trace_length, seed=spec.seed)


def _execute_job_timed(spec: JobSpec) -> Tuple[JobSpec, Dict[str, Any], float, int]:
    """Worker entry point: payload plus wall time and worker pid."""
    start = time.perf_counter()
    payload = execute_job(spec)
    return spec, payload, time.perf_counter() - start, os.getpid()


def fan_out(worker, items: Sequence[Any], jobs: int) -> List[Any]:
    """Run ``worker(item)`` over ``items`` on up to ``jobs`` processes.

    Results come back in **submission order** regardless of completion
    order — the determinism contract every merge in this codebase relies
    on.  ``jobs=1`` (or a single item) stays in-process, which keeps the
    parallel and serial paths byte-identical and debuggable.  ``worker``
    and each item must be picklable (a module-level function and
    plain-data arguments).

    This is the same fan-out the experiment battery uses; the sharded
    engine (:mod:`repro.shard`) reuses it for bank sub-jobs.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if jobs > 1 and len(items) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
            futures = [pool.submit(worker, item) for item in items]
            return [future.result() for future in futures]
    return [worker(item) for item in items]


def merge_experiment(
    experiment: str,
    specs: Sequence[JobSpec],
    payloads: Mapping[JobSpec, Dict[str, Any]],
) -> ExperimentResult:
    """Deterministically fold job payloads back into one result.

    ``specs`` must be the exact list :func:`decompose` produced for this
    experiment; payload provenance (fresh, cached, remote worker) is
    irrelevant to the output.
    """
    if experiment in ("table1", "table2"):
        from repro.io import experiment_result_from_dict

        return experiment_result_from_dict(payloads[specs[0]])
    if experiment == "variance":
        seeds: List[int] = []
        by_seed: Dict[int, List[Dict[str, Any]]] = {}
        for spec in specs:
            assert spec.seed is not None
            if spec.seed not in by_seed:
                seeds.append(spec.seed)
                by_seed[spec.seed] = []
            by_seed[spec.seed].append(payloads[spec])
        names = [spec.benchmark for spec in specs if spec.seed == seeds[0]]
        return variance.merge(names, [(s, by_seed[s]) for s in seeds])
    names = [spec.benchmark for spec in specs]
    ordered = [payloads[spec] for spec in specs]
    return _MERGE_BY_EXPERIMENT[experiment](names, ordered)


def run_battery(
    experiments: Sequence[str],
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    cache: Optional[ResultCache] = None,
) -> Tuple[Dict[str, ExperimentResult], RunTelemetry]:
    """Run a set of experiments with fan-out, caching and telemetry.

    Determinism guarantee: for any ``jobs`` value and any cache state, the
    returned results equal a serial ``module.run()`` at the same
    ``(trace_length, benchmarks, seed)`` — jobs are executed (or loaded)
    independently and merged in decomposition order by the same merge code
    the serial path uses.

    ``cache`` accepts a pre-built :class:`~repro.telemetry.ResultCache`
    (for example the simulation service's shared
    :class:`~repro.service.SharedResultStore`) and takes precedence over
    ``cache_dir``; both paths share one key space, so battery runs and the
    service serve each other's entries.

    Returns ``(results keyed by experiment name, run telemetry)``.
    """
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    benchmarks = list(benchmarks) if benchmarks is not None else None
    started = time.perf_counter()
    specs_by_experiment = {
        name: decompose(name, trace_length, benchmarks, seed)
        for name in experiments
    }

    # Dedup jobs across experiments (fig8 / regions / variance share specs).
    needed_by: Dict[JobSpec, List[str]] = {}
    for name, specs in specs_by_experiment.items():
        for spec in specs:
            needed_by.setdefault(spec, []).append(name)

    if cache is None and cache_dir and use_cache:
        cache = ResultCache(cache_dir)
    elif not use_cache:
        cache = None
    cache_dir = cache_dir if cache_dir else (
        str(cache.root) if cache is not None else None
    )
    telemetry = RunTelemetry(
        jobs=jobs,
        cache_dir=str(cache_dir) if cache_dir else None,
        cache_enabled=cache is not None,
        trace_length=trace_length,
        seed=seed,
        benchmarks=benchmarks,
        experiments=list(experiments),
    )

    payloads: Dict[JobSpec, Dict[str, Any]] = {}
    pending: List[JobSpec] = []
    for spec in needed_by:
        lookup_start = time.perf_counter()
        cached = cache.get(job_key(spec)) if cache is not None else None
        if cached is not None:
            payloads[spec] = cached
            telemetry.record(JobRecord(
                key=job_key(spec),
                kind=spec.kind,
                benchmark=spec.benchmark,
                trace_length=spec.trace_length,
                seed=spec.seed,
                experiments=list(needed_by[spec]),
                worker=os.getpid(),
                wall_time_s=time.perf_counter() - lookup_start,
                cache_hit=True,
                counters=dict(cached.get("counters", {})),
            ))
        else:
            pending.append(spec)

    outcomes = fan_out(_execute_job_timed, pending, jobs)

    for spec, payload, wall_time, worker in outcomes:
        payloads[spec] = payload
        if cache is not None:
            cache.put(job_key(spec), job_descriptor(spec), payload)
        telemetry.record(JobRecord(
            key=job_key(spec),
            kind=spec.kind,
            benchmark=spec.benchmark,
            trace_length=spec.trace_length,
            seed=spec.seed,
            experiments=list(needed_by[spec]),
            worker=worker,
            wall_time_s=wall_time,
            cache_hit=False,
            counters=dict(payload.get("counters", {})),
        ))

    results = {
        name: merge_experiment(name, specs_by_experiment[name], payloads)
        for name in experiments
    }
    telemetry.wall_time_s = time.perf_counter() - started
    return results, telemetry
