"""Fig. 3 — inter- and intra-set write variation (COV) per benchmark.

Replays each benchmark through the L1s into a baseline-geometry L2 array and
reports the write COVs.  The paper's observation: benchmarks differ wildly —
irregular ones (bfs-like) exceed 100% inter-set COV while stencil-like codes
write evenly — which motivates a dedicated write-favouring (LR) region.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.cov import write_variation
from repro.cache.array import SetAssociativeCache
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
    replay_through_l1,
)
from repro.units import KB
from repro.workloads.profiles import PROFILES
from repro.workloads.suite import build_workload, suite_names


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Compute write COVs for each benchmark on the baseline L2 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    rows: List[List] = []
    inter_values, intra_values = [], []
    for name in names:
        workload = build_workload(name, num_accesses=trace_length, seed=seed)
        l2 = SetAssociativeCache(384 * KB, 8, 256, name="fig3-l2")
        replay_through_l1(workload, l2.access)
        variation = write_variation(l2)
        pct = variation.as_percentages()
        rows.append([
            name,
            PROFILES[name].region,
            round(pct["inter_set_pct"], 1),
            round(pct["intra_set_pct"], 1),
            variation.total_writes,
        ])
        inter_values.append(max(pct["inter_set_pct"], 1e-9))
        intra_values.append(max(pct["intra_set_pct"], 1e-9))
    rows.append([
        "Gmean", "-", round(geomean(inter_values), 1), round(geomean(intra_values), 1), "-",
    ])
    extras = {
        "max_inter_pct": max(inter_values),
        "min_inter_pct": min(inter_values),
        "gmean_inter_pct": geomean(inter_values),
        "gmean_intra_pct": geomean(intra_values),
    }
    return ExperimentResult(
        name="Fig 3: inter/intra-set write COV",
        headers=["benchmark", "region", "inter_set_cov_pct", "intra_set_cov_pct",
                 "l2_writes"],
        rows=rows,
        extras=extras,
    )
