"""Fig. 3 — inter- and intra-set write variation (COV) per benchmark.

Replays each benchmark through the L1s into a baseline-geometry L2 array and
reports the write COVs.  The paper's observation: benchmarks differ wildly —
irregular ones (bfs-like) exceed 100% inter-set COV while stencil-like codes
write evenly — which motivates a dedicated write-favouring (LR) region.

Job decomposition
-----------------
One job per benchmark: :func:`compute` measures a single benchmark and
returns a JSON-safe payload; :func:`merge` deterministically assembles the
payloads (in benchmark order) into the :class:`ExperimentResult`.  The
serial :func:`run` path is literally ``merge(names, [compute(n) ...])``, so
parallel and serial execution share every arithmetic step.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.analysis.cov import write_variation
from repro.cache.array import SetAssociativeCache
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
    replay_through_l1,
)
from repro.units import KB
from repro.workloads.profiles import PROFILES
from repro.workloads.suite import build_workload, suite_names


def compute(
    benchmark: str,
    trace_length: int = DEFAULT_TRACE_LENGTH,
    seed: int = 0,
) -> Dict[str, Any]:
    """One job: write COVs for ``benchmark`` on the baseline L2 geometry.

    Returns a JSON-safe payload (floats/ints only) so results can be cached
    on disk and shipped across process boundaries unchanged.
    """
    workload = build_workload(benchmark, num_accesses=trace_length, seed=seed)
    l2 = SetAssociativeCache(384 * KB, 8, 256, name="fig3-l2")
    replay_through_l1(workload, l2.access)
    variation = write_variation(l2)
    pct = variation.as_percentages()
    return {
        "inter_set_pct": pct["inter_set_pct"],
        "intra_set_pct": pct["intra_set_pct"],
        "total_writes": variation.total_writes,
        "counters": {"l2_writes": variation.total_writes},
    }


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Assemble per-benchmark payloads (in order) into the Fig. 3 table."""
    rows: List[List] = []
    inter_values, intra_values = [], []
    for name, payload in zip(names, payloads):
        rows.append([
            name,
            PROFILES[name].region,
            round(payload["inter_set_pct"], 1),
            round(payload["intra_set_pct"], 1),
            payload["total_writes"],
        ])
        inter_values.append(max(payload["inter_set_pct"], 1e-9))
        intra_values.append(max(payload["intra_set_pct"], 1e-9))
    rows.append([
        "Gmean", "-", round(geomean(inter_values), 1), round(geomean(intra_values), 1), "-",
    ])
    extras = {
        "max_inter_pct": max(inter_values),
        "min_inter_pct": min(inter_values),
        "gmean_inter_pct": geomean(inter_values),
        "gmean_intra_pct": geomean(intra_values),
    }
    return ExperimentResult(
        name="Fig 3: inter/intra-set write COV",
        headers=["benchmark", "region", "inter_set_cov_pct", "intra_set_cov_pct",
                 "l2_writes"],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Compute write COVs for each benchmark on the baseline L2 geometry."""
    names = list(benchmarks) if benchmarks is not None else suite_names()
    payloads = [compute(name, trace_length=trace_length, seed=seed) for name in names]
    return merge(names, payloads)
