"""Region-aggregated view of the Fig. 8 evaluation.

The paper discusses Fig. 8a in terms of four benchmark regions (insensitive
/ register-limited / cache+register / cache-friendly).  This experiment
aggregates the per-benchmark simulations into one row per region so the
regional story is directly checkable: region 1 flat everywhere, region 2
moving only with the register file (C2/C3), regions 3-4 moving with cache
capacity (C1/C3).

Job decomposition
-----------------
This experiment reuses the Fig. 8 per-benchmark jobs (:func:`fig8.compute`)
verbatim — :func:`merge` only regroups their payloads by region — so the
parallel runner can deduplicate the simulations with ``fig8``/``variance``
and serve them from the shared result cache.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.experiments import fig8
from repro.experiments.common import (
    DEFAULT_TRACE_LENGTH,
    ExperimentResult,
    geomean,
)
from repro.gpu.metrics import SimulationResult
from repro.workloads.profiles import PROFILES

REGION_LABELS = {
    1: "1: insensitive",
    2: "2: register-limited",
    3: "3: cache+register",
    4: "4: cache-friendly",
}


def merge(names: Sequence[str], payloads: Sequence[Dict[str, Any]]) -> ExperimentResult:
    """Aggregate Fig. 8 job payloads into one gmean-speedup row per region."""
    by_region: Dict[int, Dict[str, List[float]]] = {}
    for name, payload in zip(names, payloads):
        sims = payload["sims"]
        region = PROFILES[name].region
        base = sims["baseline"]
        bucket = by_region.setdefault(
            region, {c: [] for c in fig8.CONFIG_ORDER}
        )
        for config_name in fig8.CONFIG_ORDER:
            bucket[config_name].append(sims[config_name]["ipc"] / base["ipc"])

    rows: List[List] = []
    extras: Dict[str, float] = {}
    for region in sorted(by_region):
        bucket = by_region[region]
        row: List = [REGION_LABELS.get(region, str(region)),
                     len(bucket[fig8.CONFIG_ORDER[0]])]
        for config_name in fig8.CONFIG_ORDER:
            value = geomean(bucket[config_name])
            row.append(round(value, 3))
            extras[f"region{region}_{config_name}"] = value
        rows.append(row)

    return ExperimentResult(
        name="Fig 8a by region: gmean speedup vs SRAM baseline",
        headers=["region", "benchmarks"]
        + [f"speedup_{c}" for c in fig8.CONFIG_ORDER],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    results: Optional[Dict[str, Dict[str, SimulationResult]]] = None,
) -> ExperimentResult:
    """Aggregate Fig. 8 speedups per region (reuses ``results`` if given)."""
    if results is None:
        results = fig8.run_simulations(trace_length, benchmarks, seed)
    names = list(results)
    payloads = [fig8.payload_from_sims(results[name]) for name in names]
    return merge(names, payloads)
