"""Seed-robustness study of the headline result (extension).

The traces are synthetic, so a fair question is whether the Fig. 8 gmeans
are artifacts of one random seed.  This experiment re-runs the evaluation
across several generator seeds and reports, per headline metric, the mean
and spread — the shape claims should hold for *every* seed.

Job decomposition
-----------------
One job per (benchmark, seed) pair, reusing :func:`fig8.compute` verbatim:
:func:`merge` folds each seed's payloads through :func:`fig8.merge` and
then takes the cross-seed statistics.  Because the seed-``s`` jobs are the
same jobs ``fig8`` itself runs, the parallel runner deduplicates them and
a warm result cache makes the whole study incremental.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments import fig8
from repro.experiments.common import DEFAULT_TRACE_LENGTH, ExperimentResult
from repro.workloads.suite import suite_names

#: Headline metrics tracked across seeds.
METRICS = (
    "gmean_speedup_stt",
    "gmean_speedup_c1",
    "gmean_speedup_c2",
    "gmean_speedup_c3",
    "gmean_total_c1",
    "gmean_total_c2",
    "gmean_total_stt",
)


def default_seeds(seed: int) -> Tuple[int, int, int]:
    """The swept seed set: three consecutive seeds starting at ``seed``."""
    return (seed, seed + 1, seed + 2)


def _mean_std(values: Sequence[float]) -> tuple:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def merge(
    names: Sequence[str],
    payloads_by_seed: Sequence[Tuple[int, Sequence[Dict[str, Any]]]],
) -> ExperimentResult:
    """Fold each seed's Fig. 8 payloads into the cross-seed statistics.

    ``payloads_by_seed`` pairs each swept seed with its per-benchmark
    payloads (one :func:`fig8.compute` payload per name, in ``names``
    order).
    """
    per_seed: Dict[str, List[float]] = {metric: [] for metric in METRICS}
    seeds = [seed for seed, _ in payloads_by_seed]
    for _seed, payloads in payloads_by_seed:
        result = fig8.merge(names, payloads)
        for metric in METRICS:
            per_seed[metric].append(result.extras[metric])

    rows: List[List] = []
    extras: Dict[str, float] = {}
    for metric in METRICS:
        mean, std = _mean_std(per_seed[metric])
        spread = (max(per_seed[metric]) - min(per_seed[metric]))
        rows.append([
            metric,
            round(mean, 3),
            round(std, 4),
            round(min(per_seed[metric]), 3),
            round(max(per_seed[metric]), 3),
        ])
        extras[f"{metric}_mean"] = mean
        extras[f"{metric}_std"] = std
        extras[f"{metric}_spread"] = spread
    return ExperimentResult(
        name=f"Seed robustness over seeds {tuple(seeds)}",
        headers=["metric", "mean", "std", "min", "max"],
        rows=rows,
        extras=extras,
    )


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Fig. 8 headline metrics across generator seeds.

    ``seeds`` overrides the swept set; by default three consecutive seeds
    starting at ``seed`` are used.  Deterministic: the result depends only
    on ``(trace_length, benchmarks, seeds)``.
    """
    if seeds is None:
        seeds = default_seeds(seed)
    names = list(benchmarks) if benchmarks is not None else suite_names()
    payloads_by_seed = [
        (s, [fig8.compute(name, trace_length=trace_length, seed=s) for name in names])
        for s in seeds
    ]
    return merge(names, payloads_by_seed)
