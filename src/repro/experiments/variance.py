"""Seed-robustness study of the headline result (extension).

The traces are synthetic, so a fair question is whether the Fig. 8 gmeans
are artifacts of one random seed.  This experiment re-runs the evaluation
across several generator seeds and reports, per headline metric, the mean
and spread — the shape claims should hold for *every* seed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments import fig8
from repro.experiments.common import DEFAULT_TRACE_LENGTH, ExperimentResult

#: Headline metrics tracked across seeds.
METRICS = (
    "gmean_speedup_stt",
    "gmean_speedup_c1",
    "gmean_speedup_c2",
    "gmean_speedup_c3",
    "gmean_total_c1",
    "gmean_total_c2",
    "gmean_total_stt",
)


def _mean_std(values: Sequence[float]) -> tuple:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def run(
    trace_length: int = DEFAULT_TRACE_LENGTH,
    benchmarks: Optional[Iterable[str]] = None,
    seed: int = 0,
    seeds: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Fig. 8 headline metrics across generator seeds.

    ``seeds`` overrides the swept set; by default three consecutive seeds
    starting at ``seed`` are used.
    """
    if seeds is None:
        seeds = (seed, seed + 1, seed + 2)
    names = list(benchmarks) if benchmarks is not None else None
    per_seed: Dict[str, List[float]] = {metric: [] for metric in METRICS}
    for seed in seeds:
        result = fig8.run(
            trace_length=trace_length, benchmarks=names, seed=seed
        )
        for metric in METRICS:
            per_seed[metric].append(result.extras[metric])

    rows: List[List] = []
    extras: Dict[str, float] = {}
    for metric in METRICS:
        mean, std = _mean_std(per_seed[metric])
        spread = (max(per_seed[metric]) - min(per_seed[metric]))
        rows.append([
            metric,
            round(mean, 3),
            round(std, 4),
            round(min(per_seed[metric]), 3),
            round(max(per_seed[metric]), 3),
        ])
        extras[f"{metric}_mean"] = mean
        extras[f"{metric}_std"] = std
        extras[f"{metric}_spread"] = spread
    return ExperimentResult(
        name=f"Seed robustness over seeds {tuple(seeds)}",
        headers=["metric", "mean", "std", "min", "max"],
        rows=rows,
        extras=extras,
    )
