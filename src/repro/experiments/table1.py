"""Table 1 — STT-RAM parameters per retention level (reconstructed).

Regenerates the paper's device table from the physics model: thermal
stability, retention time, write latency/energy and the refresh scope for
the 10-year, HR and LR operating points.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sttram.retention import retention_catalogue
from repro.units import NS, PJ, format_time


def run(line_size_bytes: int = 256) -> ExperimentResult:
    """Build the Table 1 rows (one per retention level)."""
    catalogue = retention_catalogue()
    rows = []
    for level in catalogue.values():
        rows.append([
            level.name,
            round(level.delta, 1),
            format_time(level.retention_time),
            level.write_latency / NS,
            level.write_energy_per_line(line_size_bytes) / PJ,
            level.refresh_scope,
        ])
    extras = {
        "we_ratio_10year_over_lr": (
            catalogue["10year"].write_energy_per_line(line_size_bytes)
            / catalogue["lr"].write_energy_per_line(line_size_bytes)
        ),
        "wl_ratio_10year_over_lr": (
            catalogue["10year"].write_latency / catalogue["lr"].write_latency
        ),
    }
    return ExperimentResult(
        name="Table 1: STT-RAM retention levels",
        headers=["level", "delta", "retention", "write_latency_ns",
                 "write_energy_pJ_per_line", "refreshing"],
        rows=rows,
        extras=extras,
    )
