"""Command-line interface: ``repro-sttgpu``.

Subcommands
-----------
``experiments``
    Run paper experiments (all by default, or a named subset) and print the
    regenerated tables.
``simulate``
    Run one benchmark on one configuration and print the result.
``configs``
    Print Table 2 (the five simulated systems).
``suite``
    List the benchmark suite with per-benchmark characteristics.
``inject``
    Run a named fault-injection campaign against the two-part L2 with the
    invariant checker attached; exits non-zero iff undetected data loss
    (or any other invariant violation) was found.  See ``docs/faults.md``.
``diff``
    Replay a seeded workload through the optimized two-part L2 and the
    naive reference model in lockstep and diff every observable outcome;
    exits non-zero iff the models diverge.  See ``docs/oracle.md``.
``serve``
    Run the simulation service: an async JSON-over-TCP server with a
    shared result store, request coalescing, and a sharded worker pool.
    See ``docs/service.md``.
``submit``
    Submit one request (simulate, experiment, predict, ping, stats,
    shutdown) to a running service.  An unreachable server exits 2 with a
    one-line diagnostic, matching the unknown-experiment convention.
``predict``
    Ask the local analytical surrogate (no service needed) for an instant
    estimate of one (benchmark, config) point; ``--compare`` also runs
    the trace-driven engine and prints the relative errors.  See
    ``docs/surrogate.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import all_configs
from repro.experiments.common import DEFAULT_TRACE_LENGTH
from repro.experiments.parallel import run_battery
from repro.experiments.runner import EXPERIMENTS
from repro.workloads.profiles import PROFILES
from repro.workloads.suite import build_workload, suite_names


def _cmd_experiments(args: argparse.Namespace) -> int:
    names = list(args.names) if args.names else list(EXPERIMENTS)
    unknown = sorted(set(names) - set(EXPERIMENTS))
    if unknown:
        print(
            f"repro-sttgpu experiments: unknown experiment(s): "
            f"{', '.join(repr(n) for n in unknown)}",
            file=sys.stderr,
        )
        print(f"choose from: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        print(
            "usage: repro-sttgpu experiments [NAME ...] [--jobs N] "
            "[--cache-dir DIR] [--manifest FILE] (try --help)",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(
            f"repro-sttgpu experiments: --jobs must be >= 1, got {args.jobs}",
            file=sys.stderr,
        )
        return 2
    results, telemetry = run_battery(
        names,
        trace_length=args.trace_length,
        benchmarks=args.benchmarks,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    for name in names:
        result = results[name]
        print(result.render())
        if args.bars:
            bars = result.render_bars()
            if bars:
                print()
                print(bars)
        print()
    if args.manifest:
        telemetry.write(args.manifest)
        print(
            f"wrote manifest {args.manifest} "
            f"({telemetry.cache_hits} cache hits, "
            f"{telemetry.cache_misses} misses, "
            f"{telemetry.wall_time_s:.2f}s)"
        )
    if args.json:
        from repro.io import save_experiments

        save_experiments(results, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    configs = all_configs()
    if args.config not in configs:
        print(f"unknown config {args.config!r}; choose from {sorted(configs)}",
              file=sys.stderr)
        return 2
    if args.trace_sample < 1:
        print(
            f"repro-sttgpu simulate: --trace-sample must be >= 1, "
            f"got {args.trace_sample}",
            file=sys.stderr,
        )
        return 2
    workload = build_workload(
        args.benchmark, num_accesses=args.trace_length, seed=args.seed
    )
    from repro.engine import make_simulator
    from repro.errors import ConfigurationError

    if args.trace:
        from repro.tracing import TraceCollector

        tracer = TraceCollector(sample_every=args.trace_sample)
    else:
        tracer = None
    if args.engine != "sharded" and (
        args.shards is not None or args.workers is not None
    ):
        print(
            "repro-sttgpu simulate: --shards/--workers apply only to "
            "--engine sharded (see docs/sharding.md)",
            file=sys.stderr,
        )
        return 2
    sim_kwargs = {}
    if args.engine == "sharded":
        sim_kwargs["shards"] = 4 if args.shards is None else args.shards
        if args.workers is not None:
            sim_kwargs["workers"] = args.workers
    try:
        # with --trace the registry falls back to (or, for an explicit
        # --engine soa, refuses with) the object engine: tracing is an
        # object-engine feature
        simulator = make_simulator(
            configs[args.config], workload, engine=args.engine, tracer=tracer,
            **sim_kwargs,
        )
    except ConfigurationError as exc:
        print(f"repro-sttgpu simulate: {exc}", file=sys.stderr)
        return 2
    result = simulator.run()
    print(f"benchmark      : {result.workload}")
    print(f"config         : {result.config}")
    print(f"IPC            : {result.ipc:.2f} (bound by {result.bound_by})")
    print(f"warps/SM       : {result.warps_per_sm} (limited by {result.occupancy_limiter})")
    print(f"L1 hit rate    : {result.l1_hit_rate:.3f}")
    print(f"L2 hit rate    : {result.l2_hit_rate:.3f}")
    print(f"DRAM accesses  : {result.dram_accesses}")
    print(f"L2 dynamic W   : {result.l2_dynamic_power_w:.4f}")
    print(f"L2 leakage W   : {result.l2_leakage_power_w:.4f}")
    print(f"L2 total W     : {result.l2_total_power_w:.4f}")
    if result.lr_write_share is not None:
        print(f"LR write share : {result.lr_write_share:.3f}")
        print(f"migrations->LR : {result.migrations_to_lr}")
    if args.engine == "sharded" and result.bank_stats:
        from repro.cache.banked import summarize_banks

        banks = summarize_banks(result.bank_stats)
        rate = banks["conflict_rate"]
        wait = banks["mean_wait_s"]
        print(
            f"L2 banks       : {banks['active_banks']}/{banks['banks']} "
            f"active ({simulator.shards} shards, {simulator.workers} workers), "
            f"conflict rate "
            f"{'n/a' if rate is None else format(rate, '.3f')}, "
            f"mean wait "
            f"{'n/a' if wait is None else format(wait * 1e9, '.1f') + ' ns'}"
        )
    if tracer is not None:
        tracer.write(args.trace_out)
        summary = tracer.summary()
        print(
            f"trace          : {args.trace_out} "
            f"({summary['events']} events, {summary['dropped_events']} dropped, "
            f"{len(summary['counters'])} counters)"
        )
        if args.manifest:
            from repro.telemetry import JobRecord, RunTelemetry

            telemetry = RunTelemetry(
                jobs=1,
                trace_length=args.trace_length,
                seed=args.seed,
                benchmarks=[args.benchmark],
                experiments=["simulate"],
            )
            telemetry.record(JobRecord(
                key=f"simulate:{args.benchmark}:{args.config}",
                kind="simulate",
                benchmark=args.benchmark,
                trace_length=args.trace_length,
                seed=args.seed,
                experiments=["simulate"],
                worker=0,
                wall_time_s=0.0,
                cache_hit=False,
                counters={"l2_requests": result.l2_requests},
            ))
            telemetry.attach_trace(summary)
            telemetry.write(args.manifest)
            print(f"manifest       : {args.manifest}")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    from repro.errors import FaultInjectionError
    from repro.faults import run_campaign, write_report

    try:
        report = run_campaign(
            args.campaign,
            seed=args.seed,
            trace_length=args.trace_length,
            check_interval=args.check_interval,
        )
    except FaultInjectionError as exc:
        print(f"repro-sttgpu inject: {exc}", file=sys.stderr)
        return 2
    summary = report["summary"]
    print(f"campaign       : {report['campaign']} ({report['description']})")
    print(f"workload/config: {report['workload']} on {report['config']} "
          f"({report['trace_length']} records, seed {report['seed']})")
    print(f"faults injected: {summary['faults_injected']}")
    print(f"  detected     : {summary['faults_detected']}")
    print(f"  recovered    : {summary['faults_recovered']}")
    print(f"  vacated      : {summary['faults_vacated']}")
    print(f"  pending      : {summary['faults_pending']}")
    print(f"data losses    : {summary['data_losses_detected']} detected, "
          f"{summary['undetected_data_loss']} undetected")
    invariants = report["invariants"]
    print(f"invariants     : {invariants['checks']} checks, "
          f"{invariants['total_violations']} violations")
    for violation in invariants["violations"][:5]:
        print(f"  [{violation['invariant']}] {violation['detail']}")
    if args.out:
        write_report(report, args.out)
        print(f"report         : {args.out}")
    if report["ok"]:
        print("verdict        : OK (all faults detected or recovered)")
        return 0
    print("verdict        : FAIL (undetected data loss or invariant violation)")
    return 1


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.errors import OracleError
    from repro.io import write_json_atomic
    from repro.oracle import (
        DEFAULT_DT_S,
        pressure_config,
        run_diff,
        validate_report,
    )

    configs = all_configs()
    if args.config == "oracle-small":
        config = pressure_config()
    elif args.config in configs:
        config = configs[args.config]
    else:
        print(
            f"repro-sttgpu diff: unknown config {args.config!r}; choose a "
            f"two-part config from {sorted(configs)} or 'oracle-small'",
            file=sys.stderr,
        )
        return 2
    tracer = None
    if args.trace_out:
        from repro.tracing import TraceCollector

        tracer = TraceCollector()
    try:
        report = run_diff(
            args.benchmark,
            config,
            seed=args.seed,
            accesses=args.accesses,
            dt_s=args.dt if args.dt is not None else DEFAULT_DT_S,
            shrink=args.shrink,
            mutant=args.mutant,
            tracer=tracer,
            engine=args.engine,
        )
        validate_report(report)
    except OracleError as exc:
        print(f"repro-sttgpu diff: {exc}", file=sys.stderr)
        return 2
    divergence = report["divergence"]
    print(f"benchmark      : {report['profile']} "
          f"({report['accesses']} accesses, seed {report['seed']})")
    print(f"config         : {report['config']} [engine {report['engine']}]"
          + (f" [mutant {report['mutant']}]" if report["mutant"] else ""))
    print(f"checked        : {report['checked_accesses']} accesses in lockstep")
    if divergence is not None:
        fields = [f["field"] for f in divergence["fields"]]
        print(f"divergence     : access #{divergence['index']} "
              f"at t={divergence['now_s']:.6e}s "
              f"(address {divergence['address']!r})")
        print(f"  fields       : {', '.join(fields[:6])}"
              + (f" (+{len(fields) - 6} more)" if len(fields) > 6 else ""))
        shrunk = report["shrunk"]
        if shrunk is not None:
            print(f"  reproducer   : shrunk to {len(shrunk['accesses'])} "
                  f"access(es)")
    if args.out:
        write_json_atomic(report, args.out)
        print(f"report         : {args.out}")
    if tracer is not None:
        tracer.write(args.trace_out)
        print(f"trace          : {args.trace_out}")
    if divergence is None:
        print("verdict        : OK (models agree on every access)")
        return 0
    print("verdict        : DIVERGED (timing-model bug or broken reference)")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import tempfile

    from repro.errors import ServiceError
    from repro.service import ShardedWorkerPool, SharedResultStore, SimulationServer

    log_handle = None
    if args.log:
        log_handle = open(args.log, "a", encoding="utf-8")

    def log(line: str) -> None:
        # the announce line goes to stdout so scripts (and the
        # service-smoke CI job) can parse the bound port; --log tees a
        # copy to a file for post-mortem artifacts
        print(f"repro-sttgpu serve: {line}", flush=True)
        if log_handle is not None:
            log_handle.write(line + "\n")
            log_handle.flush()

    tmp = None
    try:
        pool = ShardedWorkerPool(shards=args.pool_shards, kind=args.pool_kind)
        store_dir = args.store_dir
        if store_dir is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-service-")
            store_dir = tmp.name
        store = SharedResultStore(
            store_dir,
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
        )
    except ServiceError as exc:
        print(f"repro-sttgpu serve: {exc}", file=sys.stderr)
        if tmp is not None:
            tmp.cleanup()
        if log_handle is not None:
            log_handle.close()
        return 2
    server = SimulationServer(
        host=args.host,
        port=args.port,
        store=store,
        pool=pool,
        log=log,
        drain_timeout_s=args.drain_timeout,
    )
    try:
        asyncio.run(server.serve())
    except KeyboardInterrupt:
        return 130
    finally:
        if tmp is not None:
            tmp.cleanup()
        if log_handle is not None:
            log_handle.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import ServiceConnectionError, ServiceError
    from repro.service import ServiceClient

    modes = sum(
        (
            args.ping,
            args.stats,
            args.shutdown,
            args.experiment is not None,
            args.benchmark is not None,
        )
    )
    if modes != 1:
        print(
            "repro-sttgpu submit: give exactly one of BENCHMARK CONFIG, "
            "--experiment NAME, --ping, --stats, or --shutdown",
            file=sys.stderr,
        )
        return 2
    if args.benchmark is not None and args.config is None:
        print(
            "repro-sttgpu submit: BENCHMARK needs a CONFIG "
            "(e.g. repro-sttgpu submit bfs C1)",
            file=sys.stderr,
        )
        return 2
    if args.predict and args.benchmark is None:
        print(
            "repro-sttgpu submit: --predict needs BENCHMARK CONFIG "
            "(e.g. repro-sttgpu submit --predict bfs C1)",
            file=sys.stderr,
        )
        return 2
    if args.predict and (args.engine is not None or args.shards is not None):
        print(
            "repro-sttgpu submit: --predict is engine-independent; "
            "drop --engine/--shards",
            file=sys.stderr,
        )
        return 2
    try:
        with ServiceClient(
            host=args.host, port=args.port, timeout_s=args.timeout
        ) as client:
            if args.ping:
                response = client.ping()
                print(f"pong (protocol {response['protocol']})")
            elif args.stats:
                stats = client.stats()
                from repro.io import canonical_json

                print(canonical_json(stats))
            elif args.shutdown:
                client.shutdown()
                print("server draining")
            elif args.experiment is not None:
                response = client.experiment(
                    args.experiment,
                    trace_length=args.trace_length,
                    seed=args.seed,
                )
                print(f"experiment     : {args.experiment}")
                print(f"digest         : {response['digest']}")
                print(f"jobs           : {response['jobs']}")
            elif args.predict:
                response = client.predict(
                    args.benchmark,
                    args.config,
                    trace_length=args.trace_length,
                    seed=args.seed,
                )
                payload = response["payload"]
                print(f"benchmark      : {payload['benchmark']}")
                print(f"config         : {payload['config']}")
                print(f"cache          : {response['cache']}")
                print(f"digest         : {response['digest']}")
                print(f"via            : {payload['via']}")
                print(f"IPC            : {payload['ipc']:.2f}")
                print(f"L2 hit rate    : {payload['l2_hit_rate']:.3f}")
                print(f"L2 dynamic J   : {payload['l2_dynamic_energy_j']:.3e}")
            else:
                response = client.simulate(
                    args.benchmark,
                    args.config,
                    trace_length=args.trace_length,
                    seed=args.seed,
                    engine=args.engine,
                    shards=args.shards,
                )
                payload = response["payload"]
                print(f"benchmark      : {payload['workload']}")
                print(f"config         : {payload['config']}")
                print(f"cache          : {response['cache']}")
                print(f"digest         : {response['digest']}")
                print(f"IPC            : {payload['ipc']:.2f}")
                print(f"L2 hit rate    : {payload['l2_hit_rate']:.3f}")
                print(f"L2 total W     : {payload['l2_total_power_w']:.4f}")
            if args.json:
                from repro.io import write_json_atomic

                write_json_atomic(response if not args.stats else stats, args.json)
                print(f"wrote {args.json}")
    except ServiceConnectionError as exc:
        print(f"repro-sttgpu submit: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"repro-sttgpu submit: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.errors import SurrogateError
    from repro.surrogate import PREDICTED_METRICS, SurrogateOracle
    from repro.telemetry import ResultCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    oracle = SurrogateOracle(cache=cache)
    try:
        prediction = oracle.predict(
            args.config, args.benchmark,
            trace_length=args.trace_length, seed=args.seed,
        )
    except SurrogateError as exc:
        print(f"repro-sttgpu predict: {exc}", file=sys.stderr)
        return 2
    print(f"benchmark      : {prediction['benchmark']}")
    print(f"config         : {prediction['config']}")
    print(f"trace length   : {prediction['trace_length']} (seed {prediction['seed']})")
    print(f"via            : {prediction['via']}")
    print(f"IPC            : {prediction['ipc']:.2f}")
    print(f"L1 hit rate    : {prediction['l1_hit_rate']:.3f}")
    print(f"L2 hit rate    : {prediction['l2_hit_rate']:.3f}")
    print(f"L2 dynamic J   : {prediction['l2_dynamic_energy_j']:.3e}")
    print(f"L2 leakage W   : {prediction['l2_leakage_power_w']:.4f}")
    if args.compare:
        from repro import simulate

        workload = build_workload(
            args.benchmark, num_accesses=args.trace_length, seed=args.seed
        )
        truth = simulate(all_configs()[args.config], workload)
        print("vs trace-driven engine:")
        for metric in PREDICTED_METRICS:
            actual = getattr(truth, metric)
            predicted = prediction[metric]
            if actual:
                err = abs(predicted - actual) / abs(actual)
                print(f"  {metric:<22}: {actual:.4g} (rel err {err:.2%})")
            else:
                print(f"  {metric:<22}: {actual:.4g} (predicted {predicted:.4g})")
    if args.json:
        from repro.io import write_json_atomic

        write_json_atomic(prediction, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_configs(_args: argparse.Namespace) -> int:
    from repro.config import render_table2

    print(render_table2())
    return 0


def _cmd_suite(_args: argparse.Namespace) -> int:
    print(f"{'benchmark':<15}{'region':<8}{'writes':<8}description")
    print("-" * 78)
    for name in suite_names():
        profile = PROFILES[name]
        print(
            f"{name:<15}{profile.region:<8}"
            f"{profile.write_fraction:<8.2f}{profile.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-sttgpu",
        description="STT-RAM GPU last-level cache reproduction (DAC 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    p_exp.add_argument("names", nargs="*", help=f"subset of {EXPERIMENTS}")
    p_exp.add_argument("--trace-length", type=int, default=DEFAULT_TRACE_LENGTH)
    p_exp.add_argument("--benchmarks", nargs="*", default=None)
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="fan jobs out over N worker processes (default 1)")
    p_exp.add_argument("--cache-dir", metavar="DIR", default=None,
                       help="content-keyed result cache directory")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="ignore the result cache even if --cache-dir is set")
    p_exp.add_argument("--manifest", metavar="FILE", default=None,
                       help="write the run telemetry manifest to FILE")
    p_exp.add_argument("--json", metavar="FILE", default=None,
                       help="also write results to FILE as JSON")
    p_exp.add_argument("--bars", action="store_true",
                       help="also render ASCII bar charts per column")
    p_exp.set_defaults(func=_cmd_experiments)

    p_sim = sub.add_parser("simulate", help="run one benchmark on one config")
    p_sim.add_argument("benchmark", choices=suite_names())
    p_sim.add_argument("config", help="baseline | stt-baseline | C1 | C2 | C3")
    p_sim.add_argument("--trace-length", type=int, default=DEFAULT_TRACE_LENGTH)
    p_sim.add_argument("--seed", type=int, default=0)
    from repro.engine import ENGINES

    p_sim.add_argument("--engine", choices=ENGINES, default=None,
                       help="replay engine (default: soa where supported, "
                            "object otherwise; see docs/engine.md)")
    p_sim.add_argument("--shards", type=int, default=None, metavar="N",
                       help="bank shards for --engine sharded (power of "
                            "two, <= L2 banks, default 4; see "
                            "docs/sharding.md)")
    p_sim.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker processes for --engine sharded "
                            "(default: min(shards, cpu count))")
    p_sim.add_argument("--trace", action="store_true",
                       help="collect an execution trace (Chrome/Perfetto JSON)")
    p_sim.add_argument("--trace-sample", type=int, default=1, metavar="N",
                       help="record every Nth timeline event per event name "
                            "(counters stay exact; default 1)")
    p_sim.add_argument("--trace-out", metavar="FILE", default="trace.json",
                       help="trace output path (default trace.json)")
    p_sim.add_argument("--manifest", metavar="FILE", default=None,
                       help="with --trace: also write a telemetry manifest "
                            "embedding the trace summary")
    p_sim.set_defaults(func=_cmd_simulate)

    from repro.faults.campaign import CAMPAIGNS
    from repro.faults.invariants import DEFAULT_CHECK_INTERVAL

    p_inj = sub.add_parser(
        "inject", help="run a fault-injection campaign with invariant checks"
    )
    p_inj.add_argument("campaign", choices=sorted(CAMPAIGNS),
                       help="campaign to run (see docs/faults.md)")
    p_inj.add_argument("--seed", type=int, default=0,
                       help="fault/workload seed; same seed => identical report")
    p_inj.add_argument("--trace-length", type=int, default=None,
                       help="override the campaign's pinned trace length")
    p_inj.add_argument("--check-interval", type=int,
                       default=DEFAULT_CHECK_INTERVAL, metavar="N",
                       help="trace records per invariant-check batch "
                            f"(default {DEFAULT_CHECK_INTERVAL})")
    p_inj.add_argument("--out", metavar="FILE", default=None,
                       help="write the JSON campaign report to FILE")
    p_inj.set_defaults(func=_cmd_inject)

    from repro.oracle.mutants import MUTANTS

    p_diff = sub.add_parser(
        "diff", help="lockstep-diff the optimized L2 against the naive oracle"
    )
    p_diff.add_argument("benchmark", choices=suite_names())
    p_diff.add_argument("--config", default="C1",
                        help="two-part config: C1 | C2 | C3 | oracle-small "
                             "(default C1)")
    p_diff.add_argument("--seed", type=int, default=0,
                        help="workload seed; same seed => identical report")
    p_diff.add_argument("--accesses", type=int, default=4000,
                        help="lockstep access budget (default 4000)")
    p_diff.add_argument("--dt", type=float, default=None, metavar="SECONDS",
                        help="lockstep timestep (default 2e-6, one LR "
                             "refresh-tick of pressure per access)")
    p_diff.add_argument("--shrink", action="store_true",
                        help="on divergence, reduce the input to a 1-minimal "
                             "reproducing access sequence (ddmin)")
    p_diff.add_argument("--mutant", default=None, choices=sorted(MUTANTS),
                        help="run a deliberately broken DUT variant "
                             "(oracle self-test / shrinking demo)")
    p_diff.add_argument("--engine", choices=ENGINES, default="object",
                        help="which production L2 backend to diff against "
                             "the naive reference (default object; "
                             "see docs/engine.md)")
    p_diff.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON divergence report to FILE")
    p_diff.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome/Perfetto trace with the "
                             "oracle.divergence event on the DUT timeline")
    p_diff.set_defaults(func=_cmd_diff)

    from repro.service.pool import POOL_KINDS
    from repro.service.protocol import DEFAULT_PORT
    from repro.service.server import DEFAULT_DRAIN_TIMEOUT_S

    p_srv = sub.add_parser(
        "serve", help="run the simulation service (see docs/service.md)"
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port; 0 binds an ephemeral port and "
                            f"announces it (default {DEFAULT_PORT})")
    p_srv.add_argument("--store-dir", metavar="DIR", default=None,
                       help="shared result store directory (default: a "
                            "temporary directory, discarded on exit); "
                            "share one DIR with --cache-dir batteries to "
                            "share their key space")
    p_srv.add_argument("--max-entries", type=int, default=None, metavar="N",
                       help="LRU-evict the store beyond N entries "
                            "(default: unbounded)")
    p_srv.add_argument("--max-bytes", type=int, default=None, metavar="N",
                       help="LRU-evict the store beyond N payload bytes "
                            "(default: unbounded)")
    p_srv.add_argument("--pool-shards", type=int, default=2, metavar="N",
                       help="worker pool shards; jobs route by digest "
                            "(default 2)")
    p_srv.add_argument("--pool-kind", choices=POOL_KINDS, default="thread",
                       help="worker kind per shard (default thread; "
                            "process gives true parallelism)")
    p_srv.add_argument("--drain-timeout", type=float,
                       default=DEFAULT_DRAIN_TIMEOUT_S, metavar="SECONDS",
                       help="max seconds a draining shutdown waits for "
                            "in-flight jobs "
                            f"(default {DEFAULT_DRAIN_TIMEOUT_S:g})")
    p_srv.add_argument("--log", metavar="FILE", default=None,
                       help="tee lifecycle log lines to FILE (CI uploads "
                            "this artifact on failure)")
    p_srv.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit one request to a running service"
    )
    p_sub.add_argument("benchmark", nargs="?", default=None,
                       help=f"benchmark to simulate (one of {suite_names()})")
    p_sub.add_argument("config", nargs="?", default=None,
                       help="config to simulate on (see repro-sttgpu configs)")
    p_sub.add_argument("--host", default="127.0.0.1",
                       help="server address (default 127.0.0.1)")
    p_sub.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"server port (default {DEFAULT_PORT})")
    p_sub.add_argument("--experiment", metavar="NAME", default=None,
                       help=f"run a whole experiment: one of {EXPERIMENTS}")
    p_sub.add_argument("--predict", action="store_true",
                       help="ask the server's analytical surrogate instead "
                            "of running the simulation (docs/surrogate.md)")
    p_sub.add_argument("--ping", action="store_true",
                       help="round-trip a ping and exit")
    p_sub.add_argument("--stats", action="store_true",
                       help="print the server stats document as JSON")
    p_sub.add_argument("--shutdown", action="store_true",
                       help="ask the server to drain and exit")
    p_sub.add_argument("--trace-length", type=int, default=None,
                       help=f"accesses to replay (default {DEFAULT_TRACE_LENGTH})")
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.add_argument("--engine", choices=ENGINES, default=None,
                       help="replay engine (default: soa where supported)")
    p_sub.add_argument("--shards", type=int, default=None, metavar="N",
                       help="bank shards for --engine sharded")
    p_sub.add_argument("--timeout", type=float, default=600.0,
                       metavar="SECONDS",
                       help="socket timeout per operation (default 600)")
    p_sub.add_argument("--json", metavar="FILE", default=None,
                       help="also write the full response to FILE as JSON")
    p_sub.set_defaults(func=_cmd_submit)

    p_pred = sub.add_parser(
        "predict", help="instant surrogate estimate (see docs/surrogate.md)"
    )
    p_pred.add_argument("benchmark", choices=suite_names())
    p_pred.add_argument("config", help="baseline | stt-baseline | C1 | C2 | C3")
    p_pred.add_argument("--trace-length", type=int, default=DEFAULT_TRACE_LENGTH)
    p_pred.add_argument("--seed", type=int, default=0)
    p_pred.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-keyed cache for anchor simulations and "
                             "workload features (shared with --cache-dir "
                             "batteries and the service store)")
    p_pred.add_argument("--compare", action="store_true",
                        help="also run the trace-driven engine and print "
                             "per-metric relative errors")
    p_pred.add_argument("--json", metavar="FILE", default=None,
                        help="also write the prediction to FILE as JSON")
    p_pred.set_defaults(func=_cmd_predict)

    p_cfg = sub.add_parser("configs", help="print Table 2")
    p_cfg.set_defaults(func=_cmd_configs)

    p_suite = sub.add_parser("suite", help="list the benchmark suite")
    p_suite.set_defaults(func=_cmd_suite)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
