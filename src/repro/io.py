"""Result serialization: simulation and experiment results to/from JSON.

Downstream pipelines (plotting, regression tracking) want machine-readable
artifacts next to the printed tables; these helpers provide a stable JSON
schema for :class:`~repro.gpu.metrics.SimulationResult` and
:class:`~repro.experiments.common.ExperimentResult`, plus the low-level
JSON primitives (:func:`canonical_json`, :func:`write_json_atomic`,
:func:`load_json`) the telemetry layer builds its run manifests and
content-keyed result cache on.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Union

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.gpu.metrics import SimulationResult

PathLike = Union[str, Path]

#: Schema version stamped into every file this module writes.
SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace).

    Two structurally-equal payloads always produce the same string, which
    makes the output suitable for content hashing (cache keys, config
    fingerprints).
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_json_atomic(payload: Any, path: PathLike, indent: int = 2) -> None:
    """Write JSON via a same-directory temp file + atomic rename.

    Concurrent readers (another runner sharing the result cache) never see
    a half-written file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=indent, sort_keys=True))
    os.replace(tmp, path)


def load_json(path: PathLike) -> Any:
    """Read one JSON document, wrapping failures in :class:`ReproError`."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot load JSON from {path}: {error}") from error


def simulation_result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a simulation result to plain JSON-able types.

    ``bank_stats`` is observability-only and deliberately excluded: the
    canonical dict feeds result digests (BENCH_replay.json, the parity
    gates), and per-bank counters must not perturb digests pinned before
    per-bank accounting existed — nor differ between engines that do and
    do not populate them.
    """
    payload = dataclasses.asdict(result)
    payload.pop("bank_stats", None)
    payload["l2_total_power_w"] = result.l2_total_power_w
    return payload


def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten an experiment result (headers/rows/extras)."""
    return {
        "name": result.name,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "extras": dict(result.extras),
    }


def experiment_result_from_dict(payload: Mapping[str, Any]) -> ExperimentResult:
    """Inverse of :func:`experiment_result_to_dict`."""
    try:
        return ExperimentResult(
            name=payload["name"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            extras=dict(payload.get("extras", {})),
        )
    except KeyError as missing:
        raise ReproError(f"experiment payload missing key {missing}") from None


def save_experiments(
    results: Mapping[str, ExperimentResult], path: PathLike
) -> None:
    """Write a battery of experiment results to one JSON file."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "experiments": {
            name: experiment_result_to_dict(result)
            for name, result in results.items()
        },
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_experiments(path: PathLike) -> Dict[str, ExperimentResult]:
    """Read a battery written by :func:`save_experiments`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot load experiments from {path}: {error}") from error
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema version {document.get('schema_version')!r} "
            f"in {path} (expected {SCHEMA_VERSION})"
        )
    return {
        name: experiment_result_from_dict(payload)
        for name, payload in document.get("experiments", {}).items()
    }


def save_simulations(
    results: Iterable[SimulationResult], path: PathLike
) -> None:
    """Write a list of simulation results to one JSON file."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "simulations": [simulation_result_to_dict(r) for r in results],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))
