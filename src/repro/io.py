"""Result serialization: simulation and experiment results to/from JSON.

Downstream pipelines (plotting, regression tracking) want machine-readable
artifacts next to the printed tables; these helpers provide a stable JSON
schema for :class:`~repro.gpu.metrics.SimulationResult` and
:class:`~repro.experiments.common.ExperimentResult`.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Union

from repro.errors import ReproError
from repro.experiments.common import ExperimentResult
from repro.gpu.metrics import SimulationResult

PathLike = Union[str, Path]

#: Schema version stamped into every file this module writes.
SCHEMA_VERSION = 1


def simulation_result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Flatten a simulation result to plain JSON-able types."""
    payload = dataclasses.asdict(result)
    payload["l2_total_power_w"] = result.l2_total_power_w
    return payload


def experiment_result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Flatten an experiment result (headers/rows/extras)."""
    return {
        "name": result.name,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "extras": dict(result.extras),
    }


def experiment_result_from_dict(payload: Mapping[str, Any]) -> ExperimentResult:
    """Inverse of :func:`experiment_result_to_dict`."""
    try:
        return ExperimentResult(
            name=payload["name"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            extras=dict(payload.get("extras", {})),
        )
    except KeyError as missing:
        raise ReproError(f"experiment payload missing key {missing}") from None


def save_experiments(
    results: Mapping[str, ExperimentResult], path: PathLike
) -> None:
    """Write a battery of experiment results to one JSON file."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "experiments": {
            name: experiment_result_to_dict(result)
            for name, result in results.items()
        },
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_experiments(path: PathLike) -> Dict[str, ExperimentResult]:
    """Read a battery written by :func:`save_experiments`."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ReproError(f"cannot load experiments from {path}: {error}") from error
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ReproError(
            f"unsupported schema version {document.get('schema_version')!r} "
            f"in {path} (expected {SCHEMA_VERSION})"
        )
    return {
        name: experiment_result_from_dict(payload)
        for name, payload in document.get("experiments", {}).items()
    }


def save_simulations(
    results: Iterable[SimulationResult], path: PathLike
) -> None:
    """Write a list of simulation results to one JSON file."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "simulations": [simulation_result_to_dict(r) for r in results],
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))
