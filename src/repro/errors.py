"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with a single ``except`` clause while tests can
assert on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or internally inconsistent."""


class GeometryError(ConfigurationError):
    """A cache/array geometry does not factor (size, ways, line size...)."""


class DeviceModelError(ReproError):
    """An STT-RAM device-model parameter is out of its physical domain."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class TraceError(ReproError):
    """A workload trace is malformed."""


class AnalysisError(ReproError):
    """An analysis was asked of data that cannot support it."""


class TracingError(ReproError):
    """The tracing layer was misused or a trace document is malformed."""


class FaultInjectionError(ReproError):
    """A fault-injection plan or campaign is invalid or misused."""


class InvariantViolationError(SimulationError):
    """The invariant checker found inconsistent simulation state."""


class OracleError(ReproError):
    """The differential oracle was misused or a report is malformed."""


class SurrogateError(ReproError):
    """The analytical surrogate was misused or its document is malformed."""


class ServiceError(ReproError):
    """A simulation-service request, response, or document is invalid."""


class ServiceConnectionError(ServiceError):
    """The simulation service is unreachable or dropped the connection."""
