"""Array-level STT-RAM timing/energy roll-up.

Bridges the per-bit cell numbers in :mod:`repro.sttram.cell` to per-access
(line-granularity) figures that the CACTI-like model in
:mod:`repro.areapower` and the simulator consume.  The array adds peripheral
overheads (decoders, sense amplifiers, write drivers, H-tree wires) on top of
the raw cell energies; those overheads are modeled as multiplicative/additive
factors calibrated against published CACTI-for-NVM runs rather than derived
from first principles — the paper itself used a "slightly modified" CACTI 6.5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceModelError
from repro.sttram.retention import RetentionLevel
from repro.units import NS, PJ


@dataclass(frozen=True)
class STTRAMArrayModel:
    """Per-access figures for an STT-RAM data array at one retention level.

    Attributes
    ----------
    level:
        Device operating point (retention level).
    line_size_bytes:
        Access granularity.
    peripheral_read_energy:
        Decoder + sense-amp + wire energy added to each line read (J).
    peripheral_write_energy:
        Decoder + write-driver + wire energy added to each line write (J).
    array_overhead_latency:
        Decoder/wire latency added to each access (s).
    leakage_per_mb:
        Leakage power per MB of array (W); near zero for STT-RAM — only the
        CMOS periphery leaks.
    """

    level: RetentionLevel
    line_size_bytes: int = 256
    peripheral_read_energy: float = 60.0 * PJ
    peripheral_write_energy: float = 80.0 * PJ
    array_overhead_latency: float = 2.0 * NS
    leakage_per_mb: float = 0.018

    def __post_init__(self) -> None:
        if self.line_size_bytes <= 0:
            raise DeviceModelError("line size must be positive")
        if self.peripheral_read_energy < 0 or self.peripheral_write_energy < 0:
            raise DeviceModelError("peripheral energies must be non-negative")
        if self.array_overhead_latency < 0:
            raise DeviceModelError("array overhead latency must be non-negative")
        if self.leakage_per_mb < 0:
            raise DeviceModelError("leakage must be non-negative")

    # --- energy ----------------------------------------------------------

    @property
    def read_energy(self) -> float:
        """Energy (J) per line read, including periphery."""
        return (
            self.level.read_energy_per_line(self.line_size_bytes)
            + self.peripheral_read_energy
        )

    @property
    def write_energy(self) -> float:
        """Energy (J) per line write, including periphery."""
        return (
            self.level.write_energy_per_line(self.line_size_bytes)
            + self.peripheral_write_energy
        )

    # --- latency -----------------------------------------------------------

    @property
    def read_latency(self) -> float:
        """Latency (s) per line read."""
        return self.level.read_latency + self.array_overhead_latency

    @property
    def write_latency(self) -> float:
        """Latency (s) per line write (dominated by the MTJ pulse)."""
        return self.level.write_latency + self.array_overhead_latency

    # --- leakage -----------------------------------------------------------

    def leakage_power(self, capacity_bytes: int) -> float:
        """Array leakage (W) for ``capacity_bytes`` of STT-RAM."""
        if capacity_bytes < 0:
            raise DeviceModelError("capacity must be non-negative")
        return self.leakage_per_mb * capacity_bytes / (1024 * 1024)

    def refresh_energy_per_line(self) -> float:
        """Energy (J) of one buffer-assisted refresh: read + write back."""
        return self.read_energy + self.write_energy
