"""Retention-failure statistics and refresh-interval sizing.

A relaxed-retention MTJ loses its state by thermal activation; the survival
probability of one bit over a time ``t`` is exponential::

    P(bit survives t) = exp(-t / t_retention)

The paper's refresh machinery (retention counters + buffer-assisted refresh)
exists precisely because, once a block's age approaches the retention time,
many bits collapse at once and ECC-style recovery becomes hopeless ("Error
prevention or data recovery ... are not applicable here because of numerous
bit collapses").  These helpers quantify that cliff and size the refresh
interval for a target block failure rate.

Two views of "retention time" coexist in the literature and in this package:

* the **device view** used here — ``t_retention`` is the Arrhenius *mean*
  lifetime ``tau0 * exp(Delta)`` (the convention of Sun MICRO'11 / Jog
  DAC'12, whose Delta ~ 40 for "10 years" matches ``ln(10yr/1ns)``).  Under
  this view, meeting a small per-block failure target requires refreshing
  orders of magnitude before the mean lifetime, which is what
  :func:`max_refresh_interval` computes;
* the **architectural view** used by the cache model
  (:mod:`repro.core.retention_counter`) — the quoted retention is a *safe
  operating window* with the failure margin already built in (i.e. the real
  Delta is somewhat higher than the mean-lifetime convention implies), and
  data is treated as valid until the window expires, lost afterwards.  This
  deterministic abstraction is exactly how the paper's retention counters
  behave.
"""

from __future__ import annotations

import math

from repro.errors import DeviceModelError


def bit_failure_probability(elapsed_s: float, retention_s: float) -> float:
    """Probability that one bit has flipped after ``elapsed_s`` seconds."""
    if retention_s <= 0:
        raise DeviceModelError(f"retention must be positive, got {retention_s}")
    if elapsed_s < 0:
        raise DeviceModelError(f"elapsed time must be non-negative, got {elapsed_s}")
    return 1.0 - math.exp(-elapsed_s / retention_s)


def block_failure_probability(
    elapsed_s: float, retention_s: float, block_bits: int
) -> float:
    """Probability that *any* bit of a ``block_bits``-bit block has flipped."""
    if block_bits <= 0:
        raise DeviceModelError(f"block size must be positive, got {block_bits}")
    p_bit = bit_failure_probability(elapsed_s, retention_s)
    if p_bit >= 1.0:
        return 1.0
    # log-space to stay accurate for tiny p_bit and large blocks
    log_survive = block_bits * math.log1p(-p_bit)
    return 1.0 - math.exp(log_survive)


def max_refresh_interval(
    retention_s: float, block_bits: int, target_block_failure: float = 1e-9
) -> float:
    """Longest refresh interval keeping block failure under the target.

    Solves ``block_failure_probability(t, retention, bits) <= target`` for
    ``t``.  For the tiny targets of interest this is essentially
    ``t = retention * target / bits``, but we invert exactly.
    """
    if not 0.0 < target_block_failure < 1.0:
        raise DeviceModelError(
            f"target failure must be in (0, 1), got {target_block_failure}"
        )
    if block_bits <= 0:
        raise DeviceModelError(f"block size must be positive, got {block_bits}")
    if retention_s <= 0:
        raise DeviceModelError(f"retention must be positive, got {retention_s}")
    # P_block = 1 - (1 - p)^n  =>  p = 1 - (1 - P_block)^(1/n)
    p_bit = 1.0 - (1.0 - target_block_failure) ** (1.0 / block_bits)
    # p = 1 - exp(-t/tau)  =>  t = -tau * ln(1 - p)
    return -retention_s * math.log1p(-p_bit)


def expected_failed_bits(elapsed_s: float, retention_s: float, block_bits: int) -> float:
    """Expected number of collapsed bits in a block after ``elapsed_s``."""
    if block_bits <= 0:
        raise DeviceModelError(f"block size must be positive, got {block_bits}")
    return block_bits * bit_failure_probability(elapsed_s, retention_s)


def sample_lifetime(mean_lifetime_s: float, u: float) -> float:
    """Inverse-CDF sample of one block's survival time (device view).

    Under the exponential survival model above, a block whose cells have
    mean lifetime ``mean_lifetime_s`` survives for ``-mean * ln(1 - u)``
    seconds when ``u`` is a uniform draw in ``[0, 1)``.  The RNG stays with
    the caller (:class:`repro.faults.FaultInjector` owns a seeded stream so
    campaigns are deterministic); this function is the pure math.
    """
    if mean_lifetime_s <= 0:
        raise DeviceModelError(
            f"mean lifetime must be positive, got {mean_lifetime_s}"
        )
    if not 0.0 <= u < 1.0:
        raise DeviceModelError(f"uniform draw must be in [0, 1), got {u}")
    return -mean_lifetime_s * math.log1p(-u)
