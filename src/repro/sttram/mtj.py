"""Magnetic Tunnel Junction (MTJ) physics.

The retention time of an MTJ free layer follows the Neel-Arrhenius law::

    t_retention = tau0 * exp(Delta)

where ``tau0`` is the thermal attempt period (~1 ns) and ``Delta = E/kT`` is
the thermal stability factor.  Inverting gives ``Delta = ln(t/tau0)``: a
10-year cell needs Delta ~ 40, a 40 ms cell ~ 17.5 and a 40 us cell ~ 10.6.

Write switching is modeled in the thermally-activated regime (pulse widths of
a few ns and up), where the required switching current for a pulse of width
``tp`` is::

    Ic(tp) = Ic0 * (1 - ln(tp / tau0) / Delta)

(Smullen et al., HPCA 2011).  Lower Delta therefore admits either a lower
current at fixed pulse width or a shorter pulse at fixed current; the cell
model picks a balanced operating point on that curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceModelError
from repro.units import NS, YEAR

#: Thermal attempt period (seconds). 1 ns is the standard literature value.
DEFAULT_TAU0 = 1.0 * NS

#: Stability factor conventionally quoted for 10-year cell retention.
TEN_YEAR_DELTA = math.log(10 * YEAR / DEFAULT_TAU0)


def stability_for_retention_time(retention_s: float, tau0: float = DEFAULT_TAU0) -> float:
    """Thermal stability factor Delta needed to retain data ``retention_s``.

    ``Delta = ln(t / tau0)``; raises :class:`DeviceModelError` when the
    requested retention is not longer than the attempt period (the model is
    meaningless there).
    """
    if tau0 <= 0:
        raise DeviceModelError(f"tau0 must be positive, got {tau0}")
    if retention_s <= tau0:
        raise DeviceModelError(
            f"retention time {retention_s}s must exceed attempt period {tau0}s"
        )
    return math.log(retention_s / tau0)


def retention_time_for_stability(delta: float, tau0: float = DEFAULT_TAU0) -> float:
    """Retention time (seconds) of a cell with stability factor ``delta``."""
    if tau0 <= 0:
        raise DeviceModelError(f"tau0 must be positive, got {tau0}")
    if delta <= 0:
        raise DeviceModelError(f"stability factor must be positive, got {delta}")
    return tau0 * math.exp(delta)


@dataclass(frozen=True)
class MTJParameters:
    """Junction-level parameters of one MTJ device.

    Attributes
    ----------
    delta:
        Thermal stability factor E/kT.
    ic0:
        Zero-temperature critical switching current (amperes). The default
        (~30 uA) is representative of scaled 40 nm MTJs.
    tau0:
        Thermal attempt period (seconds).
    resistance_parallel:
        Junction resistance in the parallel (logic ``0``) state, ohms.
    tmr:
        Tunnel magneto-resistance ratio; the anti-parallel resistance is
        ``resistance_parallel * (1 + tmr)``.
    """

    delta: float
    ic0: float = 30e-6
    tau0: float = DEFAULT_TAU0
    resistance_parallel: float = 2500.0
    tmr: float = 1.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise DeviceModelError(f"delta must be positive, got {self.delta}")
        if self.ic0 <= 0:
            raise DeviceModelError(f"ic0 must be positive, got {self.ic0}")
        if self.tau0 <= 0:
            raise DeviceModelError(f"tau0 must be positive, got {self.tau0}")
        if self.resistance_parallel <= 0:
            raise DeviceModelError("parallel resistance must be positive")
        if self.tmr <= 0:
            raise DeviceModelError(f"TMR must be positive, got {self.tmr}")

    @classmethod
    def for_retention(cls, retention_s: float, **kwargs: float) -> "MTJParameters":
        """Build parameters for a junction that retains data ``retention_s``."""
        tau0 = float(kwargs.pop("tau0", DEFAULT_TAU0))
        delta = stability_for_retention_time(retention_s, tau0=tau0)
        return cls(delta=delta, tau0=tau0, **kwargs)

    @property
    def retention_time(self) -> float:
        """Nominal retention time (seconds) of this junction."""
        return retention_time_for_stability(self.delta, tau0=self.tau0)

    @property
    def resistance_antiparallel(self) -> float:
        """Junction resistance in the anti-parallel (logic ``1``) state."""
        return self.resistance_parallel * (1.0 + self.tmr)

    def switching_current(self, pulse_width_s: float) -> float:
        """Current (A) needed to switch within a pulse of ``pulse_width_s``.

        Thermally-activated regime: ``Ic(tp) = Ic0 (1 - ln(tp/tau0)/Delta)``.
        Valid for ``tau0 < tp < retention_time``; outside that window the
        formula would go non-positive or ask the junction to self-switch, so
        we raise instead of returning garbage.
        """
        if pulse_width_s <= self.tau0:
            raise DeviceModelError(
                f"pulse width {pulse_width_s}s must exceed tau0 {self.tau0}s "
                "(precessional switching is outside this model)"
            )
        factor = 1.0 - math.log(pulse_width_s / self.tau0) / self.delta
        if factor <= 0:
            raise DeviceModelError(
                f"pulse width {pulse_width_s}s exceeds the thermal switching "
                f"window of a Delta={self.delta:.1f} junction"
            )
        return self.ic0 * factor

    def min_pulse_width(self, current_a: float) -> float:
        """Pulse width (s) needed to switch with drive current ``current_a``.

        Inverse of :meth:`switching_current`. Currents at or above ``ic0``
        switch at the model floor (``tau0`` plus a guard band); currents too
        small to switch within the retention time raise.
        """
        if current_a <= 0:
            raise DeviceModelError(f"current must be positive, got {current_a}")
        if current_a >= self.ic0:
            return self.tau0 * math.e  # floor: one decade above tau0 in log space
        exponent = self.delta * (1.0 - current_a / self.ic0)
        # A useful write must complete well inside the retention window; we
        # require at least an e-fold of margin (exponent <= delta - 1),
        # i.e. currents below ~ic0/delta cannot switch the junction usefully.
        if exponent > self.delta - 1.0:
            raise DeviceModelError(
                f"current {current_a}A cannot switch a Delta={self.delta:.1f} "
                "junction before its own retention expires"
            )
        return self.tau0 * math.exp(exponent)
