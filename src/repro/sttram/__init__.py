"""STT-RAM device substrate.

Models the Magnetic Tunnel Junction (MTJ) physics that the paper exploits:
relaxing the thermal stability factor (Delta) shortens retention time but
also lowers the write current/pulse, trading non-volatility for write
latency/energy (Smullen et al. HPCA'11, Sun et al. MICRO'11 — the paper's
refs [12] and [14]).

Public surface:

* :class:`repro.sttram.mtj.MTJParameters` — junction-level physics.
* :class:`repro.sttram.cell.STTCell` — 1T1J bit cell (write/read energy,
  latency, area).
* :class:`repro.sttram.retention.RetentionLevel` /
  :func:`repro.sttram.retention.retention_catalogue` — the Table 1
  reconstruction (10-year / HR / LR levels).
* :mod:`repro.sttram.failure` — retention-failure statistics and refresh
  interval sizing.
* :class:`repro.sttram.array.STTRAMArrayModel` — array-level roll-up consumed
  by :mod:`repro.areapower`.
"""

from repro.sttram.mtj import (
    MTJParameters,
    retention_time_for_stability,
    stability_for_retention_time,
)
from repro.sttram.cell import STTCell
from repro.sttram.retention import (
    RetentionLevel,
    retention_catalogue,
    HIGH_RETENTION_SECONDS,
    HR_RETENTION_SECONDS,
    LR_RETENTION_SECONDS,
)
from repro.sttram.failure import (
    bit_failure_probability,
    block_failure_probability,
    max_refresh_interval,
)
from repro.sttram.array import STTRAMArrayModel

__all__ = [
    "MTJParameters",
    "retention_time_for_stability",
    "stability_for_retention_time",
    "STTCell",
    "RetentionLevel",
    "retention_catalogue",
    "HIGH_RETENTION_SECONDS",
    "HR_RETENTION_SECONDS",
    "LR_RETENTION_SECONDS",
    "bit_failure_probability",
    "block_failure_probability",
    "max_refresh_interval",
    "STTRAMArrayModel",
]
