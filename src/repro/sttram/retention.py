"""Retention-level catalogue — the reconstruction of the paper's Table 1.

The paper's Table 1 lists, per magnetization stability height (Delta), the
retention time (R.T), write latency (W.L, ns), write energy (W.E, nJ) and the
refreshing scope.  The numeric cells are illegible in the available source
text, so this module *regenerates* them from the device physics in
:mod:`repro.sttram.mtj`/:mod:`repro.sttram.cell`, anchored at the standard
literature operating point (10-year retention: ~10 ns write pulse, ~1 nJ per
256 B line write at 40 nm).  See EXPERIMENTS.md for the anchor discussion.

Three canonical levels mirror the paper's design:

* ``10year`` — conventional non-volatile STT-RAM (the naive STT baseline).
* ``hr``     — the relaxed high-retention part (~40 ms; the paper says a
  "4ms"-scale retention covers >90% of HR rewrites — the OCR is ambiguous
  between 4 ms and 40 ms, we default to 40 ms and parameterize).
* ``lr``     — the low-retention part (~40 us; Fig. 6 shows most LR rewrites
  land within 10 us, so 40 us leaves refresh slack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import DeviceModelError
from repro.sttram.cell import STTCell
from repro.sttram.mtj import MTJParameters
from repro.units import MS, US, YEAR, format_energy, format_time

#: Canonical retention times (seconds).
HIGH_RETENTION_SECONDS = 10 * YEAR
HR_RETENTION_SECONDS = 40 * MS
LR_RETENTION_SECONDS = 40 * US


@dataclass(frozen=True)
class RetentionLevel:
    """One row of the (reconstructed) Table 1.

    Attributes
    ----------
    name:
        Catalogue key (``"10year"``, ``"hr"``, ``"lr"`` or custom).
    retention_time:
        Nominal data retention (seconds).
    cell:
        The 1T1J cell at this operating point.
    needs_refresh:
        Whether architectural refresh is required (anything below years).
    refresh_scope:
        Human-readable description of the refresh mechanism, mirroring the
        paper's "Refreshing" column.
    """

    name: str
    retention_time: float
    cell: STTCell
    needs_refresh: bool
    refresh_scope: str

    @classmethod
    def from_retention_time(
        cls,
        name: str,
        retention_s: float,
        refresh_scope: str = "block",
        **cell_kwargs: float,
    ) -> "RetentionLevel":
        """Derive a full level (Delta, cell operating point) from retention."""
        if retention_s <= 0:
            raise DeviceModelError(f"retention must be positive, got {retention_s}")
        mtj = MTJParameters.for_retention(retention_s)
        cell = STTCell(mtj=mtj, **cell_kwargs)
        needs_refresh = retention_s < 1 * YEAR
        return cls(
            name=name,
            retention_time=retention_s,
            cell=cell,
            needs_refresh=needs_refresh,
            refresh_scope=refresh_scope if needs_refresh else "none",
        )

    @property
    def delta(self) -> float:
        """Thermal stability factor of this level."""
        return self.cell.mtj.delta

    @property
    def write_latency(self) -> float:
        """Cell write latency (s) — the write pulse width."""
        return self.cell.write_pulse_width

    @property
    def read_latency(self) -> float:
        """Cell read latency (s)."""
        return self.cell.read_latency

    def write_energy_per_line(self, line_size_bytes: int) -> float:
        """Energy (J) to write one full cache line at this level."""
        if line_size_bytes <= 0:
            raise DeviceModelError("line size must be positive")
        return self.cell.write_energy_per_bit * line_size_bytes * 8

    def read_energy_per_line(self, line_size_bytes: int) -> float:
        """Energy (J) to read one full cache line at this level."""
        if line_size_bytes <= 0:
            raise DeviceModelError("line size must be positive")
        return self.cell.read_energy_per_bit * line_size_bytes * 8

    def table_row(self, line_size_bytes: int = 256) -> Dict[str, str]:
        """Render this level as a Table 1 row (formatted strings)."""
        return {
            "level": self.name,
            "delta": f"{self.delta:.1f}",
            "retention": format_time(self.retention_time),
            "write_latency": format_time(self.write_latency),
            "write_energy": format_energy(self.write_energy_per_line(line_size_bytes)),
            "refreshing": self.refresh_scope,
        }


def retention_catalogue(
    hr_retention_s: float = HR_RETENTION_SECONDS,
    lr_retention_s: float = LR_RETENTION_SECONDS,
) -> Dict[str, RetentionLevel]:
    """The three canonical levels used throughout the reproduction.

    Parameters let ablations move the HR/LR retention targets while keeping
    the 10-year anchor row fixed.
    """
    if not lr_retention_s < hr_retention_s < HIGH_RETENTION_SECONDS:
        raise DeviceModelError(
            "expected lr < hr < 10-year retention, got "
            f"lr={lr_retention_s}, hr={hr_retention_s}"
        )
    return {
        "10year": RetentionLevel.from_retention_time(
            "10year", HIGH_RETENTION_SECONDS, refresh_scope="none"
        ),
        "hr": RetentionLevel.from_retention_time(
            "hr", hr_retention_s, refresh_scope="invalidate/writeback on expiry"
        ),
        "lr": RetentionLevel.from_retention_time(
            "lr", lr_retention_s, refresh_scope="buffer-assisted block refresh"
        ),
    }


def render_table1(levels: Iterable[RetentionLevel], line_size_bytes: int = 256) -> str:
    """Format retention levels as the paper's Table 1 (ASCII)."""
    rows = [level.table_row(line_size_bytes) for level in levels]
    headers = ["level", "delta", "retention", "write_latency", "write_energy", "refreshing"]
    widths = {h: max(len(h), *(len(r[h]) for r in rows)) for h in headers}
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(row[h].ljust(widths[h]) for h in headers))
    return "\n".join(lines)
