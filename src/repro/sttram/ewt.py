"""Early Write Termination (EWT) — Zhou et al., ICCAD 2009 (paper ref [17]).

An STT-RAM write drives every bit of the line for the full pulse even when
most bits already hold the target value.  EWT compares each cell's current
state against the incoming bit early in the pulse and terminates the write
current for unchanged bits, so write *energy* scales with the fraction of
bits that actually flip (write *latency* is unchanged — the worst-case bit
still needs the full pulse).

The behavioural model carries no data values, so the flip fraction is a
workload-level parameter; ~0.3-0.5 is typical for cache lines in the
literature, with redundancy-heavy workloads far lower.  The related GPU
work the paper cites (Goswami et al., HPCA 2013) applies EWT at a coarser
granularity; the ``granularity_bits`` knob models that: termination
decisions cover groups of bits, so a group writes whenever *any* of its
bits flips.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceModelError


@dataclass(frozen=True)
class EWTModel:
    """Early-write-termination energy model.

    Attributes
    ----------
    flip_fraction:
        Expected fraction of bits whose value changes per line write.
    granularity_bits:
        Bits per termination group (1 = per-bit EWT; larger groups model
        cheaper comparators that save less energy).
    comparison_overhead:
        Energy overhead of the current-state comparison, as a fraction of
        the unterminated write energy.
    """

    flip_fraction: float = 0.35
    granularity_bits: int = 1
    comparison_overhead: float = 0.04

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_fraction <= 1.0:
            raise DeviceModelError("flip fraction must be in [0, 1]")
        if self.granularity_bits < 1:
            raise DeviceModelError("granularity must be at least one bit")
        if self.comparison_overhead < 0:
            raise DeviceModelError("comparison overhead must be non-negative")

    @property
    def group_write_probability(self) -> float:
        """Probability a termination group must be fully written.

        A group writes when any of its ``granularity_bits`` bits flips:
        ``1 - (1 - p)**g``.
        """
        survive = (1.0 - self.flip_fraction) ** self.granularity_bits
        return 1.0 - survive

    @property
    def write_energy_factor(self) -> float:
        """Multiplier on the device write energy (<= 1 + overhead).

        Terminated groups still pay the comparison overhead.
        """
        return min(
            1.0 + self.comparison_overhead,
            self.group_write_probability + self.comparison_overhead,
        )

    def savings(self) -> float:
        """Fraction of device write energy saved."""
        return max(0.0, 1.0 - self.write_energy_factor)
