"""1T1J STT-RAM bit cell model.

A cell is one NMOS access transistor in series with one MTJ.  The model
derives, from the junction physics in :mod:`repro.sttram.mtj`:

* write pulse width and write current at the cell's operating point,
* write energy per bit (``I * V * tp`` plus peripheral overhead),
* read energy and latency (small sense current, short pulse),
* cell area in F^2 (feature-size-squared), the basis of the paper's
  "STT-RAM is ~4x denser than SRAM" claim.

Operating point selection: for a junction with stability ``Delta`` we write
with a pulse width that scales linearly with ``Delta`` relative to the
10-year anchor (10 ns at Delta ~ 40), then take the switching current from
the thermal-activation curve with a safety margin.  This reproduces the
qualitative Table 1 trend of the paper: lower retention -> shorter pulse and
lower current -> quadratically lower write energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceModelError
from repro.sttram.mtj import MTJParameters, TEN_YEAR_DELTA
from repro.units import NS

#: Write pulse width used at the 10-year retention anchor point.
ANCHOR_PULSE_WIDTH = 10.0 * NS

#: Margin applied on top of the critical switching current (write-error-rate
#: guard band).
WRITE_CURRENT_MARGIN = 1.2

#: STT-RAM 1T1J cell area in F^2. SRAM is ~125 F^2, giving the ~4x density
#: advantage the paper quotes.
STT_CELL_AREA_F2 = 31.0
SRAM_CELL_AREA_F2 = 125.0


@dataclass(frozen=True)
class STTCell:
    """One 1T1J STT-RAM bit cell at a given retention operating point.

    Attributes
    ----------
    mtj:
        Junction physics for the chosen retention level.
    supply_voltage:
        Write driver supply (volts).
    read_current:
        Sense current (amperes); must stay well under the switching current
        to avoid read disturbs.
    read_pulse_width:
        Sense duration (seconds).
    """

    mtj: MTJParameters
    supply_voltage: float = 1.1
    read_current: float = 12e-6
    read_pulse_width: float = 1.0 * NS

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0:
            raise DeviceModelError("supply voltage must be positive")
        if self.read_current <= 0:
            raise DeviceModelError("read current must be positive")
        if self.read_pulse_width <= 0:
            raise DeviceModelError("read pulse width must be positive")

    # --- write path ---------------------------------------------------

    @property
    def write_pulse_width(self) -> float:
        """Write pulse width (s), scaled from the 10-year anchor by Delta.

        ``tp = 10 ns * Delta / Delta_10yr``, floored at 2x tau0 so the
        thermal-activation current formula stays in its validity window.
        """
        scaled = ANCHOR_PULSE_WIDTH * self.mtj.delta / TEN_YEAR_DELTA
        return max(scaled, 2.0 * self.mtj.tau0)

    @property
    def write_current(self) -> float:
        """Per-bit write current (A) at the operating pulse width."""
        critical = self.mtj.switching_current(self.write_pulse_width)
        return critical * WRITE_CURRENT_MARGIN

    @property
    def write_energy_per_bit(self) -> float:
        """Energy (J) to write one bit: ``I * V * tp``."""
        return self.write_current * self.supply_voltage * self.write_pulse_width

    # --- read path ------------------------------------------------------

    @property
    def read_energy_per_bit(self) -> float:
        """Energy (J) to sense one bit.

        Uses the average junction resistance to convert the sense current to
        a voltage drop; the sense amp overhead lives in the array model.
        """
        r_avg = 0.5 * (self.mtj.resistance_parallel + self.mtj.resistance_antiparallel)
        v_sense = self.read_current * r_avg
        return self.read_current * v_sense * self.read_pulse_width

    @property
    def read_latency(self) -> float:
        """Cell-level read latency (s); array wires/decoders add more."""
        return self.read_pulse_width

    @property
    def read_disturb_margin(self) -> float:
        """Ratio of switching current at the read pulse to the sense current.

        Values comfortably above 1 mean reads will not flip the cell.
        """
        pulse = max(self.read_pulse_width, 2.0 * self.mtj.tau0)
        try:
            critical = self.mtj.switching_current(pulse)
        except DeviceModelError:
            return math.inf
        return critical / self.read_current

    # --- geometry ---------------------------------------------------------

    @staticmethod
    def area(feature_size_m: float) -> float:
        """Cell area (m^2) at technology feature size ``feature_size_m``."""
        if feature_size_m <= 0:
            raise DeviceModelError("feature size must be positive")
        return STT_CELL_AREA_F2 * feature_size_m * feature_size_m

    @staticmethod
    def density_advantage_over_sram() -> float:
        """Area ratio SRAM cell / STT cell (~4x, as the paper assumes)."""
        return SRAM_CELL_AREA_F2 / STT_CELL_AREA_F2
