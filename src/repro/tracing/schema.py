"""Trace-document schema: what a valid emitted trace JSON must contain.

A trace written by :meth:`repro.tracing.collector.TraceCollector.write` is
a Chrome Trace Event Format *JSON object* document:

``schema_version`` ``TRACE_SCHEMA_VERSION`` (in ``otherData``)::

    {
      "traceEvents": [ {name, ph, ts?, pid, tid, args?, s?}, ... ],
      "displayTimeUnit": "ms",
      "otherData": {
        "schema_version": 1,
        "sample_every": N, "events": N, "dropped_events": N,
        "counters":   {"l2.migrations_to_lr": 123, ...},
        "histograms": {"l2.service_latency_s": {unit, count, sum, min,
                                                max, mean, buckets}, ...},
        "metadata":   {...}
      }
    }

Event phases used: ``"M"`` (metadata: process/thread names), ``"i"``
(sampled instant events) and ``"C"`` (counter-track samples).  CI and the
tests validate every emitted trace against this schema via
:func:`validate_trace`; :func:`trace_issues` returns the individual
violations for diagnostics.  The counter/histogram/event name registry
itself (which names exist and what they mean) lives in ``docs/metrics.md``.
"""

from __future__ import annotations

from numbers import Number
from typing import Any, List, Mapping

from repro.errors import TracingError

#: Version stamped into ``otherData.schema_version``; bump on breaking change.
TRACE_SCHEMA_VERSION = 1

#: Event phases the collector emits.
_VALID_PHASES = ("M", "i", "C")

_EVENT_REQUIRED = ("name", "ph", "pid", "tid")


def _issues_for_event(i: int, event: Any) -> List[str]:
    issues: List[str] = []
    if not isinstance(event, Mapping):
        return [f"traceEvents[{i}]: not an object"]
    for key in _EVENT_REQUIRED:
        if key not in event:
            issues.append(f"traceEvents[{i}]: missing {key!r}")
    if not isinstance(event.get("name"), str):
        issues.append(f"traceEvents[{i}]: name must be a string")
    phase = event.get("ph")
    if phase not in _VALID_PHASES:
        issues.append(
            f"traceEvents[{i}]: phase {phase!r} not in {_VALID_PHASES}"
        )
    if phase != "M":
        ts = event.get("ts")
        if not isinstance(ts, Number) or isinstance(ts, bool) or ts < 0:
            issues.append(
                f"traceEvents[{i}]: ts must be a non-negative number, "
                f"got {ts!r}"
            )
    if phase == "C":
        args = event.get("args")
        if not (isinstance(args, Mapping) and "value" in args):
            issues.append(
                f"traceEvents[{i}]: counter event needs args.value"
            )
    for key in ("pid", "tid"):
        if key in event and not isinstance(event[key], int):
            issues.append(f"traceEvents[{i}]: {key} must be an integer")
    return issues


def _issues_for_histogram(name: str, hist: Any) -> List[str]:
    issues: List[str] = []
    if not isinstance(hist, Mapping):
        return [f"histograms[{name!r}]: not an object"]
    for key in ("unit", "count", "sum", "buckets"):
        if key not in hist:
            issues.append(f"histograms[{name!r}]: missing {key!r}")
    buckets = hist.get("buckets")
    if not isinstance(buckets, Mapping):
        issues.append(f"histograms[{name!r}]: buckets must be an object")
    elif isinstance(hist.get("count"), int):
        total = sum(v for v in buckets.values() if isinstance(v, int))
        if total != hist["count"]:
            issues.append(
                f"histograms[{name!r}]: bucket counts sum to {total}, "
                f"count says {hist['count']}"
            )
    return issues


def trace_issues(document: Any) -> List[str]:
    """Every schema violation in ``document`` (empty list when valid)."""
    if not isinstance(document, Mapping):
        return ["trace document is not a JSON object"]
    issues: List[str] = []

    events = document.get("traceEvents")
    if not isinstance(events, list):
        issues.append("traceEvents missing or not a list")
        events = []
    for i, event in enumerate(events):
        issues.extend(_issues_for_event(i, event))

    other = document.get("otherData")
    if not isinstance(other, Mapping):
        issues.append("otherData missing or not an object")
        return issues
    if other.get("schema_version") != TRACE_SCHEMA_VERSION:
        issues.append(
            f"otherData.schema_version is {other.get('schema_version')!r}, "
            f"expected {TRACE_SCHEMA_VERSION}"
        )
    counters = other.get("counters")
    if not isinstance(counters, Mapping):
        issues.append("otherData.counters missing or not an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, Number) or isinstance(value, bool):
                issues.append(f"counters[{name!r}]: value {value!r} not numeric")
    histograms = other.get("histograms")
    if not isinstance(histograms, Mapping):
        issues.append("otherData.histograms missing or not an object")
    else:
        for name, hist in histograms.items():
            issues.extend(_issues_for_histogram(name, hist))
    return issues


def validate_trace(document: Any) -> None:
    """Raise :class:`~repro.errors.TracingError` unless ``document`` is valid.

    Used by the tests and the CI trace-smoke job on every emitted trace.
    """
    issues = trace_issues(document)
    if issues:
        raise TracingError(
            "invalid trace document:\n  " + "\n  ".join(issues)
        )
