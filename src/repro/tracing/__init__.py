"""In-simulator observability: structured event tracing and counters.

``repro.tracing`` is the low-overhead instrumentation layer the simulator
hot paths report into.  A :class:`~repro.tracing.collector.TraceCollector`
accumulates three kinds of signal:

* **named counters** — monotonically increasing integers/floats keyed by a
  dotted name (``l2.migrations_to_lr``, ``dram.writebacks`` ...);
* **bucketed histograms** — power-of-two latency/value distributions
  (``l2.service_latency_s`` ...);
* **timestamped events** — sampled instant events and counter tracks in
  the Chrome ``chrome://tracing`` / Perfetto JSON format, so a run can be
  opened and scrubbed interactively in https://ui.perfetto.dev.

When tracing is disabled the instrumented code paths talk to the
:data:`~repro.tracing.collector.NULL_TRACER` singleton — a
:class:`~repro.tracing.collector.NullTraceCollector` whose methods are
no-ops and whose ``enabled`` flag lets multi-call instrumentation blocks
be skipped with a single attribute check — so simulation results stay
byte-identical and the overhead is not measurable in the tier-1 battery.

Every counter, histogram, and event name is documented in
``docs/metrics.md``, mapped to the paper figure/claim it supports.
"""

from repro.tracing.collector import (
    NULL_TRACER,
    Histogram,
    NullTraceCollector,
    TraceCollector,
)
from repro.tracing.schema import (
    TRACE_SCHEMA_VERSION,
    trace_issues,
    validate_trace,
)

__all__ = [
    "NULL_TRACER",
    "Histogram",
    "NullTraceCollector",
    "TraceCollector",
    "TRACE_SCHEMA_VERSION",
    "trace_issues",
    "validate_trace",
]
