"""The trace collector: counters, histograms, and sampled timeline events.

Design constraints (in priority order):

1. **Zero cost when off** — instrumented hot paths hold a reference to
   :data:`NULL_TRACER` and guard multi-call blocks with ``tracer.enabled``,
   so a disabled run performs one attribute load per instrumentation site
   and allocates nothing.  Tracing never mutates simulation state, so
   results are byte-identical with tracing on or off.
2. **Bounded when on** — counters and histograms are O(distinct names);
   the event list is capped (``max_events``) and per-name sampled
   (``sample_every``), so a long run cannot exhaust memory.  Dropped
   events are counted, never silently discarded.
3. **Standard output format** — :meth:`TraceCollector.to_chrome_trace`
   renders the Chrome Trace Event JSON object format (``traceEvents`` +
   ``otherData``), which https://ui.perfetto.dev and ``chrome://tracing``
   load directly; the flat counters/histograms ride along in ``otherData``
   and can be merged into a run-telemetry manifest
   (:meth:`repro.telemetry.RunTelemetry.attach_trace`).

This module deliberately imports only :mod:`repro.errors` at load time so
any layer of the simulator (cache arrays, core, gpu) can depend on it
without import cycles.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import TracingError

PathLike = Union[str, Path]

#: Default cap on recorded timeline events (counters are never capped).
DEFAULT_MAX_EVENTS = 100_000


class Histogram:
    """A power-of-two bucketed value distribution.

    Values are scaled by ``1 / unit`` (default unit ``1e-9``: a latency in
    seconds lands in nanosecond buckets) and counted in the bucket whose
    upper bound is the smallest power of two above the scaled value.
    Alongside the buckets the exact ``count`` / ``total`` / ``min`` /
    ``max`` are kept, so means are not subject to bucketing error.
    """

    __slots__ = ("unit", "count", "total", "min", "max", "buckets")

    def __init__(self, unit: float = 1e-9) -> None:
        if unit <= 0:
            raise TracingError(f"histogram unit must be positive, got {unit!r}")
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: bucket exponent -> count; bucket ``e`` holds scaled values in
        #: ``(2**(e-1), 2**e]`` (``e = 0`` holds everything <= 1 unit)
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one value (in the histogram's native unit, e.g. seconds)."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        scaled = value / self.unit
        if scaled > 1:
            # smallest e with 2**e >= scaled; frexp is exact for floats
            # where int(...-1).bit_length() truncates fractional values
            mantissa, exponent = math.frexp(scaled)
            if mantissa == 0.5:
                exponent -= 1
        else:
            exponent = 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        """Exact mean of all observed values (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``0 < q <= 100``) in native units.

        The estimate is the upper bound of the power-of-two bucket holding
        the ``q``-th observation, clamped to the exact observed ``min`` /
        ``max`` — a conservative (never-understated) figure suitable for
        latency gates; exact to bucket resolution (a factor of two).
        Returns ``0.0`` for an empty histogram.
        """
        if not 0 < q <= 100:
            raise TracingError(f"percentile must be in (0, 100], got {q!r}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = 0
        for exponent in sorted(self.buckets):
            seen += self.buckets[exponent]
            if seen >= rank:
                upper = float(1 << exponent) * self.unit
                assert self.min is not None and self.max is not None
                return min(max(upper, self.min), self.max)
        return self.max if self.max is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering; bucket keys are upper bounds in units."""
        return {
            "unit": self.unit,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                str(1 << e): self.buckets[e] for e in sorted(self.buckets)
            },
        }


class TraceCollector:
    """Accumulates counters, histograms, and sampled timeline events.

    Parameters
    ----------
    sample_every:
        Keep one timeline event (or counter-track sample) out of every
        ``sample_every`` emitted *per event name*.  Counters and histograms
        are never sampled — they always see every occurrence, which is what
        makes trace counters reconcile exactly with
        :class:`~repro.gpu.metrics.SimulationResult` fields.
    max_events:
        Hard cap on stored timeline events; further events increment
        ``dropped_events`` instead of growing the list.
    """

    #: Instrumented code guards multi-call blocks with this flag.
    enabled = True

    def __init__(
        self,
        sample_every: int = 1,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> None:
        if sample_every < 1:
            raise TracingError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if max_events < 0:
            raise TracingError(f"max_events must be >= 0, got {max_events}")
        self.sample_every = sample_every
        self.max_events = max_events
        self.dropped_events = 0
        #: free-form run context (workload/config names, clock notes ...)
        self.metadata: Dict[str, Any] = {}
        self._counters: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._events: List[Dict[str, Any]] = []
        self._seen: Dict[str, int] = {}
        self._tids: Dict[str, int] = {}

    # --- counters / histograms (never sampled) -------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Increment the named counter by ``n`` (default 1)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def set_counter(self, name: str, value: float) -> None:
        """Set the named counter to an absolute value (end-of-run fold-in)."""
        self._counters[name] = value

    def observe(self, name: str, value: float, unit: float = 1e-9) -> None:
        """Add one value to the named histogram (created on first use)."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(unit=unit)
        hist.observe(value)

    # --- timeline events (sampled, capped) -----------------------------

    def _tid(self, component: str) -> int:
        tid = self._tids.get(component)
        if tid is None:
            tid = self._tids[component] = len(self._tids)
        return tid

    def _admit(self, name: str) -> bool:
        seen = self._seen.get(name, 0)
        self._seen[name] = seen + 1
        if seen % self.sample_every:
            return False
        if len(self._events) >= self.max_events:
            self.dropped_events += 1
            return False
        return True

    def event(
        self, name: str, now_s: float, component: str = "sim", **args: Any
    ) -> None:
        """Record a sampled instant event at simulated time ``now_s``.

        ``component`` selects the Perfetto track (rendered as a thread);
        keyword ``args`` become the event's inspectable arguments.
        """
        if not self._admit(name):
            return
        self._events.append({
            "name": name,
            "ph": "i",
            "s": "t",
            "ts": now_s * 1e6,  # Chrome trace timestamps are microseconds
            "pid": 0,
            "tid": self._tid(component),
            "args": args,
        })

    def sample(
        self, name: str, now_s: float, value: float, component: str = "sim"
    ) -> None:
        """Record a sampled point on a Chrome counter track (``ph: "C"``).

        Used for time series like migration-buffer occupancy; Perfetto
        renders these as stacked area charts.
        """
        if not self._admit(name):
            return
        self._events.append({
            "name": name,
            "ph": "C",
            "ts": now_s * 1e6,
            "pid": 0,
            "tid": self._tid(component),
            "args": {"value": value},
        })

    # --- export --------------------------------------------------------

    def counters_dict(self) -> Dict[str, float]:
        """Flat name -> value snapshot of every counter."""
        return dict(self._counters)

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """Snapshot of the counters whose name starts with ``prefix``.

        Campaign reports use this to embed one subsystem's counters (for
        example every ``faults.*`` counter) without dragging the full
        counter namespace into the JSON payload.
        """
        return {
            name: value
            for name, value in self._counters.items()
            if name.startswith(prefix)
        }

    def histogram(self, name: str) -> Optional[Histogram]:
        """The live :class:`Histogram` under ``name`` (``None`` if unseen).

        Lets callers (the simulation service's stats endpoint) compute
        percentiles without re-parsing the exported dict form.
        """
        return self._histograms.get(name)

    def histograms_dict(self) -> Dict[str, Dict[str, Any]]:
        """Flat name -> :meth:`Histogram.to_dict` snapshot."""
        return {name: h.to_dict() for name, h in self._histograms.items()}

    @property
    def num_events(self) -> int:
        """Number of timeline events currently stored."""
        return len(self._events)

    def summary(self) -> Dict[str, Any]:
        """The compact roll-up merged into telemetry manifests."""
        from repro.tracing.schema import TRACE_SCHEMA_VERSION

        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "sample_every": self.sample_every,
            "events": self.num_events,
            "dropped_events": self.dropped_events,
            "counters": self.counters_dict(),
            "histograms": self.histograms_dict(),
            "metadata": dict(self.metadata),
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Render the Chrome Trace Event Format JSON object.

        ``traceEvents`` opens directly in Perfetto / ``chrome://tracing``;
        ``otherData`` carries the schema version plus the full counter and
        histogram snapshot (:meth:`summary`), so one file is both the
        interactive timeline and the machine-readable metrics record.
        """
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro-sttgpu"},
            }
        ]
        for component, tid in self._tids.items():
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": component},
            })
        events.extend(sorted(self._events, key=lambda e: e["ts"]))
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": self.summary(),
        }

    def write(self, path: PathLike) -> Path:
        """Write the Chrome trace JSON to ``path`` atomically; returns it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(self.to_chrome_trace(), indent=2))
        os.replace(tmp, path)
        return path


class NullTraceCollector(TraceCollector):
    """The disabled collector: every recording method is a no-op.

    Hot paths hold this object by default, so instrumentation costs one
    attribute load (``tracer.enabled``) per guarded block and nothing is
    ever allocated.  Exporting a null trace is a programming error and
    raises :class:`~repro.errors.TracingError`.
    """

    enabled = False

    def count(self, name: str, n: float = 1) -> None:
        """No-op."""

    def set_counter(self, name: str, value: float) -> None:
        """No-op."""

    def observe(self, name: str, value: float, unit: float = 1e-9) -> None:
        """No-op."""

    def event(
        self, name: str, now_s: float, component: str = "sim", **args: Any
    ) -> None:
        """No-op."""

    def sample(
        self, name: str, now_s: float, value: float, component: str = "sim"
    ) -> None:
        """No-op."""

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Raise: a disabled collector has nothing to export."""
        raise TracingError("tracing is disabled; no trace to export")

    def write(self, path: PathLike) -> Path:
        """Raise: a disabled collector has nothing to export."""
        raise TracingError("tracing is disabled; no trace to export")


#: Shared no-op collector instrumented components default to.
NULL_TRACER = NullTraceCollector()
