"""A blocking client for the simulation service (CLI, bench, tests).

:class:`ServiceClient` wraps one TCP connection speaking the
newline-delimited JSON protocol of :mod:`repro.service.protocol`.  It is
deliberately synchronous — the CLI, the load-test harness (which wants
one thread per connection measuring real end-to-end latency) and test
code all prefer plain blocking calls; concurrency lives server-side.

Transport failures (refused connection, timeout, server gone away) raise
:class:`~repro.errors.ServiceConnectionError` with a one-line message —
which the CLI maps to exit 2, matching the unknown-experiment
convention.  Application failures (the server answered ``ok: false``)
raise plain :class:`~repro.errors.ServiceError` from the convenience
methods, or can be inspected via :meth:`ServiceClient.request`.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServiceConnectionError, ServiceError
from repro.service import protocol

#: Default per-operation socket timeout, generous enough for an uncached
#: million-access simulation.
DEFAULT_TIMEOUT_S = 600.0


class ServiceClient:
    """One blocking connection to a :class:`~repro.service.SimulationServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        """Connect immediately; raises ``ServiceConnectionError`` on failure."""
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_s)
        except OSError as error:
            raise ServiceConnectionError(
                f"cannot connect to {host}:{port}: {error}"
            ) from error
        self._file = self._sock.makefile("rwb")

    def request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one request object; returns the raw response object.

        Raises :class:`~repro.errors.ServiceConnectionError` on transport
        failure; an ``ok: false`` response is returned, not raised.
        """
        try:
            self._file.write(protocol.encode_message(message))
            self._file.flush()
            raw = self._file.readline()
        except (OSError, ValueError) as error:
            raise ServiceConnectionError(
                f"lost connection to {self.host}:{self.port}: {error}"
            ) from error
        return protocol.read_response(raw)

    def _checked(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        response = self.request(message)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def ping(self) -> Dict[str, Any]:
        """Round-trip a ping; returns the pong response."""
        return self._checked({"kind": "ping"})

    def stats(self) -> Dict[str, Any]:
        """The server's stats document (counters, cache, latency, pool)."""
        return self._checked({"kind": "stats"})["stats"]

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain and exit; returns its acknowledgement."""
        return self._checked({"kind": "shutdown"})

    def simulate(
        self,
        benchmark: str,
        config: str,
        trace_length: Optional[int] = None,
        seed: int = 0,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit one simulation; returns the full ok-response.

        The response's ``payload`` is byte-identical (as canonical JSON)
        to ``repro.simulate()`` for the same normalized parameters;
        ``cache`` reports provenance (``hit`` / ``miss`` / ``coalesced``)
        and ``digest`` the coalescing key.
        """
        request: Dict[str, Any] = {
            "kind": "simulate",
            "benchmark": benchmark,
            "config": config,
            "seed": seed,
        }
        if trace_length is not None:
            request["trace_length"] = trace_length
        if engine is not None:
            request["engine"] = engine
        if shards is not None:
            request["shards"] = shards
        return self._checked(request)

    def predict(
        self,
        benchmark: str,
        config: str,
        trace_length: Optional[int] = None,
        seed: int = 0,
    ) -> Dict[str, Any]:
        """Ask the server's analytical surrogate for an instant estimate.

        The response's ``payload`` carries the predicted IPC, hit rates
        and L2 energy (see :mod:`repro.surrogate`); the worker pool is
        never involved, so a warm prediction answers in microseconds.
        """
        request: Dict[str, Any] = {
            "kind": "predict",
            "benchmark": benchmark,
            "config": config,
            "seed": seed,
        }
        if trace_length is not None:
            request["trace_length"] = trace_length
        return self._checked(request)

    def experiment(
        self,
        experiment: str,
        trace_length: Optional[int] = None,
        seed: int = 0,
        benchmarks: Optional[list] = None,
    ) -> Dict[str, Any]:
        """Submit one experiment; returns the full ok-response."""
        request: Dict[str, Any] = {
            "kind": "experiment",
            "experiment": experiment,
            "seed": seed,
        }
        if trace_length is not None:
            request["trace_length"] = trace_length
        if benchmarks is not None:
            request["benchmarks"] = list(benchmarks)
        return self._checked(request)

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        """Context-manager entry: the already-open client."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()
