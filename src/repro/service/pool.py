"""The service's sharded worker pool and its picklable compute functions.

The pool generalizes the one-shot batch fan-out of
:func:`repro.experiments.parallel.fan_out` to a *long-running* service:
instead of spinning a pool up per battery, :class:`ShardedWorkerPool`
keeps ``shards`` single-worker executors alive and routes each job to the
executor selected by its content digest (``int(digest[:8], 16) % shards``).
Digest routing gives the same two properties the batch path gets from
submission-order collection:

* **Determinism** — a job's worker is a pure function of its digest, not
  of arrival order or load.
* **Per-digest serialization** — duplicates of one digest can never run
  on two workers at once even if coalescing is bypassed.

Worker kinds: ``"process"`` shards are single-worker
``ProcessPoolExecutor`` instances (true parallelism, the serve default);
``"thread"`` shards are single-worker threads — no pickling, shared
memory, ideal for tests and single-CPU hosts, and still enough
concurrency for request coalescing to be observable because the
interpreter's preemptive thread switching keeps the event loop
responsive while a worker thread replays.

The compute functions mirror the ``JobSpec``/compute contract of
:mod:`repro.experiments.parallel`: module-level, picklable, plain-dict
in / JSON-safe dict out, so the same function runs inline, on a thread,
or in a worker process — and the results are byte-identical either way.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ServiceError

#: Worker kinds (executor flavors) the pool can shard over.
POOL_KINDS = ("thread", "process")


def compute_simulate(request: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one normalized ``simulate`` request to its JSON-safe payload.

    The payload is exactly
    :func:`repro.io.simulation_result_to_dict` of
    ``repro.simulate(config, workload, engine=...)`` for the workload
    built as ``build_workload(benchmark, num_accesses=trace_length,
    num_sms=config.num_sms, seed=seed)`` — the byte-identity contract the
    service-smoke CI job asserts (docs/service.md).
    """
    from repro.config import all_configs
    from repro.engine import make_simulator
    from repro.io import simulation_result_to_dict
    from repro.workloads.suite import build_workload

    config = all_configs()[request["config"]]
    workload = build_workload(
        request["benchmark"],
        num_accesses=request["trace_length"],
        num_sms=config.num_sms,
        seed=request["seed"],
    )
    kwargs: Dict[str, Any] = {}
    if request["engine"] == "sharded":
        kwargs["shards"] = request["shards"]
    simulator = make_simulator(
        config, workload, engine=request["engine"], **kwargs
    )
    return simulation_result_to_dict(simulator.run())


def compute_experiment_job(spec_fields: Tuple) -> Dict[str, Any]:
    """Run one experiment :class:`~repro.experiments.parallel.JobSpec`.

    ``spec_fields`` is the spec as a plain tuple (picklable across any
    executor); execution goes through the same
    :func:`repro.experiments.parallel.execute_job` the battery uses, so a
    payload computed by the service merges byte-identically into a
    battery result and vice versa.
    """
    from repro.experiments.parallel import JobSpec, execute_job

    return execute_job(JobSpec(*spec_fields))


class ShardedWorkerPool:
    """``shards`` long-lived single-worker executors, routed by digest."""

    def __init__(self, shards: int = 2, kind: str = "thread") -> None:
        """Create the pool: ``shards`` executors of ``kind`` workers."""
        if shards < 1:
            raise ServiceError(f"pool shards must be >= 1, got {shards}")
        if kind not in POOL_KINDS:
            raise ServiceError(
                f"unknown pool kind {kind!r}; choose from {POOL_KINDS}"
            )
        self.shards = shards
        self.kind = kind
        self._executors: List[Executor] = []
        for _ in range(shards):
            if kind == "process":
                self._executors.append(ProcessPoolExecutor(max_workers=1))
            else:
                self._executors.append(ThreadPoolExecutor(max_workers=1))

    def shard_for(self, digest: str) -> int:
        """The shard index a digest routes to (pure function of digest)."""
        return int(digest[:8], 16) % self.shards

    async def run(self, digest: str, fn, arg) -> Any:
        """Execute ``fn(arg)`` on the digest's shard; awaitable result."""
        loop = asyncio.get_running_loop()
        executor = self._executors[self.shard_for(digest)]
        return await loop.run_in_executor(executor, fn, arg)

    def shutdown(self, wait: bool = True) -> None:
        """Shut every shard executor down (idempotent)."""
        for executor in self._executors:
            executor.shutdown(wait=wait)

    def describe(self) -> Dict[str, Any]:
        """JSON-safe pool topology for stats responses."""
        return {"shards": self.shards, "kind": self.kind}
