"""Simulation-as-a-service: an async JSON-over-TCP front end for repro.

The package turns the one-shot ``repro.simulate()`` /
``run_battery()`` entry points into a long-running server with a shared
result store and request coalescing:

* :mod:`repro.service.protocol` — newline-delimited JSON framing,
  request validation against :mod:`repro.config`, and the canonical
  content digest every other layer keys on;
* :mod:`repro.service.store` — :class:`SharedResultStore`, the
  concurrency-safe promotion of :class:`repro.telemetry.ResultCache`
  with LRU/size eviction and hit/miss/eviction counters;
* :mod:`repro.service.dedup` — :class:`InflightTable`, which coalesces
  identical concurrent requests onto one running job;
* :mod:`repro.service.pool` — :class:`ShardedWorkerPool`, long-lived
  digest-routed single-worker executors;
* :mod:`repro.service.server` — :class:`SimulationServer` (the asyncio
  server) and :class:`ServerThread` (run it inside a test or bench
  process);
* :mod:`repro.service.client` — :class:`ServiceClient`, the blocking
  client the CLI and load harness use;
* :mod:`repro.service.bench` — the load-test harness behind
  ``scripts/bench_service.py`` and the ``load-smoke`` CI gate.

Results are byte-identical to the direct library calls for the same
normalized parameters; see docs/service.md for the protocol, dedup
semantics, eviction policy, and gate policy.
"""

from repro.service.client import ServiceClient
from repro.service.dedup import InflightTable
from repro.service.pool import POOL_KINDS, ShardedWorkerPool
from repro.service.protocol import (
    DEFAULT_PORT,
    PROTOCOL_VERSION,
    REQUEST_KINDS,
    request_digest,
    validate_request,
)
from repro.service.server import ServerThread, SimulationServer
from repro.service.store import SharedResultStore

__all__ = [
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "POOL_KINDS",
    "REQUEST_KINDS",
    "InflightTable",
    "ServerThread",
    "ServiceClient",
    "ShardedWorkerPool",
    "SharedResultStore",
    "SimulationServer",
    "request_digest",
    "validate_request",
]
