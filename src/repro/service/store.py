"""The shared result store: the telemetry cache promoted to a service tier.

:class:`SharedResultStore` extends :class:`repro.telemetry.ResultCache`
(same on-disk layout, same key space — battery runs with ``--cache-dir``
and the service can share one directory) with the properties a
long-running, multi-client service needs:

* **Bounded size** — optional ``max_entries`` / ``max_bytes`` budgets
  enforced by LRU eviction: every ``get`` refreshes the entry's file
  mtime, so the recency order is *persisted* and a store reopened after a
  restart evicts in the same order a continuously running one would.
* **Concurrency safety** — one writer lock serializes every mutation (the
  server additionally routes all writes through its single event-loop
  task), and all file writes are atomic rename publishes, so concurrent
  writers — even across processes sharing the directory — can interleave
  arbitrarily without a reader ever observing a torn entry.
* **Recovery, not crashes** — a truncated or corrupt entry reads as a
  miss, is deleted, and is recomputed; accounting is rebuilt by scanning
  the directory, so external deletions or writes are absorbed.
* **Observability** — hit/miss/eviction/corruption counters are kept on
  the store *and* threaded through :mod:`repro.tracing`
  (``service.store.hits`` et al., documented in docs/metrics.md).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.errors import ServiceError
from repro.telemetry import PathLike, ResultCache
from repro.tracing import NULL_TRACER


class SharedResultStore(ResultCache):
    """A size-bounded, lock-protected, counter-instrumented result cache.

    Drop-in compatible with :class:`~repro.telemetry.ResultCache` (it can
    be passed to :func:`repro.experiments.parallel.run_battery` via the
    ``cache`` parameter), plus LRU/size eviction and counters.  See the
    module docstring and docs/service.md for the policy.
    """

    def __init__(
        self,
        root: PathLike,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        tracer=NULL_TRACER,
    ) -> None:
        """Open (creating if needed) the store rooted at ``root``.

        ``max_entries`` / ``max_bytes`` are eviction budgets (``None`` =
        unbounded); ``tracer`` receives the ``service.store.*`` counters.
        """
        if max_entries is not None and max_entries < 1:
            raise ServiceError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise ServiceError(
                f"max_bytes must be >= 1 or None, got {max_bytes}"
            )
        super().__init__(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.tracer = tracer
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        self._lock = threading.RLock()
        #: key -> file size, least-recently-used first.
        self._lru: "OrderedDict[str, int]" = OrderedDict()
        self._total_bytes = 0
        self.refresh()

    # --- accounting ----------------------------------------------------

    def refresh(self) -> None:
        """Rebuild the LRU index and size accounting from the directory.

        Entries are ordered by persisted mtime (oldest first), so a
        reopened store evicts in the same order as the store that wrote
        the entries.  Called at construction; call again to absorb
        external writes or deletions.
        """
        with self._lock:
            self._lru = OrderedDict(
                (path.stem, path.stat().st_size) for path in self.entries()
            )
            self._total_bytes = sum(self._lru.values())

    @property
    def entry_count(self) -> int:
        """Number of entries currently accounted for."""
        with self._lock:
            return len(self._lru)

    @property
    def total_bytes(self) -> int:
        """Sum of the accounted entry file sizes in bytes."""
        with self._lock:
            return self._total_bytes

    def counters(self) -> Dict[str, Any]:
        """JSON-safe snapshot of accounting and hit/miss/eviction counters."""
        with self._lock:
            return {
                "entries": len(self._lru),
                "bytes": self._total_bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "corrupt_dropped": self.corrupt_dropped,
            }

    # --- cache operations ----------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload under ``key`` or ``None``; refreshes LRU recency.

        A hit touches the entry's mtime (persisting its recency) and moves
        it to the back of the eviction queue.  A corrupt entry is deleted
        and counted (``service.store.corrupt``) — recovered as a miss.
        """
        with self._lock:
            path = self.path_for(key)
            payload = self.read_entry(key)
            if payload is None:
                if path.exists():
                    # present but unreadable/mismatched: drop it so the
                    # recompute can publish a clean entry
                    self._drop(key, path)
                    self.corrupt_dropped += 1
                    self.tracer.count("service.store.corrupt")
                self.misses += 1
                self.tracer.count("service.store.misses")
                return None
            os.utime(path)
            if key in self._lru:
                self._lru.move_to_end(key)
            else:  # written by another process since the last refresh
                self._lru[key] = path.stat().st_size
                self._total_bytes += self._lru[key]
            self.hits += 1
            self.tracer.count("service.store.hits")
            return payload

    def put(self, key: str, descriptor: Mapping[str, Any], payload: Any) -> Path:
        """Store ``payload`` under ``key``, then evict down to budget.

        The entry just written is never evicted by its own ``put`` — the
        budgets bound the store *between* operations, so even
        ``max_entries=1`` caches the most recent result.
        """
        with self._lock:
            if key in self._lru:
                self._total_bytes -= self._lru.pop(key)
            path = super().put(key, descriptor, payload)
            size = path.stat().st_size
            self._lru[key] = size
            self._total_bytes += size
            self._evict()
            return path

    def _drop(self, key: str, path: Path) -> None:
        """Remove one entry file and its accounting (lock held)."""
        if key in self._lru:
            self._total_bytes -= self._lru.pop(key)
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._lru) > self.max_entries:
            return True
        if self.max_bytes is not None and self._total_bytes > self.max_bytes:
            return True
        return False

    def _evict(self) -> None:
        """Evict least-recently-used entries until within budget (lock held)."""
        while len(self._lru) > 1 and self._over_budget():
            key = next(iter(self._lru))
            self._drop(key, self.path_for(key))
            self.evictions += 1
            self.tracer.count("service.store.evictions")
