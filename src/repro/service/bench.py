"""Service load-test harness: latency/throughput under a mixed request storm.

Fires thousands of mixed cached/uncached ``simulate`` requests at an
in-process :class:`~repro.service.server.SimulationServer` over real TCP
connections (one client thread per connection, measuring end-to-end
wall latency per request) and records:

* **p50 / p99 / mean latency** — exact percentiles over every request;
* **throughput** — completed requests per second of storm wall time;
* **cache behaviour** — hit rate, coalesced count, and the number of
  simulations actually run (the dedup guarantee made measurable);
* **result digests** — the coalescing digest and payload SHA-256 per
  unique scenario, which must never change for pinned inputs.

``BENCH_service.json`` at the repo root is the committed baseline;
``scripts/bench_service.py`` is the CLI and the ``load-smoke`` CI job
gates fresh runs against the baseline: schema always, **digest changes
always fail**, and latency/throughput regress only past *generous*
thresholds because hosted runners are noisy (docs/service.md documents
the policy).

Document schema (``SERVICE_BENCH_SCHEMA_VERSION = 1``)::

    {
      "schema_version": 1,
      "kind": "service-bench",
      "quick": false,
      "host": {...},                       # repro.benchmarks.host_metadata
      "params": {"requests", "connections", "trace_length", "seed",
                 "unique_scenarios", "pool_shards", "pool_kind"},
      "metrics": {"wall_s", "requests_per_s", "p50_ms", "p99_ms",
                  "mean_ms", "cache_hit_rate", "coalesced",
                  "simulations_run", "errors"},
      "scenarios": [{"benchmark", "config", "trace_length", "seed",
                     "engine", "digest", "payload_sha256"}, ...]
    }
"""

from __future__ import annotations

import hashlib
import queue
import random
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.benchmarks import host_metadata
from repro.errors import ServiceError
from repro.io import canonical_json, write_json_atomic

#: Schema version stamped into every service bench document.
SERVICE_BENCH_SCHEMA_VERSION = 1

#: Document ``kind`` marker.
SERVICE_BENCH_KIND = "service-bench"

#: Fail when throughput falls below (1 - threshold) of baseline.  The
#: default is deliberately generous (hosted CI runners are noisy, and a
#: --quick storm amortizes its cold simulations over fewer requests);
#: digest mismatches fail at any speed.
DEFAULT_THROUGHPUT_THRESHOLD = 0.75

#: Fail when *p50* latency exceeds baseline * (1 + threshold).  The gate
#: uses p50, not p99: the median is the cache-hit service time and is
#: invariant to storm size, while the p99 tail's weight depends on the
#: ratio of cold misses to total requests (6 cold scenarios are the top
#: 2% of a 300-request quick storm but only the top 0.2% of the full
#: 3000).  p99 is still recorded for humans.
DEFAULT_LATENCY_THRESHOLD = 4.0

#: The pinned unique scenarios of the storm: every L2 access path (two
#: part C1-C3, both uniform baselines) across write-heavy and read-heavy
#: benchmarks.  All requests in a storm draw from these, so the digest
#: set is comparable between --quick and full runs.
LOAD_SCENARIOS: Sequence[Tuple[str, str]] = (
    ("bfs", "C1"),
    ("stencil", "baseline"),
    ("backprop", "stt-baseline"),
    ("nn", "C2"),
    ("lbm", "C3"),
    ("kmeans", "C1"),
)

#: Default storm sizes (requests fired) for full and quick runs.
DEFAULT_REQUESTS = 3000
QUICK_REQUESTS = 300


def _build_plan(
    requests: int, scenarios: Sequence[Tuple[str, str]], seed: int
) -> List[Tuple[str, str]]:
    """The deterministic request arrival order of one storm.

    Every unique scenario appears at least once; the remainder are
    duplicates drawn with a seeded RNG, shuffled so cached and uncached
    requests interleave the way a real exploration burst would.
    """
    if requests < len(scenarios):
        raise ServiceError(
            f"requests ({requests}) must cover the {len(scenarios)} "
            f"unique scenarios at least once"
        )
    rng = random.Random(seed)
    plan = list(scenarios)
    plan.extend(
        scenarios[rng.randrange(len(scenarios))]
        for _ in range(requests - len(scenarios))
    )
    rng.shuffle(plan)
    return plan


def run_load_test(
    quick: bool = False,
    requests: Optional[int] = None,
    connections: int = 8,
    trace_length: int = 4000,
    seed: int = 0,
    pool_shards: int = 2,
    pool_kind: str = "thread",
    store_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one storm against a fresh in-process server; returns the document.

    The server starts on an ephemeral port with a fresh (or caller-given)
    store directory, ``connections`` client threads drain a shared queue
    of ``requests`` planned arrivals, and the document above is built
    from the measured latencies plus the server's own stats counters.
    """
    import tempfile

    from repro.service.pool import ShardedWorkerPool
    from repro.service.server import ServerThread, SimulationServer
    from repro.service.store import SharedResultStore

    if requests is None:
        requests = QUICK_REQUESTS if quick else DEFAULT_REQUESTS
    if connections < 1:
        raise ServiceError(f"connections must be >= 1, got {connections}")
    plan = _build_plan(requests, LOAD_SCENARIOS, seed)

    with tempfile.TemporaryDirectory() as tmp:
        store = SharedResultStore(store_dir or tmp)
        server = SimulationServer(
            port=0,
            store=store,
            pool=ShardedWorkerPool(shards=pool_shards, kind=pool_kind),
            log=lambda line: None,
        )
        with ServerThread(server) as running:
            document = _storm(
                running.port, plan, connections, trace_length, seed, quick
            )
    document["params"].update(
        {"pool_shards": pool_shards, "pool_kind": pool_kind}
    )
    return document


def _storm(
    port: int,
    plan: Sequence[Tuple[str, str]],
    connections: int,
    trace_length: int,
    seed: int,
    quick: bool,
) -> Dict[str, Any]:
    """Fire the planned requests over ``connections`` client threads."""
    from repro.service.client import ServiceClient

    work: "queue.Queue" = queue.Queue()
    for item in plan:
        work.put(item)
    latencies: List[float] = []
    digests: Dict[Tuple[str, str], Dict[str, str]] = {}
    failures: List[str] = []
    lock = threading.Lock()

    def drain() -> None:
        with ServiceClient(port=port) as client:
            while True:
                try:
                    benchmark, config = work.get_nowait()
                except queue.Empty:
                    return
                started = time.perf_counter()
                try:
                    response = client.simulate(
                        benchmark, config, trace_length=trace_length, seed=seed
                    )
                except ServiceError as error:
                    with lock:
                        failures.append(f"{benchmark}/{config}: {error}")
                    continue
                elapsed = time.perf_counter() - started
                payload_sha = hashlib.sha256(
                    canonical_json(response["payload"]).encode("utf-8")
                ).hexdigest()
                with lock:
                    latencies.append(elapsed)
                    recorded = digests.setdefault(
                        (benchmark, config),
                        {
                            "digest": response["digest"],
                            "payload_sha256": payload_sha,
                        },
                    )
                    if recorded["payload_sha256"] != payload_sha:
                        failures.append(
                            f"{benchmark}/{config}: payload digest changed "
                            f"mid-storm"
                        )

    threads = [
        threading.Thread(target=drain, name=f"storm-{i}", daemon=True)
        for i in range(connections)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_start

    with ServiceClient(port=port) as client:
        stats = client.stats()

    if failures:
        raise ServiceError(
            f"storm had {len(failures)} failures: {failures[:3]}"
        )
    if len(latencies) != len(plan):
        raise ServiceError(
            f"storm lost requests: {len(latencies)}/{len(plan)} completed"
        )
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        index = min(len(ordered) - 1, max(0, int(len(ordered) * q / 100.0)))
        return ordered[index]

    cache = stats["cache"]
    served = cache["hits"] + cache["misses"] + cache["coalesced"]
    return {
        "schema_version": SERVICE_BENCH_SCHEMA_VERSION,
        "kind": SERVICE_BENCH_KIND,
        "quick": quick,
        "host": host_metadata(),
        "params": {
            "requests": len(plan),
            "connections": connections,
            "trace_length": trace_length,
            "seed": seed,
            "unique_scenarios": len(digests),
        },
        "metrics": {
            "wall_s": wall,
            "requests_per_s": len(plan) / wall,
            "p50_ms": pct(50) * 1e3,
            "p99_ms": pct(99) * 1e3,
            "mean_ms": sum(ordered) / len(ordered) * 1e3,
            "cache_hit_rate": cache["hits"] / served if served else 0.0,
            "coalesced": cache["coalesced"],
            "simulations_run": stats["simulations_run"],
            "errors": stats["errors"],
        },
        "scenarios": [
            {
                "benchmark": benchmark,
                "config": config,
                "trace_length": trace_length,
                "seed": seed,
                "engine": "soa",
                "digest": entry["digest"],
                "payload_sha256": entry["payload_sha256"],
            }
            for (benchmark, config), entry in sorted(digests.items())
        ],
    }


#: Required metric fields (and types) of one service bench document.
_METRIC_FIELDS = {
    "wall_s": (int, float),
    "requests_per_s": (int, float),
    "p50_ms": (int, float),
    "p99_ms": (int, float),
    "mean_ms": (int, float),
    "cache_hit_rate": (int, float),
    "coalesced": int,
    "simulations_run": int,
    "errors": int,
}

_SCENARIO_FIELDS = {
    "benchmark": str,
    "config": str,
    "trace_length": int,
    "seed": int,
    "engine": str,
    "digest": str,
    "payload_sha256": str,
}


def validate_service_bench(document: Mapping[str, Any]) -> None:
    """Validate a service bench document; raises ``ServiceError`` on problems."""
    if not isinstance(document, Mapping):
        raise ServiceError(
            f"bench document must be an object, got {type(document).__name__}"
        )
    if document.get("schema_version") != SERVICE_BENCH_SCHEMA_VERSION:
        raise ServiceError(
            f"unsupported service bench schema "
            f"{document.get('schema_version')!r} "
            f"(expected {SERVICE_BENCH_SCHEMA_VERSION})"
        )
    if document.get("kind") != SERVICE_BENCH_KIND:
        raise ServiceError(
            f"not a service bench document: kind={document.get('kind')!r}"
        )
    host = document.get("host")
    if not isinstance(host, Mapping) or not {"platform", "python", "cpus"} <= set(host):
        raise ServiceError(f"malformed host metadata: {host!r}")
    metrics = document.get("metrics")
    if not isinstance(metrics, Mapping):
        raise ServiceError(f"malformed metrics: {metrics!r}")
    for name, types in _METRIC_FIELDS.items():
        if name not in metrics:
            raise ServiceError(f"metrics missing field {name!r}")
        if not isinstance(metrics[name], types) or isinstance(metrics[name], bool):
            raise ServiceError(
                f"metrics field {name!r} has wrong type: {metrics[name]!r}"
            )
    if metrics["wall_s"] <= 0 or metrics["requests_per_s"] <= 0:
        raise ServiceError(f"non-positive timing in metrics: {metrics!r}")
    if not 0 <= metrics["cache_hit_rate"] <= 1:
        raise ServiceError(
            f"cache_hit_rate out of [0, 1]: {metrics['cache_hit_rate']!r}"
        )
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ServiceError("bench document needs a non-empty scenarios list")
    for record in scenarios:
        for name, types in _SCENARIO_FIELDS.items():
            if name not in record:
                raise ServiceError(
                    f"scenario missing field {name!r}: {record!r}"
                )
            if not isinstance(record[name], types) or isinstance(record[name], bool):
                raise ServiceError(
                    f"scenario field {name!r} has wrong type: {record[name]!r}"
                )


def _scenario_key(record: Mapping[str, Any]) -> str:
    return (
        f"{record['benchmark']}/{record['config']}/"
        f"{record['trace_length']}/s{record['seed']}/{record['engine']}"
    )


def compare_service_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    throughput_threshold: float = DEFAULT_THROUGHPUT_THRESHOLD,
    latency_threshold: float = DEFAULT_LATENCY_THRESHOLD,
) -> Dict[str, Any]:
    """Gate a fresh load-test run against the committed baseline.

    Digest rules are absolute: every scenario key present in both
    documents must carry identical ``digest`` and ``payload_sha256``
    (pinned inputs must give identical outputs at any load).  Performance
    rules are generous by design: throughput fails below
    ``(1 - throughput_threshold)`` of baseline, p50 latency fails above
    ``baseline * (1 + latency_threshold)`` (p50, because the p99 tail is
    not comparable across storm sizes — see
    :data:`DEFAULT_LATENCY_THRESHOLD`).  Returns a JSON-safe report with
    an overall ``ok`` flag; exiting non-zero is the CLI's job.
    """
    if not 0 <= throughput_threshold < 1:
        raise ServiceError(
            f"throughput threshold must be in [0, 1), got {throughput_threshold}"
        )
    if latency_threshold < 0:
        raise ServiceError(
            f"latency threshold must be >= 0, got {latency_threshold}"
        )
    validate_service_bench(current)
    validate_service_bench(baseline)
    base_by_key = {_scenario_key(r): r for r in baseline["scenarios"]}
    digests_changed: List[str] = []
    matched: List[str] = []
    for record in current["scenarios"]:
        key = _scenario_key(record)
        base = base_by_key.get(key)
        if base is None:
            continue
        matched.append(key)
        if (
            record["digest"] != base["digest"]
            or record["payload_sha256"] != base["payload_sha256"]
        ):
            digests_changed.append(key)
    if not matched:
        raise ServiceError("no scenarios matched the baseline")

    current_metrics = current["metrics"]
    baseline_metrics = baseline["metrics"]
    throughput_ratio = (
        current_metrics["requests_per_s"] / baseline_metrics["requests_per_s"]
    )
    latency_ratio = (
        current_metrics["p50_ms"] / baseline_metrics["p50_ms"]
        if baseline_metrics["p50_ms"] > 0
        else 1.0
    )
    throughput_regressed = throughput_ratio < 1.0 - throughput_threshold
    latency_regressed = latency_ratio > 1.0 + latency_threshold
    return {
        "matched": sorted(matched),
        "digests_changed": sorted(digests_changed),
        "throughput_ratio": throughput_ratio,
        "latency_ratio": latency_ratio,
        "throughput_regressed": throughput_regressed,
        "latency_regressed": latency_regressed,
        "thresholds": {
            "throughput": throughput_threshold,
            "latency": latency_threshold,
        },
        "ok": not digests_changed
        and not throughput_regressed
        and not latency_regressed,
    }


def write_service_bench(document: Mapping[str, Any], path) -> None:
    """Validate and atomically write a service bench document as JSON."""
    validate_service_bench(document)
    write_json_atomic(dict(document), path)
